//! Typed user attributes (§3.3.1).
//!
//! "Each attribute has a type and a value. The 'type' indicates the format
//! and the meaning of the value field. The choice of the attributes must
//! be those in which most mail service users are commonly interested. The
//! values of the attributes should not be ambiguous." The paper's example
//! attribute kinds — names, nicknames, aliases, commonly misspelled names,
//! job title, organization, location, expertise, interests — are covered
//! by [`AttrKey`]; free extension is available through
//! [`AttrKey::Custom`].
//!
//! Privacy (§3.3.1): "users must have the option to limit the access to
//! their personal information to specific groups or organizations" —
//! every attribute carries a [`Visibility`].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The attribute vocabulary.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum AttrKey {
    /// Given name.
    FirstName,
    /// Family name.
    LastName,
    /// Nickname or alias.
    Nickname,
    /// A commonly seen misspelling of the name, registered so misspelled
    /// queries still match (§3.3's directory-lookup application).
    Misspelling,
    /// Job title.
    JobTitle,
    /// Employer or institution.
    Organization,
    /// Kind of organization (university, vendor, …).
    OrganizationType,
    /// City.
    City,
    /// State or province.
    State,
    /// Country.
    Country,
    /// Field of expertise/specialty.
    Expertise,
    /// Personal interest or hobby.
    Interest,
    /// Anything else.
    Custom(String),
}

impl fmt::Display for AttrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrKey::FirstName => f.write_str("first-name"),
            AttrKey::LastName => f.write_str("last-name"),
            AttrKey::Nickname => f.write_str("nickname"),
            AttrKey::Misspelling => f.write_str("misspelling"),
            AttrKey::JobTitle => f.write_str("job-title"),
            AttrKey::Organization => f.write_str("organization"),
            AttrKey::OrganizationType => f.write_str("organization-type"),
            AttrKey::City => f.write_str("city"),
            AttrKey::State => f.write_str("state"),
            AttrKey::Country => f.write_str("country"),
            AttrKey::Expertise => f.write_str("expertise"),
            AttrKey::Interest => f.write_str("interest"),
            AttrKey::Custom(s) => write!(f, "x-{s}"),
        }
    }
}

/// An attribute value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum AttrValue {
    /// Free text (matched case-insensitively).
    Text(String),
    /// An integer (e.g. years of experience).
    Number(i64),
}

impl AttrValue {
    /// Text content, lowercased, if this is a text value.
    pub fn as_text_lower(&self) -> Option<String> {
        match self {
            AttrValue::Text(s) => Some(s.to_lowercase()),
            AttrValue::Number(_) => None,
        }
    }

    /// Numeric content, if any.
    pub fn as_number(&self) -> Option<i64> {
        match self {
            AttrValue::Number(n) => Some(*n),
            AttrValue::Text(_) => None,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Text(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Text(s)
    }
}

impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::Number(n)
    }
}

/// Who may see an attribute.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Visibility {
    /// Anyone.
    Public,
    /// Only requesters from the named organization.
    Organization(String),
    /// Nobody but the owner (excluded from all searches).
    Private,
}

/// Who is asking.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RequesterContext {
    /// The requester's organization, if asserted.
    pub organization: Option<String>,
}

impl Visibility {
    /// True if a requester in `ctx` may see an attribute with this
    /// visibility.
    pub fn allows(&self, ctx: &RequesterContext) -> bool {
        match self {
            Visibility::Public => true,
            Visibility::Organization(org) => {
                ctx.organization.as_deref().map(str::to_lowercase) == Some(org.to_lowercase())
            }
            Visibility::Private => false,
        }
    }
}

/// One stored attribute: value plus visibility.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Attribute {
    /// The value.
    pub value: AttrValue,
    /// Who may see it.
    pub visibility: Visibility,
}

/// A user's attribute set (multi-valued per key: a user may register
/// several nicknames, interests, misspellings, …).
///
/// # Examples
///
/// ```
/// use lems_attr::attribute::{AttrKey, AttributeSet, Visibility};
///
/// let mut a = AttributeSet::new();
/// a.add(AttrKey::FirstName, "Wael", Visibility::Public);
/// a.add(AttrKey::Expertise, "distributed systems", Visibility::Public);
/// a.add(AttrKey::Interest, "sailing", Visibility::Private);
/// assert_eq!(a.len(), 3);
/// assert_eq!(a.values(&AttrKey::FirstName).count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct AttributeSet {
    attrs: BTreeMap<AttrKey, Vec<Attribute>>,
}

impl AttributeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AttributeSet::default()
    }

    /// Adds an attribute value under `key`.
    pub fn add(&mut self, key: AttrKey, value: impl Into<AttrValue>, visibility: Visibility) {
        self.attrs.entry(key).or_default().push(Attribute {
            value: value.into(),
            visibility,
        });
    }

    /// All attributes under `key` (any visibility).
    pub fn values(&self, key: &AttrKey) -> impl Iterator<Item = &Attribute> {
        self.attrs.get(key).into_iter().flatten()
    }

    /// Attributes under `key` visible to `ctx`.
    pub fn visible_values<'a>(
        &'a self,
        key: &AttrKey,
        ctx: &'a RequesterContext,
    ) -> impl Iterator<Item = &'a AttrValue> {
        self.values(key)
            .filter(move |a| a.visibility.allows(ctx))
            .map(|a| &a.value)
    }

    /// Total stored attributes.
    pub fn len(&self) -> usize {
        self.attrs.values().map(Vec::len).sum()
    }

    /// True if no attributes are stored.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Removes every value under `key`; returns how many were removed.
    pub fn remove(&mut self, key: &AttrKey) -> usize {
        self.attrs.remove(key).map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multivalued_keys() {
        let mut a = AttributeSet::new();
        a.add(AttrKey::Nickname, "Bill", Visibility::Public);
        a.add(AttrKey::Nickname, "Will", Visibility::Public);
        assert_eq!(a.values(&AttrKey::Nickname).count(), 2);
        assert_eq!(a.remove(&AttrKey::Nickname), 2);
        assert_eq!(a.values(&AttrKey::Nickname).count(), 0);
    }

    #[test]
    fn visibility_filters() {
        let mut a = AttributeSet::new();
        a.add(AttrKey::JobTitle, "Engineer", Visibility::Public);
        a.add(
            AttrKey::Organization,
            "AT&T",
            Visibility::Organization("AT&T".into()),
        );
        a.add(AttrKey::Interest, "chess", Visibility::Private);

        let anon = RequesterContext::default();
        let insider = RequesterContext {
            organization: Some("at&t".into()),
        };
        assert_eq!(a.visible_values(&AttrKey::JobTitle, &anon).count(), 1);
        assert_eq!(a.visible_values(&AttrKey::Organization, &anon).count(), 0);
        assert_eq!(
            a.visible_values(&AttrKey::Organization, &insider).count(),
            1
        );
        assert_eq!(a.visible_values(&AttrKey::Interest, &insider).count(), 0);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(AttrValue::from("Hi").as_text_lower(), Some("hi".into()));
        assert_eq!(AttrValue::from(7i64).as_number(), Some(7));
        assert_eq!(AttrValue::from("Hi").as_number(), None);
    }

    #[test]
    fn key_display_is_stable() {
        assert_eq!(AttrKey::FirstName.to_string(), "first-name");
        assert_eq!(
            AttrKey::Custom("ham-radio".into()).to_string(),
            "x-ham-radio"
        );
    }
}
