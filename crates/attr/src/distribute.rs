//! Mass distribution of attribute-addressed mail with cost estimation and
//! flow control (§3.3.1B).
//!
//! "Attribute-based mail systems can generate a large amount of traffic…
//! It is very important to estimate the cost of broadcasting and searching
//! before sending mail to the potential recipients… Based on the detailed
//! estimate of charges and traffic volume, the user can select his
//! recipients and the level of search he wants to be done."
//!
//! A distribution therefore runs in two stages: **estimate** (build the
//! per-region cost table from the spanning structure) and **execute**
//! (deliver to the regions the sender's budget covers, counting actual
//! recipients and cost).

use lems_net::graph::NodeId;
use lems_net::topology::RegionId;
use serde::{Deserialize, Serialize};

use crate::attribute::RequesterContext;
use crate::query::Query;
use crate::search::AttributeNetwork;

/// The pre-send estimate shown to the user.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistributionEstimate {
    /// `(region, cost)` rows of the §3.3.1B table.
    pub region_costs: Vec<(RegionId, f64)>,
    /// Total cost of covering every region.
    pub total_cost: f64,
    /// A crude per-region search charge proportional to query complexity
    /// (the paper's "processing cost for searching the databases").
    pub search_charge: f64,
}

/// What a distribution actually did.
#[derive(Clone, Debug)]
pub struct DistributionOutcome {
    /// Regions covered (possibly limited by budget).
    pub regions: Vec<RegionId>,
    /// Matched recipients in the covered regions.
    pub recipients: Vec<lems_core::name::MailName>,
    /// Communication cost actually incurred.
    pub cost: f64,
    /// Matches that were skipped because their region was out of budget.
    pub skipped_recipients: usize,
}

/// Per-message processing charge used in the search-cost estimate, in
/// cost units per predicate per region.
pub const SEARCH_CHARGE_PER_LEAF: f64 = 0.1;

/// Produces the §3.3.1B estimate for distributing from `root`.
pub fn estimate(net: &AttributeNetwork, root: NodeId, query: &Query) -> DistributionEstimate {
    let table = net.cost_table(root);
    let search_charge =
        SEARCH_CHARGE_PER_LEAF * query.leaf_count() as f64 * table.rows.len() as f64;
    DistributionEstimate {
        total_cost: table.total(),
        region_costs: table.rows,
        search_charge,
    }
}

/// Executes a distribution from `root`: covers the cheapest regions that
/// fit `budget` (`None` = unlimited), evaluates the query in the covered
/// regions, and reports recipients plus incurred cost.
pub fn distribute(
    net: &AttributeNetwork,
    root: NodeId,
    query: &Query,
    ctx: &RequesterContext,
    budget: Option<f64>,
) -> DistributionOutcome {
    let table = net.cost_table(root);
    let regions: Vec<RegionId> = match budget {
        Some(b) => table.regions_within_budget(b),
        None => {
            let mut rs: Vec<RegionId> = table.rows.iter().map(|&(r, _)| r).collect();
            rs.sort_unstable();
            rs
        }
    };
    let cost: f64 = table
        .rows
        .iter()
        .filter(|(r, _)| regions.contains(r))
        .map(|&(_, c)| c)
        .sum();

    let mut recipients = Vec::new();
    let mut skipped = 0usize;
    for &server in &net.topology().servers() {
        let region = net.topology().region(server);
        let Some(reg) = net.registry(server) else {
            continue;
        };
        let hits = reg.search(query, ctx);
        if regions.contains(&region) {
            recipients.extend(hits.into_iter().cloned());
        } else {
            skipped += hits.len();
        }
    }
    recipients.sort_unstable();
    recipients.dedup();

    DistributionOutcome {
        regions,
        recipients,
        cost,
        skipped_recipients: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttrKey, AttributeSet, Visibility};
    use crate::registry::AttributeRegistry;
    use lems_net::generators::{multi_region, MultiRegionConfig};
    use lems_net::topology::Topology;
    use lems_sim::rng::SimRng;
    use std::collections::BTreeMap;

    fn network() -> AttributeNetwork {
        let mut rng = SimRng::seed(5);
        let cfg = MultiRegionConfig {
            regions: 4,
            hosts_per_region: 2,
            servers_per_region: 2,
            ..MultiRegionConfig::default()
        };
        let raw = multi_region(&mut rng, &cfg);
        let g = raw.graph().with_distinct_weights();
        let mut t = Topology::new();
        for n in raw.nodes() {
            match raw.kind(n) {
                lems_net::topology::NodeKind::Host => t.add_host(raw.region(n), raw.name(n)),
                lems_net::topology::NodeKind::Server => t.add_server(raw.region(n), raw.name(n)),
            };
        }
        for e in g.edges() {
            t.link(e.a, e.b, e.weight);
        }

        let mut registries = BTreeMap::new();
        for (i, &s) in t.servers().iter().enumerate() {
            let mut reg = AttributeRegistry::new();
            let mut a = AttributeSet::new();
            a.add(AttrKey::Interest, "opera", Visibility::Public);
            reg.upsert(format!("r{}.h.fan{i}", t.region(s).0).parse().unwrap(), a);
            registries.insert(s, reg);
        }
        AttributeNetwork::new(t, registries)
    }

    #[test]
    fn estimate_covers_all_regions() {
        let net = network();
        let root = net.topology().servers()[0];
        let q = Query::text_eq(AttrKey::Interest, "opera");
        let est = estimate(&net, root, &q);
        assert_eq!(est.region_costs.len(), 4);
        assert!(est.total_cost > 0.0);
        assert!(est.search_charge > 0.0);
    }

    #[test]
    fn unlimited_budget_reaches_everyone() {
        let net = network();
        let root = net.topology().servers()[0];
        let q = Query::text_eq(AttrKey::Interest, "opera");
        let out = distribute(&net, root, &q, &RequesterContext::default(), None);
        assert_eq!(out.regions.len(), 4);
        assert_eq!(out.recipients.len(), 8); // one fan per server
        assert_eq!(out.skipped_recipients, 0);
    }

    #[test]
    fn budget_limits_regions_and_reports_skips() {
        let net = network();
        let root = net.topology().servers()[0];
        let q = Query::text_eq(AttrKey::Interest, "opera");
        let full = distribute(&net, root, &q, &RequesterContext::default(), None);
        // Budget for roughly half the total cost.
        let out = distribute(
            &net,
            root,
            &q,
            &RequesterContext::default(),
            Some(full.cost / 2.0),
        );
        assert!(out.regions.len() < 4);
        assert!(out.cost <= full.cost / 2.0 + 1e-9);
        assert_eq!(
            out.recipients.len() + out.skipped_recipients,
            full.recipients.len()
        );
    }

    #[test]
    fn zero_budget_sends_nothing() {
        let net = network();
        let root = net.topology().servers()[0];
        let q = Query::text_eq(AttrKey::Interest, "opera");
        let out = distribute(&net, root, &q, &RequesterContext::default(), Some(0.0));
        assert!(out.regions.is_empty());
        assert!(out.recipients.is_empty());
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.skipped_recipients, 8);
    }
}
