//! Approximate name matching for directory lookup (§3.3, application i).
//!
//! "People do not always remember the exact spelling of the full
//! electronic mail addresses … Misspelling occurs so often that the system
//! fails to recognize them and services cannot be provided. In
//! attribute-based mail system, users are allowed to provide aliases,
//! nicknames or some possible misspellings of the names."
//!
//! Two matchers: bounded Levenshtein edit distance, and the classic
//! Soundex phonetic code (mail-era technology, fitting the paper's
//! vintage).

/// Levenshtein edit distance between two strings (case-insensitive),
/// O(|a|·|b|) time, O(min) space.
///
/// # Examples
///
/// ```
/// use lems_attr::fuzzy::edit_distance;
///
/// assert_eq!(edit_distance("smith", "Smyth"), 1);
/// assert_eq!(edit_distance("jonson", "johnson"), 1);
/// assert_eq!(edit_distance("alice", "alice"), 0);
/// ```
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The Soundex phonetic code of a word (classic 4-character form, e.g.
/// `"Robert"` → `"R163"`). Non-ASCII-alphabetic characters are skipped;
/// an empty input yields `"0000"`.
///
/// # Examples
///
/// ```
/// use lems_attr::fuzzy::soundex;
///
/// assert_eq!(soundex("Robert"), soundex("Rupert"));
/// assert_eq!(soundex("Smith"), soundex("Smyth"));
/// assert_ne!(soundex("Smith"), soundex("Jones"));
/// ```
pub fn soundex(word: &str) -> String {
    fn code(c: char) -> u8 {
        match c.to_ascii_lowercase() {
            'b' | 'f' | 'p' | 'v' => b'1',
            'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => b'2',
            'd' | 't' => b'3',
            'l' => b'4',
            'm' | 'n' => b'5',
            'r' => b'6',
            _ => b'0', // vowels, h, w, y: not coded
        }
    }
    let letters: Vec<char> = word.chars().filter(char::is_ascii_alphabetic).collect();
    let Some(&first) = letters.first() else {
        return "0000".to_owned();
    };
    let mut out = String::new();
    out.push(first.to_ascii_uppercase());
    let mut last = code(first);
    for &c in &letters[1..] {
        let k = code(c);
        // h/w do not reset the previous code; vowels do.
        if matches!(c.to_ascii_lowercase(), 'h' | 'w') {
            continue;
        }
        if k != b'0' && k != last {
            out.push(k as char);
            if out.len() == 4 {
                break;
            }
        }
        last = k;
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

/// How close a candidate string is to a query string.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchQuality {
    /// Exact (case-insensitive) match.
    Exact,
    /// Within the allowed edit distance.
    CloseSpelling(usize),
    /// Same Soundex code.
    SoundsAlike,
    /// No match.
    None,
}

impl MatchQuality {
    /// True for anything better than [`MatchQuality::None`].
    pub fn is_match(&self) -> bool {
        !matches!(self, MatchQuality::None)
    }
}

/// Classifies how well `candidate` matches `query`, allowing up to
/// `max_edits` spelling errors before falling back to phonetic matching.
pub fn classify(query: &str, candidate: &str, max_edits: usize) -> MatchQuality {
    if query.eq_ignore_ascii_case(candidate) {
        return MatchQuality::Exact;
    }
    let d = edit_distance(query, candidate);
    if d <= max_edits {
        return MatchQuality::CloseSpelling(d);
    }
    if soundex(query) == soundex(candidate) {
        return MatchQuality::SoundsAlike;
    }
    MatchQuality::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "xy"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("CASE", "case"), 0);
    }

    #[test]
    fn soundex_classics() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex(""), "0000");
        assert_eq!(soundex("123"), "0000");
    }

    #[test]
    fn classify_tiers() {
        assert_eq!(classify("smith", "Smith", 1), MatchQuality::Exact);
        assert_eq!(
            classify("smith", "smyth", 1),
            MatchQuality::CloseSpelling(1)
        );
        // Far in spelling (distance 2 > 1) but phonetically equal.
        assert_eq!(classify("robert", "rupert", 1), MatchQuality::SoundsAlike);
        assert_eq!(classify("smith", "jones", 1), MatchQuality::None);
        assert!(classify("a", "b", 1).is_match()); // distance 1
    }

    proptest! {
        /// Metric properties: identity, symmetry, triangle inequality.
        #[test]
        fn edit_distance_is_a_metric(
            a in "[a-z]{0,8}",
            b in "[a-z]{0,8}",
            c in "[a-z]{0,8}",
        ) {
            prop_assert_eq!(edit_distance(&a, &a), 0);
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
            prop_assert!(
                edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c)
            );
        }

        /// Soundex always yields a 4-character code starting with a letter
        /// or the null code.
        #[test]
        fn soundex_shape(w in "[A-Za-z]{0,12}") {
            let s = soundex(&w);
            prop_assert_eq!(s.len(), 4);
            if !w.is_empty() {
                prop_assert!(s.chars().next().unwrap().is_ascii_uppercase());
            }
        }
    }
}
