//! # lems-attr — System 3: attribute-based mail
//!
//! The third and most flexible design of *"Designing Large Electronic
//! Mail Systems"* (Bahaa-El-Din & Yuen, ICDCS 1988), §3.3: recipients are
//! identified by *attributes* rather than precise names, enabling
//! directory lookup, information exchange, and mass distribution.
//!
//! * [`attribute`] — typed, multi-valued attributes with per-attribute
//!   visibility (the paper's privacy requirement);
//! * [`fuzzy`] — edit-distance and Soundex matching for misspelled-name
//!   lookups;
//! * [`lookup`] — interactive directory lookup with
//!   best-discriminator refinement suggestions (application i of §3.3);
//! * [`query`] — the boolean query language over attributes;
//! * [`registry`] — per-server attribute databases;
//! * [`search`] — distributed search: broadcast the query over the
//!   backbone+local MST, convergecast summary responses (§3.3.1A);
//! * [`mod@distribute`] — mass distribution with the §3.3.1B
//!   cost-estimation table and budget-based flow control.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod distribute;
pub mod fuzzy;
pub mod lookup;
pub mod query;
pub mod registry;
pub mod search;

pub use attribute::{AttrKey, AttrValue, Attribute, AttributeSet, RequesterContext, Visibility};
pub use distribute::{distribute, estimate, DistributionEstimate, DistributionOutcome};
pub use fuzzy::{classify, edit_distance, soundex, MatchQuality};
pub use lookup::{LookupSession, LookupState};
pub use query::{Predicate, Query};
pub use registry::AttributeRegistry;
pub use search::{AttributeNetwork, SearchOutcome};
