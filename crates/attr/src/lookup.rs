//! Interactive directory lookup with refinement (§3.3, application i).
//!
//! "There may be more than one user being found possessing the same set of
//! attributes. In this case the user can provide more information to
//! separate them or resolve them by himself using his intuition,
//! experience or a trial and error method."
//!
//! A [`LookupSession`] runs a query against a registry, and when the match
//! set is ambiguous, suggests the attribute key that *best discriminates*
//! the candidates (maximum split entropy) — the "more information" the
//! paper asks the user for, chosen so one answer narrows the set fastest.

use std::collections::BTreeMap;

use lems_core::name::MailName;

use crate::attribute::{AttrKey, AttrValue, RequesterContext};
use crate::query::{Predicate, Query};
use crate::registry::AttributeRegistry;

/// Where a lookup stands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupState {
    /// Exactly one user matches.
    Resolved(MailName),
    /// Nothing matches (over-constrained or misspelled beyond tolerance).
    Empty,
    /// Several users match; refinement is advised.
    Ambiguous {
        /// The current candidates (sorted).
        candidates: Vec<MailName>,
        /// The key whose value would best split the candidates, with the
        /// distinct visible values observed (so the UI can present
        /// choices), if any informative key exists.
        suggestion: Option<(AttrKey, Vec<AttrValue>)>,
    },
}

/// An interactive lookup against one registry.
#[derive(Clone, Debug)]
pub struct LookupSession<'a> {
    registry: &'a AttributeRegistry,
    ctx: RequesterContext,
    constraints: Vec<Query>,
}

impl<'a> LookupSession<'a> {
    /// Starts a session with an initial query (typically
    /// [`Query::name_like`]).
    pub fn new(registry: &'a AttributeRegistry, ctx: RequesterContext, initial: Query) -> Self {
        LookupSession {
            registry,
            ctx,
            constraints: vec![initial],
        }
    }

    /// Adds a refining constraint ("more information").
    pub fn refine(&mut self, constraint: Query) -> &mut Self {
        self.constraints.push(constraint);
        self
    }

    /// Convenience refinement: `key == text`.
    pub fn refine_eq(&mut self, key: AttrKey, text: &str) -> &mut Self {
        self.refine(Query::Attr(key, Predicate::Equals(text.into())))
    }

    /// Number of constraints so far.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Evaluates the current constraint conjunction.
    pub fn state(&self) -> LookupState {
        let q = Query::All(self.constraints.clone());
        let mut candidates: Vec<MailName> = self
            .registry
            .search(&q, &self.ctx)
            .into_iter()
            .cloned()
            .collect();
        candidates.sort_unstable();
        match candidates.len() {
            0 => LookupState::Empty,
            1 => LookupState::Resolved(candidates.remove(0)),
            _ => {
                let suggestion = self.best_discriminator(&candidates);
                LookupState::Ambiguous {
                    candidates,
                    suggestion,
                }
            }
        }
    }

    /// Picks the attribute key whose (visible) values split the candidate
    /// set into the most, most-even groups — measured by the number of
    /// distinct values weighted by how evenly they partition candidates
    /// (Gini-style impurity). Keys where all candidates share one value
    /// (or none have any) are uninformative and skipped.
    fn best_discriminator(&self, candidates: &[MailName]) -> Option<(AttrKey, Vec<AttrValue>)> {
        let mut by_key: BTreeMap<AttrKey, BTreeMap<AttrValue, usize>> = BTreeMap::new();
        for name in candidates {
            let Some(profile) = self.registry.profile(name) else {
                continue;
            };
            // Walk all keys the candidates expose.
            for key in [
                AttrKey::FirstName,
                AttrKey::LastName,
                AttrKey::Nickname,
                AttrKey::JobTitle,
                AttrKey::Organization,
                AttrKey::OrganizationType,
                AttrKey::City,
                AttrKey::State,
                AttrKey::Country,
                AttrKey::Expertise,
                AttrKey::Interest,
            ] {
                for v in profile.visible_values(&key, &self.ctx) {
                    *by_key
                        .entry(key.clone())
                        .or_default()
                        .entry(v.clone())
                        .or_insert(0) += 1;
                }
            }
        }

        let n = candidates.len() as f64;
        let mut best: Option<(f64, AttrKey, Vec<AttrValue>)> = None;
        for (key, values) in by_key {
            if values.len() < 2 {
                continue; // uninformative: everyone agrees (or only one has it)
            }
            // Gini impurity of the value distribution: higher = better
            // split.
            let gini = 1.0
                - values
                    .values()
                    .map(|&c| {
                        let p = c as f64 / n;
                        p * p
                    })
                    .sum::<f64>();
            let is_better = match &best {
                Some((b, _, _)) => gini > *b + 1e-12,
                None => true,
            };
            if is_better {
                best = Some((gini, key, values.into_keys().collect()));
            }
        }
        best.map(|(_, k, vs)| (k, vs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeSet, Visibility};

    fn registry() -> AttributeRegistry {
        let mut r = AttributeRegistry::new();
        let people = [
            ("east.h1.jsmith", "john", "smith", "DEC", "boston"),
            ("east.h2.j2smith", "john", "smith", "ATT", "chicago"),
            ("west.h3.jsmithe", "john", "smithe", "ATT", "denver"),
            ("east.h4.mjones", "mary", "jones", "DEC", "boston"),
        ];
        for (name, first, last, org, city) in people {
            let mut a = AttributeSet::new();
            a.add(AttrKey::FirstName, first, Visibility::Public);
            a.add(AttrKey::LastName, last, Visibility::Public);
            a.add(AttrKey::Organization, org, Visibility::Public);
            a.add(AttrKey::City, city, Visibility::Public);
            r.upsert(name.parse().unwrap(), a);
        }
        r
    }

    #[test]
    fn ambiguous_lookup_suggests_a_discriminator() {
        let r = registry();
        let session = LookupSession::new(
            &r,
            RequesterContext::default(),
            Query::name_like("smith", 1),
        );
        match session.state() {
            LookupState::Ambiguous {
                candidates,
                suggestion,
            } => {
                assert_eq!(candidates.len(), 3);
                let (key, values) = suggestion.expect("a discriminator exists");
                // City splits 3 candidates into 3 singleton groups — the
                // best possible split; Organization only makes 2 groups.
                assert_eq!(key, AttrKey::City);
                assert_eq!(values.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn refinement_resolves() {
        let r = registry();
        let mut session = LookupSession::new(
            &r,
            RequesterContext::default(),
            Query::name_like("smith", 1),
        );
        session.refine_eq(AttrKey::Organization, "ATT");
        match session.state() {
            LookupState::Ambiguous { candidates, .. } => {
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        session.refine_eq(AttrKey::City, "denver");
        assert_eq!(
            session.state(),
            LookupState::Resolved("west.h3.jsmithe".parse().unwrap())
        );
        assert_eq!(session.constraint_count(), 3);
    }

    #[test]
    fn over_constraining_yields_empty() {
        let r = registry();
        let mut session = LookupSession::new(
            &r,
            RequesterContext::default(),
            Query::name_like("smith", 1),
        );
        session.refine_eq(AttrKey::City, "paris");
        assert_eq!(session.state(), LookupState::Empty);
    }

    #[test]
    fn unique_match_resolves_immediately() {
        let r = registry();
        let session = LookupSession::new(
            &r,
            RequesterContext::default(),
            Query::name_like("jones", 0),
        );
        assert_eq!(
            session.state(),
            LookupState::Resolved("east.h4.mjones".parse().unwrap())
        );
    }
}
