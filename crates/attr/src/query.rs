//! The attribute query language.
//!
//! Queries identify "one or more mail recipients by attributes instead of
//! only by precise names" (abstract). A query is a small boolean AST over
//! attribute predicates; evaluation respects per-attribute visibility and
//! supports fuzzy name predicates for the directory-lookup application.

use serde::{Deserialize, Serialize};

use crate::attribute::{AttrKey, AttributeSet, RequesterContext};
use crate::fuzzy::{classify, MatchQuality};

/// A predicate over one attribute key.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Predicate {
    /// Text equals (case-insensitive) or number equals.
    Equals(crate::attribute::AttrValue),
    /// Text contains the given (case-insensitive) substring.
    Contains(String),
    /// Text matches with spelling/phonetic tolerance.
    Fuzzy {
        /// The (possibly misspelled) query string.
        query: String,
        /// Spelling errors tolerated before phonetic fallback.
        max_edits: usize,
    },
    /// Number lies in `[lo, hi]` (inclusive).
    InRange {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// The key merely exists (with any visible value).
    Exists,
}

impl Predicate {
    fn matches(&self, value: &crate::attribute::AttrValue) -> bool {
        match self {
            Predicate::Equals(want) => match (want, value) {
                (crate::attribute::AttrValue::Text(a), crate::attribute::AttrValue::Text(b)) => {
                    a.eq_ignore_ascii_case(b)
                }
                (
                    crate::attribute::AttrValue::Number(a),
                    crate::attribute::AttrValue::Number(b),
                ) => a == b,
                _ => false,
            },
            Predicate::Contains(sub) => value
                .as_text_lower()
                .is_some_and(|t| t.contains(&sub.to_lowercase())),
            Predicate::Fuzzy { query, max_edits } => value
                .as_text_lower()
                .is_some_and(|t| classify(query, &t, *max_edits) != MatchQuality::None),
            Predicate::InRange { lo, hi } => {
                value.as_number().is_some_and(|n| n >= *lo && n <= *hi)
            }
            Predicate::Exists => true,
        }
    }
}

/// A boolean query over attributes.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Query {
    /// A predicate on one key: satisfied if *any* visible value matches.
    Attr(AttrKey, Predicate),
    /// All sub-queries must hold.
    All(Vec<Query>),
    /// At least one sub-query must hold.
    Any(Vec<Query>),
    /// The sub-query must not hold.
    Not(Box<Query>),
}

impl Query {
    /// Convenience: `key == text`.
    pub fn text_eq(key: AttrKey, text: &str) -> Query {
        Query::Attr(key, Predicate::Equals(text.into()))
    }

    /// Convenience: fuzzy name lookup across first/last/nick/misspelling.
    pub fn name_like(query: &str, max_edits: usize) -> Query {
        let p = |k: AttrKey| {
            Query::Attr(
                k,
                Predicate::Fuzzy {
                    query: query.to_owned(),
                    max_edits,
                },
            )
        };
        Query::Any(vec![
            p(AttrKey::FirstName),
            p(AttrKey::LastName),
            p(AttrKey::Nickname),
            p(AttrKey::Misspelling),
        ])
    }

    /// Evaluates the query against one user's attributes, as seen by
    /// `ctx` (invisible attributes are as if absent).
    ///
    /// # Examples
    ///
    /// ```
    /// use lems_attr::attribute::{AttrKey, AttributeSet, RequesterContext, Visibility};
    /// use lems_attr::query::{Predicate, Query};
    ///
    /// let mut a = AttributeSet::new();
    /// a.add(AttrKey::Expertise, "electronic mail", Visibility::Public);
    /// let q = Query::Attr(AttrKey::Expertise, Predicate::Contains("mail".into()));
    /// assert!(q.eval(&a, &RequesterContext::default()));
    /// ```
    pub fn eval(&self, attrs: &AttributeSet, ctx: &RequesterContext) -> bool {
        match self {
            Query::Attr(key, pred) => attrs.visible_values(key, ctx).any(|v| pred.matches(v)),
            Query::All(qs) => qs.iter().all(|q| q.eval(attrs, ctx)),
            Query::Any(qs) => qs.iter().any(|q| q.eval(attrs, ctx)),
            Query::Not(q) => !q.eval(attrs, ctx),
        }
    }

    /// Number of predicate leaves (a crude cost measure for the
    /// flow-control estimate).
    pub fn leaf_count(&self) -> usize {
        match self {
            Query::Attr(..) => 1,
            Query::All(qs) | Query::Any(qs) => qs.iter().map(Query::leaf_count).sum(),
            Query::Not(q) => q.leaf_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Visibility;

    fn profile() -> AttributeSet {
        let mut a = AttributeSet::new();
        a.add(AttrKey::FirstName, "Wael", Visibility::Public);
        a.add(AttrKey::LastName, "Hidal", Visibility::Public);
        a.add(AttrKey::Misspelling, "Waiel", Visibility::Public);
        a.add(AttrKey::Organization, "DEC", Visibility::Public);
        a.add(
            AttrKey::Expertise,
            "electronic mail systems",
            Visibility::Public,
        );
        a.add(
            AttrKey::Custom("experience-years".into()),
            12i64,
            Visibility::Public,
        );
        a.add(AttrKey::Interest, "opera", Visibility::Private);
        a
    }

    fn anon() -> RequesterContext {
        RequesterContext::default()
    }

    #[test]
    fn equals_and_contains() {
        let p = profile();
        assert!(Query::text_eq(AttrKey::Organization, "dec").eval(&p, &anon()));
        assert!(!Query::text_eq(AttrKey::Organization, "ibm").eval(&p, &anon()));
        assert!(
            Query::Attr(AttrKey::Expertise, Predicate::Contains("MAIL".into())).eval(&p, &anon())
        );
    }

    #[test]
    fn fuzzy_name_lookup_matches_misspellings() {
        let p = profile();
        // One edit away from the registered first name.
        assert!(Query::name_like("Wail", 1).eval(&p, &anon()));
        // Matches the registered misspelling exactly.
        assert!(Query::name_like("Waiel", 0).eval(&p, &anon()));
        assert!(!Query::name_like("Zorro", 1).eval(&p, &anon()));
    }

    #[test]
    fn numeric_ranges() {
        let p = profile();
        let key = AttrKey::Custom("experience-years".into());
        assert!(Query::Attr(key.clone(), Predicate::InRange { lo: 10, hi: 20 }).eval(&p, &anon()));
        assert!(!Query::Attr(key, Predicate::InRange { lo: 0, hi: 5 }).eval(&p, &anon()));
    }

    #[test]
    fn boolean_composition() {
        let p = profile();
        let q = Query::All(vec![
            Query::text_eq(AttrKey::Organization, "DEC"),
            Query::Not(Box::new(Query::text_eq(AttrKey::LastName, "Yuen"))),
        ]);
        assert!(q.eval(&p, &anon()));
        assert_eq!(q.leaf_count(), 2);
    }

    #[test]
    fn private_attributes_invisible_to_queries() {
        let p = profile();
        let q = Query::Attr(AttrKey::Interest, Predicate::Exists);
        assert!(!q.eval(&p, &anon()), "private interest must not match");
    }

    #[test]
    fn exists_predicate() {
        let p = profile();
        assert!(Query::Attr(AttrKey::Expertise, Predicate::Exists).eval(&p, &anon()));
        assert!(!Query::Attr(AttrKey::City, Predicate::Exists).eval(&p, &anon()));
    }
}
