//! Per-server attribute registries.
//!
//! Each mail server holds the attribute profiles of the users it is an
//! authority for (the same partitioning as the name database of §2);
//! attribute searches fan out across servers via the MST and each server
//! answers from its local registry.

use std::collections::BTreeMap;

use lems_core::name::MailName;
use serde::{Deserialize, Serialize};

use crate::attribute::{AttributeSet, RequesterContext};
use crate::query::Query;

/// One server's attribute database.
///
/// # Examples
///
/// ```
/// use lems_attr::attribute::{AttrKey, AttributeSet, RequesterContext, Visibility};
/// use lems_attr::query::Query;
/// use lems_attr::registry::AttributeRegistry;
///
/// let mut reg = AttributeRegistry::new();
/// let mut attrs = AttributeSet::new();
/// attrs.add(AttrKey::Expertise, "databases", Visibility::Public);
/// reg.upsert("east.h1.alice".parse()?, attrs);
///
/// let hits = reg.search(
///     &Query::text_eq(AttrKey::Expertise, "databases"),
///     &RequesterContext::default(),
/// );
/// assert_eq!(hits.len(), 1);
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AttributeRegistry {
    profiles: BTreeMap<MailName, AttributeSet>,
}

impl AttributeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        AttributeRegistry::default()
    }

    /// Adds or replaces a user's profile.
    pub fn upsert(&mut self, user: MailName, attrs: AttributeSet) {
        self.profiles.insert(user, attrs);
    }

    /// Removes a user's profile.
    pub fn remove(&mut self, user: &MailName) -> Option<AttributeSet> {
        self.profiles.remove(user)
    }

    /// The profile of `user`, if registered.
    pub fn profile(&self, user: &MailName) -> Option<&AttributeSet> {
        self.profiles.get(user)
    }

    /// Mutable profile access (attribute maintenance).
    pub fn profile_mut(&mut self, user: &MailName) -> Option<&mut AttributeSet> {
        self.profiles.get_mut(user)
    }

    /// Number of registered profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Users whose visible attributes satisfy `query`.
    pub fn search(&self, query: &Query, ctx: &RequesterContext) -> Vec<&MailName> {
        self.profiles
            .iter()
            .filter(|(_, attrs)| query.eval(attrs, ctx))
            .map(|(name, _)| name)
            .collect()
    }

    /// Number of matches only (what convergecast summaries carry).
    pub fn count_matches(&self, query: &Query, ctx: &RequesterContext) -> u64 {
        self.profiles
            .values()
            .filter(|attrs| query.eval(attrs, ctx))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttrKey, Visibility};

    fn reg() -> AttributeRegistry {
        let mut r = AttributeRegistry::new();
        for (name, field, vis) in [
            ("east.h1.alice", "databases", Visibility::Public),
            ("east.h1.bob", "networks", Visibility::Public),
            (
                "east.h2.carol",
                "databases",
                Visibility::Organization("DEC".into()),
            ),
        ] {
            let mut a = AttributeSet::new();
            a.add(AttrKey::Expertise, field, vis);
            r.upsert(name.parse().unwrap(), a);
        }
        r
    }

    #[test]
    fn search_respects_visibility() {
        let r = reg();
        let q = Query::text_eq(AttrKey::Expertise, "databases");
        let anon = RequesterContext::default();
        let hits = r.search(&q, &anon);
        assert_eq!(hits.len(), 1); // carol's profile is org-restricted
        assert_eq!(hits[0].to_string(), "east.h1.alice");

        let insider = RequesterContext {
            organization: Some("DEC".into()),
        };
        assert_eq!(r.search(&q, &insider).len(), 2);
        assert_eq!(r.count_matches(&q, &insider), 2);
    }

    #[test]
    fn upsert_and_remove() {
        let mut r = reg();
        assert_eq!(r.len(), 3);
        let name: MailName = "east.h1.bob".parse().unwrap();
        assert!(r.profile(&name).is_some());
        assert!(r.remove(&name).is_some());
        assert!(r.profile(&name).is_none());
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn profile_mut_allows_maintenance() {
        let mut r = reg();
        let name: MailName = "east.h1.alice".parse().unwrap();
        r.profile_mut(&name)
            .unwrap()
            .add(AttrKey::City, "Boston", Visibility::Public);
        let q = Query::text_eq(AttrKey::City, "boston");
        assert_eq!(r.count_matches(&q, &RequesterContext::default()), 1);
    }
}
