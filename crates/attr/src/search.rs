//! Distributed attribute search over the two-level MST (§3.3.1A).
//!
//! "One interesting feature of attribute-based mail system is how to
//! efficiently search for a class of customers in a large network." The
//! query is broadcast down the backbone+local MST; each server evaluates
//! it against its local registry; responses convergecast back up as
//! summary messages, with parent timeouts masking dead servers.

use std::collections::BTreeMap;

use lems_core::name::MailName;
use lems_net::graph::NodeId;
use lems_net::topology::Topology;
use lems_sim::failure::FailurePlan;
use lems_sim::time::{SimDuration, SimTime};

use lems_mst::backbone::{build_two_level, TwoLevelMst};
use lems_mst::broadcast::{simulate_broadcast, BroadcastConfig, RegionCostTable};

use crate::attribute::RequesterContext;
use crate::query::Query;
use crate::registry::AttributeRegistry;

/// A multi-region network of attribute servers glued to its spanning
/// structure.
#[derive(Clone, Debug)]
pub struct AttributeNetwork {
    topology: Topology,
    two_level: TwoLevelMst,
    registries: BTreeMap<NodeId, AttributeRegistry>,
}

/// Result of one distributed search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Total matches reported to the root.
    pub matches: u64,
    /// Nodes that answered.
    pub responded: u64,
    /// Subtrees lost to timeouts.
    pub unavailable: u64,
    /// Virtual time until the root had the full summary.
    pub completed_at: SimTime,
    /// Ground truth (all registries evaluated centrally) — lets
    /// experiments verify what failures cost.
    pub ground_truth_matches: u64,
}

impl AttributeNetwork {
    /// Builds the network: the two-level MST is derived from `topology`,
    /// and each server node gets its registry from `registries` (servers
    /// without an entry hold an empty registry).
    ///
    /// # Panics
    ///
    /// Panics if the topology is disconnected or a region is internally
    /// disconnected (as [`build_two_level`]).
    pub fn new(topology: Topology, registries: BTreeMap<NodeId, AttributeRegistry>) -> Self {
        let two_level = build_two_level(&topology);
        AttributeNetwork {
            topology,
            two_level,
            registries,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The spanning structure used for broadcasts.
    pub fn two_level(&self) -> &TwoLevelMst {
        &self.two_level
    }

    /// The registry at `server` (empty default if none installed).
    pub fn registry(&self, server: NodeId) -> Option<&AttributeRegistry> {
        self.registries.get(&server)
    }

    /// Users matching `query` across all registries (centralized ground
    /// truth — what a failure-free search would find).
    pub fn central_matches(&self, query: &Query, ctx: &RequesterContext) -> Vec<MailName> {
        let mut out: Vec<MailName> = self
            .registries
            .values()
            .flat_map(|r| r.search(query, ctx).into_iter().cloned())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Runs the distributed search from `root` under `plan`'s failures.
    /// Returns `None` if the root was down.
    pub fn search(
        &self,
        root: NodeId,
        query: &Query,
        ctx: &RequesterContext,
        plan: &FailurePlan,
        seed: u64,
    ) -> Option<SearchOutcome> {
        let g = self.topology.graph();
        let adjacency = self.two_level.adjacency(&self.topology);
        let local_matches: Vec<u64> = (0..g.node_count())
            .map(|i| {
                self.registries
                    .get(&NodeId(i))
                    .map_or(0, |r| r.count_matches(query, ctx))
            })
            .collect();
        let cfg = BroadcastConfig {
            root,
            local_matches,
            grace: SimDuration::from_units(2.0),
            seed,
        };
        let out = simulate_broadcast(g, &adjacency, &cfg, plan)?;
        Some(SearchOutcome {
            matches: out.aggregate.matches,
            responded: out.aggregate.responded,
            unavailable: out.aggregate.unavailable,
            completed_at: out.completed_at,
            ground_truth_matches: self.central_matches(query, ctx).len() as u64,
        })
    }

    /// The §3.3.1B cost table: per-region delivery cost as seen from the
    /// root's region.
    pub fn cost_table(&self, root: NodeId) -> RegionCostTable {
        lems_mst::broadcast::region_cost_table(
            &self.topology,
            &self.two_level,
            self.topology.region(root),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttrKey, AttributeSet, Visibility};
    use lems_net::generators::{multi_region, MultiRegionConfig};
    use lems_sim::actor::ActorId;
    use lems_sim::rng::SimRng;

    fn network(seed: u64) -> AttributeNetwork {
        let mut rng = SimRng::seed(seed);
        let cfg = MultiRegionConfig {
            regions: 3,
            hosts_per_region: 2,
            servers_per_region: 2,
            ..MultiRegionConfig::default()
        };
        let raw = multi_region(&mut rng, &cfg);
        // Distinct weights for deterministic trees.
        let g = raw.graph().with_distinct_weights();
        let mut t = Topology::new();
        for n in raw.nodes() {
            match raw.kind(n) {
                lems_net::topology::NodeKind::Host => t.add_host(raw.region(n), raw.name(n)),
                lems_net::topology::NodeKind::Server => t.add_server(raw.region(n), raw.name(n)),
            };
        }
        for e in g.edges() {
            t.link(e.a, e.b, e.weight);
        }

        let mut registries = BTreeMap::new();
        for (i, &s) in t.servers().iter().enumerate() {
            let mut reg = AttributeRegistry::new();
            let mut a = AttributeSet::new();
            a.add(AttrKey::Expertise, "mail", Visibility::Public);
            reg.upsert(format!("r{}.h.user{i}", t.region(s).0).parse().unwrap(), a);
            if i % 2 == 0 {
                let mut b = AttributeSet::new();
                b.add(AttrKey::Expertise, "networks", Visibility::Public);
                reg.upsert(format!("r{}.h.extra{i}", t.region(s).0).parse().unwrap(), b);
            }
            registries.insert(s, reg);
        }
        AttributeNetwork::new(t, registries)
    }

    #[test]
    fn failure_free_search_matches_ground_truth() {
        let net = network(1);
        let root = net.topology().servers()[0];
        let q = Query::text_eq(AttrKey::Expertise, "mail");
        let out = net
            .search(
                root,
                &q,
                &RequesterContext::default(),
                &FailurePlan::new(),
                1,
            )
            .unwrap();
        assert_eq!(out.matches, out.ground_truth_matches);
        assert_eq!(out.matches, 6); // one per server
        assert_eq!(out.responded as usize, net.topology().node_count());
        assert_eq!(out.unavailable, 0);
    }

    #[test]
    fn failures_cost_matches_and_are_reported() {
        let net = network(2);
        let root = net.topology().servers()[0];
        let q = Query::text_eq(AttrKey::Expertise, "mail");
        // Kill a non-root server for the whole run.
        let victim = net.topology().servers()[3];
        let mut plan = FailurePlan::new();
        plan.add_outage(ActorId(victim.0), SimTime::ZERO, SimTime::from_units(1e9))
            .unwrap();
        let out = net
            .search(root, &q, &RequesterContext::default(), &plan, 2)
            .unwrap();
        assert!(out.matches < out.ground_truth_matches);
        assert!(out.unavailable >= 1);
    }

    #[test]
    fn cost_table_covers_every_region() {
        let net = network(3);
        let root = net.topology().servers()[0];
        let table = net.cost_table(root);
        assert_eq!(table.rows.len(), 3);
        assert!(table.total() > 0.0);
        // The root's own region has no backbone component; it must be the
        // row with the smallest backbone contribution (not necessarily the
        // cheapest overall, but finite).
        assert!(table.rows.iter().all(|&(_, c)| c.is_finite()));
    }
}
