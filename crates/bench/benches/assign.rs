//! Criterion bench for T1/T2/T3/C6: the §3.1.1 assignment algorithm —
//! initialisation, balancing at batch 1 and batch 8, on the paper's
//! worked example and on larger synthetic regions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lems_net::generators::{fig1, multi_region, MultiRegionConfig};
use lems_sim::rng::SimRng;
use lems_syntax::assign::{balance, initialize, AssignmentProblem, BalanceOptions};
use lems_syntax::cost::{CostModel, ServerSpec};

fn fig1_problem() -> AssignmentProblem {
    let f = fig1();
    AssignmentProblem::from_topology(
        &f.topology,
        &f.users_per_host,
        ServerSpec::paper_example(),
        CostModel::paper_example(),
    )
}

fn synthetic_problem(hosts_per_region: usize, regions: usize) -> AssignmentProblem {
    let mut rng = SimRng::seed(7);
    let t = multi_region(
        &mut rng,
        &MultiRegionConfig {
            regions,
            hosts_per_region,
            servers_per_region: 3,
            ..MultiRegionConfig::default()
        },
    );
    let users: Vec<u32> = (0..t.hosts().len()).map(|i| 20 + (i as u32 % 40)).collect();
    AssignmentProblem::from_topology(
        &t,
        &users,
        ServerSpec::new(400, 0.5),
        CostModel::paper_example(),
    )
}

fn bench_assign(c: &mut Criterion) {
    let p_fig1 = fig1_problem();
    c.bench_function("assign/initialize/fig1", |b| {
        b.iter(|| initialize(std::hint::black_box(&p_fig1)));
    });
    c.bench_function("assign/balance/fig1/batch1", |b| {
        b.iter(|| {
            let mut a = initialize(&p_fig1);
            balance(&p_fig1, &mut a, BalanceOptions::default())
        });
    });
    c.bench_function("assign/balance/fig1/batch8", |b| {
        b.iter(|| {
            let mut a = initialize(&p_fig1);
            balance(
                &p_fig1,
                &mut a,
                BalanceOptions {
                    batch: 8,
                    ..BalanceOptions::default()
                },
            )
        });
    });

    let mut group = c.benchmark_group("assign/balance/scaling");
    for &(hosts, regions) in &[(6usize, 2usize), (12, 4), (24, 8)] {
        let p = synthetic_problem(hosts, regions);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}hosts", hosts * regions)),
            &p,
            |b, p| {
                b.iter(|| {
                    let mut a = initialize(p);
                    balance(
                        p,
                        &mut a,
                        BalanceOptions {
                            batch: 8,
                            ..BalanceOptions::default()
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_assign
}
criterion_main!(benches);
