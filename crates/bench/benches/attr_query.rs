//! Criterion bench for System 3's registry: exact, boolean, and fuzzy
//! attribute queries over a populated server registry.

use criterion::{criterion_group, criterion_main, Criterion};
use lems_attr::attribute::{AttrKey, AttributeSet, RequesterContext, Visibility};
use lems_attr::query::{Predicate, Query};
use lems_attr::registry::AttributeRegistry;

const PROFILES: usize = 2_000;

fn registry() -> AttributeRegistry {
    let fields = ["databases", "networks", "mail", "graphics", "compilers"];
    let orgs = ["DEC", "ATT", "IBM", "MIT"];
    let first = ["robert", "wael", "alice", "hsi", "maria", "chen"];
    let last = ["smith", "hidal", "yuen", "jones", "garcia"];
    let mut reg = AttributeRegistry::new();
    for i in 0..PROFILES {
        let mut a = AttributeSet::new();
        a.add(
            AttrKey::FirstName,
            first[i % first.len()],
            Visibility::Public,
        );
        a.add(AttrKey::LastName, last[i % last.len()], Visibility::Public);
        a.add(
            AttrKey::Expertise,
            fields[i % fields.len()],
            Visibility::Public,
        );
        a.add(
            AttrKey::Organization,
            orgs[i % orgs.len()],
            Visibility::Public,
        );
        a.add(
            AttrKey::Custom("experience-years".into()),
            (i % 30) as i64,
            Visibility::Public,
        );
        reg.upsert(format!("east.h{}.u{i}", i % 11).parse().expect("valid"), a);
    }
    reg
}

fn bench_attr_query(c: &mut Criterion) {
    let reg = registry();
    let ctx = RequesterContext::default();

    let exact = Query::text_eq(AttrKey::Expertise, "mail");
    c.bench_function("attr/query/exact", |b| {
        b.iter(|| reg.count_matches(std::hint::black_box(&exact), &ctx));
    });

    let boolean = Query::All(vec![
        Query::text_eq(AttrKey::Organization, "DEC"),
        Query::Any(vec![
            Query::text_eq(AttrKey::Expertise, "mail"),
            Query::text_eq(AttrKey::Expertise, "networks"),
        ]),
        Query::Attr(
            AttrKey::Custom("experience-years".into()),
            Predicate::InRange { lo: 5, hi: 20 },
        ),
    ]);
    c.bench_function("attr/query/boolean", |b| {
        b.iter(|| reg.count_matches(std::hint::black_box(&boolean), &ctx));
    });

    let fuzzy = Query::name_like("smyth", 1);
    c.bench_function("attr/query/fuzzy-name", |b| {
        b.iter(|| reg.count_matches(std::hint::black_box(&fuzzy), &ctx));
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_attr_query
}
criterion_main!(benches);
