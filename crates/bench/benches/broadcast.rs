//! Criterion bench for C3/C4: simulated broadcast/convergecast over the
//! two-level tree and the per-region cost-table computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lems_bench::mst_exp::distinct_world;
use lems_mst::backbone::build_two_level;
use lems_mst::broadcast::{region_cost_table, simulate_broadcast, BroadcastConfig};
use lems_sim::failure::FailurePlan;
use lems_sim::time::SimDuration;

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast/convergecast");
    for &regions in &[2usize, 4, 8] {
        let t = distinct_world(regions as u64, regions, 3, 4);
        let two = build_two_level(&t);
        let adjacency = two.adjacency(&t);
        let root = t.servers()[0];
        let n = t.node_count();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}nodes")),
            &(t, adjacency, root),
            |b, (t, adjacency, root)| {
                b.iter(|| {
                    simulate_broadcast(
                        t.graph(),
                        adjacency,
                        &BroadcastConfig {
                            root: *root,
                            local_matches: vec![1; t.node_count()],
                            grace: SimDuration::from_units(2.0),
                            seed: 1,
                        },
                        &FailurePlan::new(),
                    )
                });
            },
        );
    }
    group.finish();

    let t = distinct_world(5, 8, 3, 3);
    let two = build_two_level(&t);
    let root = t.servers()[0];
    c.bench_function("broadcast/region-cost-table", |b| {
        b.iter(|| region_cost_table(&t, &two, t.region(root)));
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_broadcast
}
criterion_main!(benches);
