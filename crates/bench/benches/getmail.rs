//! Criterion bench for C1/C2: one GetMail check vs one poll-all sweep,
//! with and without failures in the window.

use criterion::{criterion_group, criterion_main, Criterion};
use lems_core::message::MessageId;
use lems_net::graph::NodeId;
use lems_sim::actor::ActorId;
use lems_sim::failure::FailurePlan;
use lems_sim::time::SimTime;
use lems_syntax::getmail::{poll_all, GetMailState, PlanStore};

fn servers(n: usize) -> Vec<NodeId> {
    (0..n).map(NodeId).collect()
}

fn settled_state(store: &mut PlanStore, auth: &[NodeId]) -> GetMailState {
    let mut st = GetMailState::new();
    let _ = st.get_mail(auth, store, SimTime::from_units(0.5));
    st
}

fn bench_getmail(c: &mut Criterion) {
    let auth = servers(3);

    c.bench_function("getmail/check/steady", |b| {
        let mut store = PlanStore::new(FailurePlan::new());
        let mut st = settled_state(&mut store, &auth);
        let mut t = 1.0;
        let mut id = 0u64;
        b.iter(|| {
            t += 1.0;
            store.deposit(&auth, MessageId(id), SimTime::from_units(t - 0.5));
            id += 1;
            st.get_mail(&auth, &mut store, SimTime::from_units(t))
        });
    });

    c.bench_function("getmail/check/primary-flapping", |b| {
        let mut plan = FailurePlan::new();
        // Primary flaps every 10 units for a long horizon.
        let mut x = 5.0;
        while x < 1e5 {
            plan.add_outage(
                ActorId(0),
                SimTime::from_units(x),
                SimTime::from_units(x + 5.0),
            )
            .expect("outage window is well-formed");
            x += 10.0;
        }
        let mut store = PlanStore::new(plan);
        let mut st = settled_state(&mut store, &auth);
        let mut t = 1.0;
        let mut id = 0u64;
        b.iter(|| {
            t += 1.0;
            store.deposit(&auth, MessageId(id), SimTime::from_units(t - 0.5));
            id += 1;
            st.get_mail(&auth, &mut store, SimTime::from_units(t))
        });
    });

    c.bench_function("getmail/poll-all/steady", |b| {
        let mut store = PlanStore::new(FailurePlan::new());
        let mut t = 1.0;
        let mut id = 0u64;
        b.iter(|| {
            t += 1.0;
            store.deposit(&auth, MessageId(id), SimTime::from_units(t - 0.5));
            id += 1;
            poll_all(&auth, &mut store, SimTime::from_units(t))
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_getmail
}
criterion_main!(benches);
