//! Criterion bench for FIG2/C3: distributed GHS tree construction vs the
//! centralized Kruskal baseline, and the two-level construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lems_bench::mst_exp::distinct_world;
use lems_mst::backbone::{build_two_level, build_two_level_distributed};
use lems_mst::ghs::run_ghs;
use lems_net::graph::{Graph, NodeId, Weight};
use lems_net::mst::kruskal;
use lems_sim::rng::SimRng;

fn random_connected(seed: u64, n: usize, extra: usize) -> Graph {
    let mut rng = SimRng::seed(seed);
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        let j = rng.index(i);
        g.add_edge(
            NodeId(i),
            NodeId(j),
            Weight::from_units(rng.range(1..=100) as f64),
        );
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < extra * 30 {
        attempts += 1;
        let a = rng.index(n);
        let b = rng.index(n);
        if a != b && g.edge_between(NodeId(a), NodeId(b)).is_none() {
            g.add_edge(
                NodeId(a),
                NodeId(b),
                Weight::from_units(rng.range(1..=100) as f64),
            );
            added += 1;
        }
    }
    g.with_distinct_weights()
}

fn bench_ghs(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst/ghs-vs-kruskal");
    for &n in &[8usize, 16, 32] {
        let g = random_connected(n as u64, n, n);
        group.bench_with_input(BenchmarkId::new("ghs", n), &g, |b, g| {
            b.iter(|| run_ghs(std::hint::black_box(g), 1));
        });
        group.bench_with_input(BenchmarkId::new("kruskal", n), &g, |b, g| {
            b.iter(|| kruskal(std::hint::black_box(g)));
        });
    }
    group.finish();

    let world = distinct_world(9, 4, 3, 3);
    c.bench_function("mst/two-level/centralized", |b| {
        b.iter(|| build_two_level(std::hint::black_box(&world)));
    });
    c.bench_function("mst/two-level/distributed", |b| {
        b.iter(|| build_two_level_distributed(std::hint::black_box(&world), 1));
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_ghs
}
criterion_main!(benches);
