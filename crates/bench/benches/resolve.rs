//! Criterion bench comparing name resolution under System 1
//! (syntax-directed, table lookups) and System 2 (hash-based sub-groups).

use std::collections::{BTreeMap, HashMap};

use criterion::{criterion_group, criterion_main, Criterion};
use lems_core::directory::Directory;
use lems_core::name::MailName;
use lems_core::user::AuthorityList;
use lems_locindep::resolve::LocIndepResolver;
use lems_locindep::subgroup::SubgroupMap;
use lems_net::graph::NodeId;
use lems_net::topology::RegionId;
use lems_syntax::resolve::SyntaxResolver;

const USERS: usize = 2_000;

fn names() -> Vec<MailName> {
    (0..USERS)
        .map(|i| format!("east.h{}.user{i}", i % 17).parse().expect("valid"))
        .collect()
}

fn syntax_resolver(names: &[MailName]) -> SyntaxResolver {
    let mut dir = Directory::new();
    dir.map_region("east", RegionId(0));
    dir.map_region("west", RegionId(1));
    for (i, n) in names.iter().enumerate() {
        dir.register(
            n.clone(),
            NodeId(100 + i % 17),
            AuthorityList::new(vec![NodeId(i % 3), NodeId((i + 1) % 3)]),
        )
        .expect("unique");
    }
    let views = dir.partition(&[NodeId(0), NodeId(1), NodeId(2)]);
    let mut region_index = BTreeMap::new();
    for rec in dir.iter() {
        region_index.insert(rec.name.clone(), rec.authorities.clone());
    }
    let mut region_servers = BTreeMap::new();
    region_servers.insert(RegionId(0), vec![NodeId(0), NodeId(1), NodeId(2)]);
    region_servers.insert(RegionId(1), vec![NodeId(9)]);
    SyntaxResolver::new(
        NodeId(0),
        RegionId(0),
        views[&NodeId(0)].clone(),
        region_index,
        region_servers,
    )
}

fn locindep_resolver() -> LocIndepResolver {
    let subgroups = SubgroupMap::new(64, vec![NodeId(0), NodeId(1), NodeId(2)]);
    let mut region_names = HashMap::new();
    region_names.insert("east".to_owned(), RegionId(0));
    region_names.insert("west".to_owned(), RegionId(1));
    let mut region_servers = BTreeMap::new();
    region_servers.insert(RegionId(0), vec![NodeId(0), NodeId(1), NodeId(2)]);
    region_servers.insert(RegionId(1), vec![NodeId(9)]);
    LocIndepResolver::new(
        NodeId(0),
        RegionId(0),
        subgroups,
        region_names,
        region_servers,
    )
}

fn bench_resolve(c: &mut Criterion) {
    // Cached vs uncached resolution under Zipf traffic (§4.1 caching).
    {
        use lems_sim::rng::SimRng;
        use lems_sim::time::{SimDuration, SimTime};
        use lems_syntax::cache::ResolutionCache;

        let names = names();
        let syntax = syntax_resolver(&names);
        let mut rng = SimRng::seed(3);
        let mut weights = vec![0.0f64; names.len()];
        for (rank, w) in weights.iter_mut().enumerate() {
            *w = 1.0 / ((rank + 1) as f64).powf(1.1);
        }
        let stream: Vec<usize> = (0..4096).map(|_| rng.weighted_index(&weights)).collect();

        c.bench_function("resolve/uncached-zipf", |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % stream.len();
                syntax.resolve(std::hint::black_box(&names[stream[i]]))
            });
        });
        c.bench_function("resolve/cached-zipf", |b| {
            let mut cache = ResolutionCache::new(200, SimDuration::from_units(1e9));
            let mut i = 0;
            let mut k = 0u64;
            b.iter(|| {
                i = (i + 1) % stream.len();
                k += 1;
                let now = SimTime::from_ticks(k);
                let name = &names[stream[i]];
                if cache.get(name, now).is_none() {
                    let _ = syntax.resolve(std::hint::black_box(name));
                    cache.put(
                        name.clone(),
                        AuthorityList::new(vec![NodeId(stream[i] % 3)]),
                        now,
                    );
                }
            });
        });
    }

    let names = names();
    let syntax = syntax_resolver(&names);
    let locindep = locindep_resolver();

    c.bench_function("resolve/syntax-directed", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % names.len();
            syntax.resolve(std::hint::black_box(&names[i]))
        });
    });
    c.bench_function("resolve/location-independent", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % names.len();
            locindep.resolve(std::hint::black_box(&names[i]))
        });
    });
    c.bench_function("resolve/foreign-region", |b| {
        let foreign: MailName = "west.h1.zed".parse().expect("valid");
        b.iter(|| syntax.resolve(std::hint::black_box(&foreign)));
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_resolve
}
criterion_main!(benches);
