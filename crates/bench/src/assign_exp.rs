//! Experiments FIG1, T1, T2, T3, C6: the server-assignment worked
//! examples and their ablations.

use std::fmt::Write;

use lems_net::generators::{fig1, table3, Fig1Scenario};
use lems_net::graph::NodeId;
use lems_syntax::assign::{
    balance, initialize, server_ranking, Assignment, AssignmentProblem, BalanceOptions,
    BalanceReport,
};
use lems_syntax::cost::{CostModel, ServerSpec};
use lems_syntax::reconfig::Reconfigurator;

use crate::render::{f1, f3, Table};

/// The assignment problem for the Fig. 1 scenario with the paper's
/// constants (`W1=4`, `W2=1`, `z=0.5`, `M=100`).
pub fn fig1_problem() -> (Fig1Scenario, AssignmentProblem) {
    let f = fig1();
    let p = AssignmentProblem::from_topology(
        &f.topology,
        &f.users_per_host,
        ServerSpec::paper_example(),
        CostModel::paper_example(),
    );
    (f, p)
}

/// The Table 3 variant (host populations 100/100/20).
pub fn table3_problem() -> (Fig1Scenario, AssignmentProblem) {
    let f = table3();
    let p = AssignmentProblem::from_topology(
        &f.topology,
        &f.users_per_host,
        ServerSpec::paper_example(),
        CostModel::paper_example(),
    );
    (f, p)
}

/// Renders an assignment in the paper's table layout (host, server,
/// users), plus a per-server load/utilisation footer.
pub fn render_assignment(scenario: &Fig1Scenario, p: &AssignmentProblem, a: &Assignment) -> String {
    let mut t = Table::new(vec!["host", "server", "users"]);
    for (i, j, k) in a.table_rows() {
        t.row(vec![
            scenario.topology.name(p.hosts[i].node).to_owned(),
            scenario.topology.name(p.servers[j].0).to_owned(),
            k.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push('\n');
    let mut loads = Table::new(vec!["server", "load", "capacity", "utilisation"]);
    for j in 0..p.server_count() {
        loads.row(vec![
            scenario.topology.name(p.servers[j].0).to_owned(),
            a.load(j).to_string(),
            p.servers[j].1.max_load.to_string(),
            f3(a.utilization(p, j)),
        ]);
    }
    out.push_str(&loads.render());
    let _ = write!(out, "\ntotal connection cost: {}\n", f1(a.total_cost(p)));
    out
}

/// Runs T1 + T2: initial assignment and balanced assignment for Fig. 1.
pub fn tables_1_and_2() -> (Assignment, Assignment, BalanceReport) {
    let (_, p) = fig1_problem();
    let initial = initialize(&p);
    let mut balanced = initial.clone();
    let report = balance(&p, &mut balanced, BalanceOptions::default());
    (initial, balanced, report)
}

/// One row of the C6 batch-size ablation.
#[derive(Clone, Copy, Debug)]
pub struct BatchRow {
    /// Users moved per accepted transfer.
    pub batch: u32,
    /// Accepted transfers until convergence.
    pub moves: u64,
    /// Passes over the hosts.
    pub passes: u64,
    /// Final objective.
    pub final_cost: f64,
}

/// C6a: "the algorithm can be made much faster if in each iteration more
/// than one user is moved" — sweep the batch size.
pub fn batch_ablation(batches: &[u32]) -> Vec<BatchRow> {
    let (_, p) = fig1_problem();
    batches
        .iter()
        .map(|&batch| {
            let mut a = initialize(&p);
            let r = balance(
                &p,
                &mut a,
                BalanceOptions {
                    batch,
                    ..BalanceOptions::default()
                },
            );
            BatchRow {
                batch,
                moves: r.moves,
                passes: r.passes,
                final_cost: r.final_cost,
            }
        })
        .collect()
}

/// One row of the C6 weight-sensitivity ablation.
#[derive(Clone, Copy, Debug)]
pub struct WeightRow {
    /// `W1` (communication weight).
    pub w_comm: f64,
    /// `W2` (processing weight).
    pub w_proc: f64,
    /// Final objective.
    pub final_cost: f64,
    /// Spread between the most and least utilised servers.
    pub utilisation_spread: f64,
    /// Hosts whose users ended up split across servers.
    pub split_hosts: usize,
}

/// C6b: weight sensitivity. Heavier `W2` buys tighter load balance at the
/// price of longer communication paths; heavier `W1` pins users to close
/// servers.
pub fn weight_ablation(weights: &[(f64, f64)]) -> Vec<WeightRow> {
    let f = fig1();
    weights
        .iter()
        .map(|&(w_comm, w_proc)| {
            let model = CostModel {
                w_comm,
                w_proc,
                ..CostModel::paper_example()
            };
            let p = AssignmentProblem::from_topology(
                &f.topology,
                &f.users_per_host,
                ServerSpec::paper_example(),
                model,
            );
            let mut a = initialize(&p);
            let r = balance(&p, &mut a, BalanceOptions::default());
            let utils: Vec<f64> = (0..p.server_count())
                .map(|j| a.utilization(&p, j))
                .collect();
            let spread = utils.iter().copied().fold(f64::MIN, f64::max)
                - utils.iter().copied().fold(f64::MAX, f64::min);
            let split_hosts = (0..p.host_count())
                .filter(|&i| (0..p.server_count()).filter(|&j| a.count(i, j) > 0).count() > 1)
                .count();
            WeightRow {
                w_comm,
                w_proc,
                final_cost: r.final_cost,
                utilisation_spread: spread,
                split_hosts,
            }
        })
        .collect()
}

/// C6c: add-server reconvergence — drop a fourth server next to the
/// hot-spot hosts and measure how much load it attracts and how many
/// users move.
#[derive(Clone, Copy, Debug)]
pub struct ReconfigRow {
    /// Users moved by the reconfiguration.
    pub moved_users: u64,
    /// Load attracted by the new server.
    pub new_server_load: u32,
    /// Objective before.
    pub cost_before: f64,
    /// Objective after.
    pub cost_after: f64,
}

/// Runs the C6c add-server experiment.
pub fn add_server_reconvergence() -> ReconfigRow {
    let (_, p) = fig1_problem();
    let (a, _) = lems_syntax::assign::solve(&p, BalanceOptions::default());
    let cost_before = a.total_cost(&p);
    let mut rec = Reconfigurator::new(p, a, BalanceOptions::default());
    let report = rec.add_server(
        NodeId(100),
        ServerSpec::paper_example(),
        &[2.0, 1.0, 2.0, 1.0, 1.0, 2.0],
    );
    let p2 = rec.problem();
    let a2 = rec.assignment();
    ReconfigRow {
        moved_users: report.moved_users,
        new_server_load: a2.load(p2.server_count() - 1),
        cost_before,
        cost_after: a2.total_cost(p2),
    }
}

/// Authority-list ranking sanity for the Fig. 1 scenario: returns for each
/// host the server ranking after balancing (used by `repro-table1-2`'s
/// footer).
pub fn fig1_rankings() -> Vec<(String, Vec<String>)> {
    let (f, p) = fig1_problem();
    let (a, _) = lems_syntax::assign::solve(&p, BalanceOptions::default());
    (0..p.host_count())
        .map(|i| {
            let names: Vec<String> = server_ranking(&p, &a, i)
                .into_iter()
                .map(|j| f.topology.name(p.servers[j].0).to_owned())
                .collect();
            (f.topology.name(p.hosts[i].node).to_owned(), names)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_reproduce_paper_shape() {
        let (initial, balanced, report) = tables_1_and_2();
        assert_eq!(initial.loads(), &[100, 150, 20]);
        let (_, p) = fig1_problem();
        assert!(balanced.overloaded(&p).is_empty());
        assert!(report.final_cost < report.initial_cost);
    }

    #[test]
    fn render_contains_hosts_and_servers() {
        let (f, p) = fig1_problem();
        let a = initialize(&p);
        let s = render_assignment(&f, &p, &a);
        assert!(s.contains("H1") && s.contains("S2") && s.contains("150"));
    }

    #[test]
    fn batch_ablation_monotone_moves() {
        let rows = batch_ablation(&[1, 4, 16]);
        assert!(rows[0].moves > rows[1].moves);
        assert!(rows[1].moves >= rows[2].moves);
        // All converge to comparable cost.
        for r in &rows {
            assert!((r.final_cost - rows[0].final_cost).abs() / rows[0].final_cost < 0.1);
        }
    }

    #[test]
    fn weight_ablation_tradeoff() {
        let rows = weight_ablation(&[(8.0, 1.0), (1.0, 8.0)]);
        // Processing-heavy weights should not balance worse than
        // communication-heavy ones.
        assert!(rows[1].utilisation_spread <= rows[0].utilisation_spread + 1e-9);
    }

    #[test]
    fn add_server_attracts_load_and_lowers_cost() {
        let r = add_server_reconvergence();
        assert!(r.new_server_load > 0);
        assert!(r.cost_after <= r.cost_before);
        assert!(r.moved_users > 0);
    }

    #[test]
    fn rankings_start_with_primary() {
        let ranks = fig1_rankings();
        assert_eq!(ranks.len(), 6);
        for (_, servers) in &ranks {
            assert_eq!(servers.len(), 3);
        }
    }
}
