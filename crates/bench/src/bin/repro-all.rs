//! Convenience: run every repro experiment in sequence (the same code the
//! individual `repro-*` binaries call), printing section markers. Useful
//! for regenerating `artifacts/` wholesale. A `--json` flag is forwarded
//! to every child, so each experiment emits its machine-readable form.

use std::process::Command;

fn main() {
    let bins: [(&str, &[&str]); 13] = [
        ("repro-fig1", &[]),
        ("repro-table1-2", &[]),
        ("repro-table3", &[]),
        ("repro-fig2", &[]),
        ("repro-getmail", &[]),
        ("repro-mst-cost", &[]),
        ("repro-attr-cost", &[]),
        ("repro-locindep", &[]),
        ("repro-assign-ablate", &[]),
        ("repro-cache", &[]),
        ("repro-scorecard", &[]),
        ("repro-scale", &["--smoke"]),
        ("repro-store", &["--smoke"]),
    ];
    let forward: Vec<String> = std::env::args().skip(1).filter(|a| a == "--json").collect();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for (bin, extra) in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================\n");
        let status = Command::new(dir.join(bin))
            .args(extra)
            .args(&forward)
            .status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("!! {bin} failed: {other:?}");
                failed.push(bin);
            }
        }
    }
    if !failed.is_empty() {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
    println!("\nall experiments completed.");
}
