//! Convenience: run every repro experiment in sequence (the same code the
//! individual `repro-*` binaries call), printing section markers. Useful
//! for regenerating `artifacts/` wholesale.

use std::process::Command;

fn main() {
    let bins = [
        "repro-fig1",
        "repro-table1-2",
        "repro-table3",
        "repro-fig2",
        "repro-getmail",
        "repro-mst-cost",
        "repro-attr-cost",
        "repro-locindep",
        "repro-assign-ablate",
        "repro-cache",
        "repro-scorecard",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================\n");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("!! {bin} failed: {other:?}");
                failed.push(bin);
            }
        }
    }
    if !failed.is_empty() {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
    println!("\nall experiments completed.");
}
