//! C6: ablations of the §3.1.1 assignment algorithm — batch-size speedup
//! ("the algorithm can be made much faster if in each iteration more than
//! one user is moved"), W1:W2 weight sensitivity, and add-server
//! reconvergence.

use lems_bench::assign_exp::{add_server_reconvergence, batch_ablation, weight_ablation};
use lems_bench::emit::{json_flag, Report};
use lems_bench::render::{f1, f3, Table};

fn main() {
    let mut report = Report::new(
        "assign-ablate",
        "C6 — assignment-algorithm ablations (Fig. 1 scenario)",
    );

    report.note("C6a: batch size vs convergence effort");
    let rows = batch_ablation(&[1, 2, 4, 8, 16, 32]);
    let mut t = Table::new(vec!["batch", "moves", "passes", "final cost"]);
    for r in &rows {
        t.row(vec![
            r.batch.to_string(),
            r.moves.to_string(),
            r.passes.to_string(),
            f1(r.final_cost),
        ]);
    }
    report.table("batch_ablation", &t);
    report.note("shape check: moves drop sharply with batch size at (near-)equal final cost.");

    report.note("C6b: weight sensitivity (W1 = communication, W2 = processing)");
    let rows = weight_ablation(&[(8.0, 1.0), (4.0, 1.0), (1.0, 1.0), (1.0, 4.0), (1.0, 8.0)]);
    let mut t = Table::new(vec![
        "W1",
        "W2",
        "final cost",
        "utilisation spread",
        "split hosts",
    ]);
    for r in &rows {
        t.row(vec![
            f1(r.w_comm),
            f1(r.w_proc),
            f1(r.final_cost),
            f3(r.utilisation_spread),
            r.split_hosts.to_string(),
        ]);
    }
    report.table("weight_ablation", &t);
    report.note(
        "shape check: processing-heavy weights tighten load balance;\n\
         communication-heavy weights pin users to nearby servers.",
    );

    report.note("C6c: add-server reconvergence (4th server adjacent to the hot spot)");
    let r = add_server_reconvergence();
    report.kv(
        "add_server",
        vec![
            ("moved users".into(), r.moved_users.to_string()),
            ("new server load".into(), r.new_server_load.to_string()),
            ("cost before".into(), f1(r.cost_before)),
            ("cost after".into(), f1(r.cost_after)),
        ],
    );
    report.note(
        "(paper §3.1.3c: 'the server assignment procedure is performed to\n\
         redistribute the load so that some users are assigned to the new server')",
    );

    report.emit(json_flag());
}
