//! C6: ablations of the §3.1.1 assignment algorithm — batch-size speedup
//! ("the algorithm can be made much faster if in each iteration more than
//! one user is moved"), W1:W2 weight sensitivity, and add-server
//! reconvergence.

use lems_bench::assign_exp::{add_server_reconvergence, batch_ablation, weight_ablation};
use lems_bench::render::{f1, f3, Table};

fn main() {
    println!("C6 — assignment-algorithm ablations (Fig. 1 scenario)\n");

    println!("C6a: batch size vs convergence effort");
    let rows = batch_ablation(&[1, 2, 4, 8, 16, 32]);
    let mut t = Table::new(vec!["batch", "moves", "passes", "final cost"]);
    for r in &rows {
        t.row(vec![
            r.batch.to_string(),
            r.moves.to_string(),
            r.passes.to_string(),
            f1(r.final_cost),
        ]);
    }
    println!("{}", t.render());
    println!("shape check: moves drop sharply with batch size at (near-)equal final cost.\n");

    println!("C6b: weight sensitivity (W1 = communication, W2 = processing)");
    let rows = weight_ablation(&[(8.0, 1.0), (4.0, 1.0), (1.0, 1.0), (1.0, 4.0), (1.0, 8.0)]);
    let mut t = Table::new(vec![
        "W1",
        "W2",
        "final cost",
        "utilisation spread",
        "split hosts",
    ]);
    for r in &rows {
        t.row(vec![
            f1(r.w_comm),
            f1(r.w_proc),
            f1(r.final_cost),
            f3(r.utilisation_spread),
            r.split_hosts.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("shape check: processing-heavy weights tighten load balance;\ncommunication-heavy weights pin users to nearby servers.\n");

    println!("C6c: add-server reconvergence (4th server adjacent to the hot spot)");
    let r = add_server_reconvergence();
    println!(
        "  moved users: {}, new server load: {}, cost {} -> {}",
        r.moved_users,
        r.new_server_load,
        f1(r.cost_before),
        f1(r.cost_after)
    );
    println!("  (paper §3.1.3c: 'the server assignment procedure is performed to\n   redistribute the load so that some users are assigned to the new server')");
}
