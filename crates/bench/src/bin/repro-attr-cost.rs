//! C4: the §3.3.1B per-region cost table for attribute-based mass
//! distribution, and the budget-driven flow-control walk ("the user can
//! select his recipients and the level of search he wants to be done").

use std::collections::BTreeMap;

use lems_attr::attribute::{AttrKey, AttributeSet, RequesterContext, Visibility};
use lems_attr::query::Query;
use lems_attr::registry::AttributeRegistry;
use lems_attr::search::AttributeNetwork;
use lems_attr::{distribute, estimate};
use lems_bench::emit::{json_flag, Report};
use lems_bench::mst_exp::distinct_world;
use lems_bench::render::{f1, Table};

fn main() {
    let t = distinct_world(11, 5, 3, 3);
    // Seed every server with one "opera" fan and one "sailing" fan.
    let mut registries = BTreeMap::new();
    for (i, &s) in t.servers().iter().enumerate() {
        let region = t.region(s).0;
        let mut reg = AttributeRegistry::new();
        for (k, interest) in [("opera", "opera"), ("sailing", "sailing")] {
            let mut a = AttributeSet::new();
            a.add(AttrKey::Interest, interest, Visibility::Public);
            reg.upsert(
                format!("r{region}.h.{k}{i}").parse().expect("valid name"),
                a,
            );
        }
        registries.insert(s, reg);
    }
    let net = AttributeNetwork::new(t, registries);
    let root = net.topology().servers()[0];
    let query = Query::text_eq(AttrKey::Interest, "opera");

    let mut report = Report::new(
        "attr-cost",
        format!(
            "C4 — §3.3.1B cost table from region {}",
            net.topology().region(root)
        ),
    );
    let est = estimate(&net, root, &query);
    let mut table = Table::new(vec!["region", "delivery cost (u)"]);
    for &(r, c) in &est.region_costs {
        table.row(vec![format!("{r}"), f1(c)]);
    }
    report.table("region_costs", &table);
    report.note(format!(
        "total = {} units; search charge estimate = {} units",
        f1(est.total_cost),
        f1(est.search_charge)
    ));

    report.note("budget walk (cheapest regions first):");
    let ctx = RequesterContext::default();
    let mut walk = Table::new(vec![
        "budget (u)",
        "regions",
        "recipients",
        "skipped",
        "cost (u)",
    ]);
    for frac in [1.0, 0.6, 0.3, 0.1] {
        let budget = est.total_cost * frac;
        let out = distribute(&net, root, &query, &ctx, Some(budget));
        walk.row(vec![
            f1(budget),
            out.regions.len().to_string(),
            out.recipients.len().to_string(),
            out.skipped_recipients.to_string(),
            f1(out.cost),
        ]);
    }
    report.table("budget_walk", &walk);

    let full = distribute(&net, root, &query, &ctx, None);
    report.note(format!(
        "unlimited budget: {} recipients across {} regions, cost {} units",
        full.recipients.len(),
        full.regions.len(),
        f1(full.cost)
    ));

    report.emit(json_flag());
}
