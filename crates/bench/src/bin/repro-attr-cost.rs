//! C4: the §3.3.1B per-region cost table for attribute-based mass
//! distribution, and the budget-driven flow-control walk ("the user can
//! select his recipients and the level of search he wants to be done").

use std::collections::BTreeMap;

use lems_attr::attribute::{AttrKey, AttributeSet, RequesterContext, Visibility};
use lems_attr::query::Query;
use lems_attr::registry::AttributeRegistry;
use lems_attr::search::AttributeNetwork;
use lems_attr::{distribute, estimate};
use lems_bench::mst_exp::distinct_world;
use lems_bench::render::{f1, Table};

fn main() {
    let t = distinct_world(11, 5, 3, 3);
    // Seed every server with one "opera" fan and one "sailing" fan.
    let mut registries = BTreeMap::new();
    for (i, &s) in t.servers().iter().enumerate() {
        let region = t.region(s).0;
        let mut reg = AttributeRegistry::new();
        for (k, interest) in [("opera", "opera"), ("sailing", "sailing")] {
            let mut a = AttributeSet::new();
            a.add(AttrKey::Interest, interest, Visibility::Public);
            reg.upsert(
                format!("r{region}.h.{k}{i}").parse().expect("valid name"),
                a,
            );
        }
        registries.insert(s, reg);
    }
    let net = AttributeNetwork::new(t, registries);
    let root = net.topology().servers()[0];
    let query = Query::text_eq(AttrKey::Interest, "opera");

    println!(
        "C4 — §3.3.1B cost table from region {}\n",
        net.topology().region(root)
    );
    let est = estimate(&net, root, &query);
    let mut table = Table::new(vec!["region", "delivery cost (u)"]);
    for &(r, c) in &est.region_costs {
        table.row(vec![format!("{r}"), f1(c)]);
    }
    println!("{}", table.render());
    println!(
        "total = {} units; search charge estimate = {} units\n",
        f1(est.total_cost),
        f1(est.search_charge)
    );

    println!("budget walk (cheapest regions first):");
    let ctx = RequesterContext::default();
    for frac in [1.0, 0.6, 0.3, 0.1] {
        let budget = est.total_cost * frac;
        let out = distribute(&net, root, &query, &ctx, Some(budget));
        println!(
            "  budget {:>8} -> {} region(s), {} recipient(s), {} skipped, cost {}",
            f1(budget),
            out.regions.len(),
            out.recipients.len(),
            out.skipped_recipients,
            f1(out.cost),
        );
    }
    let full = distribute(&net, root, &query, &ctx, None);
    println!(
        "\nunlimited budget: {} recipients across {} regions, cost {} units",
        full.recipients.len(),
        full.regions.len(),
        f1(full.cost)
    );
}
