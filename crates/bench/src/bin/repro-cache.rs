//! C8: the §4.1 "caching capability" — resolution-cache hit rates under
//! Zipf-skewed recipient popularity, and what reconfiguration-driven
//! invalidation costs.

use lems_bench::cache_exp::{invalidation_cost, sweep};
use lems_bench::emit::{json_flag, Report};
use lems_bench::render::{f3, Table};

fn main() {
    let mut report = Report::new(
        "cache",
        "C8 — resolution caching (500 names, 20k lookups per point)",
    );
    let rows = sweep(
        500,
        20_000,
        &[0.02, 0.05, 0.1, 0.25, 0.5],
        &[0.0, 0.8, 1.2],
        1,
    );
    let mut t = Table::new(vec!["capacity frac", "zipf", "hit rate", "evictions/1k"]);
    for r in &rows {
        t.row(vec![
            f3(r.capacity_fraction),
            f3(r.zipf),
            f3(r.hit_rate),
            f3(r.evictions_per_k),
        ]);
    }
    report.table("capacity_sweep", &t);
    report.note("shape checks:");
    report.note("  - hit rate rises with capacity at fixed skew;");
    report.note("  - skewed (Zipf) popularity makes small caches effective —");
    report.note("    'a list of both frequently and recently used names' (§4.1)");

    report.note("invalidation on removing 1 of 3 servers from a warm cache:");
    let frac = invalidation_cost(300, 3);
    report.note(format!(
        "  {:.1}% of entries dropped (every cached list naming the dead server)",
        100.0 * frac
    ));

    report.emit(json_flag());
}
