//! FIG1: the worked-example topology and user distribution of Fig. 1,
//! with the zero-load host-to-server cost matrix that seeds the §3.1.1
//! assignment algorithm.

use lems_bench::assign_exp::fig1_problem;
use lems_bench::render::{f1, Table};

fn main() {
    let (scenario, problem) = fig1_problem();
    let t = &scenario.topology;

    println!("FIG1 — topology and user distribution (reconstruction)\n");
    println!(
        "nodes: {} ({} hosts, {} servers), links: {} (all 1.0 unit)\n",
        t.node_count(),
        scenario.hosts.len(),
        scenario.servers.len(),
        t.graph().edge_count(),
    );

    let mut links = Table::new(vec!["link", "weight (units)"]);
    for e in t.graph().edges() {
        links.row(vec![
            format!("{} - {}", t.name(e.a), t.name(e.b)),
            format!("{}", e.weight),
        ]);
    }
    println!("{}", links.render());

    let mut users = Table::new(vec!["host", "users"]);
    for (h, &n) in scenario.hosts.iter().zip(&scenario.users_per_host) {
        users.row(vec![t.name(*h).to_owned(), n.to_string()]);
    }
    println!("{}", users.render());
    println!(
        "total users: {}\n",
        scenario.users_per_host.iter().sum::<u32>()
    );

    println!("zero-load shortest-path cost matrix C_ij (units):\n");
    let mut c = Table::new(vec!["host", "S1", "S2", "S3"]);
    for (i, &h) in scenario.hosts.iter().enumerate() {
        c.row(vec![
            t.name(h).to_owned(),
            f1(problem.comm[i][0]),
            f1(problem.comm[i][1]),
            f1(problem.comm[i][2]),
        ]);
    }
    println!("{}", c.render());
    println!(
        "paper check: C(H2,S1) = {} units (the §3.1.1 example says 2).",
        f1(problem.comm[1][0])
    );
}
