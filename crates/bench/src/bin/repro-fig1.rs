//! FIG1: the worked-example topology and user distribution of Fig. 1,
//! with the zero-load host-to-server cost matrix that seeds the §3.1.1
//! assignment algorithm.

use lems_bench::assign_exp::fig1_problem;
use lems_bench::emit::{json_flag, Report};
use lems_bench::render::{f1, Table};

fn main() {
    let (scenario, problem) = fig1_problem();
    let t = &scenario.topology;

    let mut report = Report::new(
        "fig1",
        "FIG1 — topology and user distribution (reconstruction)",
    );
    report.note(format!(
        "nodes: {} ({} hosts, {} servers), links: {} (all 1.0 unit)",
        t.node_count(),
        scenario.hosts.len(),
        scenario.servers.len(),
        t.graph().edge_count(),
    ));

    let mut links = Table::new(vec!["link", "weight (units)"]);
    for e in t.graph().edges() {
        links.row(vec![
            format!("{} - {}", t.name(e.a), t.name(e.b)),
            format!("{}", e.weight),
        ]);
    }
    report.table("links", &links);

    let mut users = Table::new(vec!["host", "users"]);
    for (h, &n) in scenario.hosts.iter().zip(&scenario.users_per_host) {
        users.row(vec![t.name(*h).to_owned(), n.to_string()]);
    }
    report.table("users_per_host", &users);
    report.note(format!(
        "total users: {}",
        scenario.users_per_host.iter().sum::<u32>()
    ));

    report.note("zero-load shortest-path cost matrix C_ij (units):");
    let mut c = Table::new(vec!["host", "S1", "S2", "S3"]);
    for (i, &h) in scenario.hosts.iter().enumerate() {
        c.row(vec![
            t.name(h).to_owned(),
            f1(problem.comm[i][0]),
            f1(problem.comm[i][1]),
            f1(problem.comm[i][2]),
        ]);
    }
    report.table("cost_matrix", &c);
    report.note(format!(
        "paper check: C(H2,S1) = {} units (the §3.1.1 example says 2).",
        f1(problem.comm[1][0])
    ));

    report.emit(json_flag());
}
