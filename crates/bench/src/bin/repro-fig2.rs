//! FIG2: the backbone MST + local MSTs of §3.3.1A(ii), built by the real
//! distributed GHS protocol and checked against the centralized planner.

use lems_bench::emit::{json_flag, Report};
use lems_bench::mst_exp::fig2;
use lems_bench::render::{f1, Table};

fn main() {
    let r = fig2(3);
    let t = &r.topology;

    let mut report = Report::new(
        "fig2",
        "FIG2 — backbone MST over gateways + local MST per region",
    );
    report.note(format!(
        "world: {} regions, {} nodes, {} edges; gateways: {}",
        t.region_ids().len(),
        t.node_count(),
        t.graph().edge_count(),
        t.gateways().len(),
    ));

    for (region, edges) in &r.two_level.local_edges {
        let mut table = Table::new(vec!["local MST edge", "weight"]);
        for &eid in edges {
            let e = t.graph().edge(eid);
            table.row(vec![
                format!("{} - {}", t.name(e.a), t.name(e.b)),
                format!("{}", e.weight),
            ]);
        }
        report.note(format!("region {region}:"));
        report.table(&format!("local_mst_r{region}"), &table);
    }

    let mut bb = Table::new(vec!["backbone edge", "regions", "weight"]);
    for &eid in &r.two_level.backbone_edges {
        let e = t.graph().edge(eid);
        bb.row(vec![
            format!("{} - {}", t.name(e.a), t.name(e.b)),
            format!("{} - {}", t.region(e.a), t.region(e.b)),
            format!("{}", e.weight),
        ]);
    }
    report.note("backbone:");
    report.table("backbone_mst", &bb);

    report.note(format!("spans the whole network: {}", r.two_level.spans(t)));
    report.note(format!(
        "two-level weight: {} units (flat MST lower bound: {} units, +{:.1}%)",
        f1(r.two_level_weight),
        f1(r.flat_weight),
        100.0 * (r.two_level_weight - r.flat_weight) / r.flat_weight,
    ));
    report.note(format!(
        "distributed GHS messages: {} ({} deferred), by type: {:?}",
        r.ghs_stats.total_sent(),
        r.ghs_stats.requeues,
        r.ghs_stats.sent,
    ));
    report.note("distributed construction == centralized Kruskal planner: verified");

    report.emit(json_flag());
}
