//! C1 + C2: GetMail polls per retrieval vs the poll-every-server
//! baseline, across server availabilities, with the no-lost-mail ledger
//! (§3.1.2c, §5: "the number of polls per retrieval request is
//! approximately one under normal conditions" and "no messages will be
//! lost even when some servers fail").

use lems_bench::emit::{json_flag, trace_out_flag, Report};
use lems_bench::getmail_exp::{full_stack_traced, sweep, GetMailSweepConfig};
use lems_bench::render::{f3, Table};
use lems_obs::export::{export_jsonl, RunTelemetry};

fn main() {
    let cfg = GetMailSweepConfig::default();
    let mut report = Report::new(
        "getmail",
        format!(
            "C1/C2 — GetMail vs poll-all ({} users x {} units per point, {}-server authority lists)",
            cfg.users, cfg.horizon, cfg.servers
        ),
    );

    let availabilities = [1.0, 0.99, 0.95, 0.9, 0.8, 0.7];
    let rows = sweep(&availabilities, &cfg);

    let mut t = Table::new(vec![
        "availability",
        "getmail polls",
        "poll-all polls",
        "deposited",
        "retrieved",
        "lost",
        "bounced-at-send",
    ]);
    for r in &rows {
        t.row(vec![
            f3(r.availability),
            f3(r.getmail_polls),
            f3(r.pollall_polls),
            r.deposited.to_string(),
            r.retrieved.to_string(),
            r.lost.to_string(),
            r.undeliverable.to_string(),
        ]);
    }
    report.table("availability_sweep", &t);
    report.note("shape checks:");
    report.note("  - polls -> 1 as availability -> 1 (paper: 'approximately one')");
    report.note("  - poll-all always pays the full list length");
    report.note("  - lost = 0 at every point (paper: 'no messages will be lost')");

    report.note("full-stack cross-check (actor pipeline, Fig. 1 network, 95% availability):");
    let (fs, telemetry) = full_stack_traced(0.95, 7);
    report.kv(
        "full_stack",
        vec![
            ("polls/check".into(), format!("{:.3}", fs.polls_mean)),
            ("submitted".into(), fs.submitted.to_string()),
            ("retrieved".into(), fs.retrieved.to_string()),
            ("bounced".into(), fs.bounced.to_string()),
            ("unaccounted".into(), fs.outstanding.to_string()),
        ],
    );

    // `--trace-out <path>`: dump the full-stack run's spans and metrics
    // for `lems-trace timeline/servers/summary/audit`.
    if let Some(path) = trace_out_flag() {
        let text = export_jsonl(&RunTelemetry {
            run: "getmail-full-stack",
            seed: telemetry.seed,
            finished_at: telemetry.finished_at,
            spans: &telemetry.spans,
            recoveries: &[],
            scopes: &telemetry.scopes,
            store: &[],
            profile: &[],
        })
        .expect("full-stack telemetry must export");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        report.note(format!("telemetry written to {}", path.display()));
    }

    report.emit(json_flag());
}
