//! C5: System 2's overhead profile — free until users move (§3.2.2c),
//! the remote-access / redirect / rename trade-off for cross-region moves
//! (§3.2.4), and the rehash-vs-reassign reconfiguration comparison
//! (§3.2.3c).

use lems_bench::emit::{json_flag, Report};
use lems_bench::locindep_exp::{
    actor_mobility_sweep, mobility_sweep, policy_comparison, reconfig_comparison,
};
use lems_bench::render::{f1, f3, Table};

fn main() {
    let mut report = Report::new("locindep", "C5 — location-independent access overheads");

    report.note("mobility sweep (two-region world, 400 sampled deliveries per point):");
    let rows = mobility_sweep(&[0.0, 0.1, 0.25, 0.5, 0.75, 1.0], 1);
    let mut t = Table::new(vec![
        "moved fraction",
        "mean cost (u)",
        "mean consult cost (u)",
    ]);
    for r in &rows {
        t.row(vec![
            f3(r.moved_fraction),
            f3(r.mean_cost),
            f3(r.mean_consults),
        ]);
    }
    report.table("mobility_sweep", &t);
    report.note(
        "shape check: consult cost is 0 at fraction 0 ('overhead is only\n\
         incurred if a user moves') and grows with mobility.",
    );

    report.note("cross-region policies for one migrant (per-message cost):");
    let p = policy_comparison(2);
    report.kv(
        "policy_comparison",
        vec![
            ("remote access (u)".into(), f1(p.remote_access)),
            ("redirect (u)".into(), f1(p.redirect)),
            ("rename (u)".into(), f1(p.rename)),
        ],
    );
    match p.breakeven_messages {
        Some(n) => report.note(format!(
            "renaming pays for itself after {n} redirected message(s)\n\
             (paper: 'obtaining a new name … may place less overhead on the system')"
        )),
        None => report.note("redirecting never costs more here — no break-even"),
    }

    report.note("actor-measured sweep (running System-2 protocol, cooperative tracking):");
    let rows = actor_mobility_sweep(&[0.0, 0.5, 1.0], 3);
    let mut t2 = Table::new(vec![
        "moved fraction",
        "consults/message",
        "roaming notifications",
        "notify latency (u)",
    ]);
    for r in &rows {
        t2.row(vec![
            f3(r.moved_fraction),
            f3(r.consults_per_message),
            r.roaming_notifications.to_string(),
            f3(r.notify_latency),
        ]);
    }
    report.table("actor_mobility_sweep", &t2);
    report.note(
        "shape check: cooperative LocationUpdate broadcasts keep consults near\n\
         zero even under mobility; alerts follow the user off their primary host.",
    );

    report.note("reconfiguration on adding a server:");
    let r = reconfig_comparison(3);
    report.note(format!(
        "  System 2 rehash moves {:.1}% of the name space (rendezvous hashing)",
        100.0 * r.rehash_moved_fraction
    ));
    report.note(format!(
        "  System 1 reassignment moves {:.1}% of the users (assignment algorithm)",
        100.0 * r.assignment_moved_fraction
    ));
    report.note("  (paper: System 2's 'reconfiguration can be done easily without much overhead')");

    report.emit(json_flag());
}
