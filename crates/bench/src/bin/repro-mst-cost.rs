//! C3: MST broadcast cost vs flooding vs per-recipient unicast as the
//! network grows, with GHS construction cost and a live convergecast
//! (§3.3.1A-B), plus the failure-resilience companion.

use lems_bench::emit::{json_flag, Report};
use lems_bench::mst_exp::{c3_sweep, convergecast_resilience};
use lems_bench::render::{f1, f3, Table};

fn main() {
    let mut report = Report::new(
        "mst-cost",
        "C3 — broadcast cost scaling (per point: fresh multi-region world)",
    );
    let rows = c3_sweep(&[2, 4, 8, 12, 16], 1);
    let mut t = Table::new(vec![
        "regions",
        "nodes",
        "edges",
        "mst (u)",
        "flooding (u)",
        "unicast (u)",
        "mst/flooding",
        "ghs msgs",
        "reached",
        "done at (u)",
    ]);
    for r in &rows {
        t.row(vec![
            r.regions.to_string(),
            r.nodes.to_string(),
            r.edges.to_string(),
            f1(r.mst_units),
            f1(r.flooding_units),
            f1(r.unicast_units),
            f3(r.mst_units / r.flooding_units),
            r.ghs_messages.to_string(),
            r.responded.to_string(),
            f1(r.completed_units),
        ]);
    }
    report.table("size_sweep", &t);
    report.note("shape checks:");
    report.note("  - MST cost < flooding cost at every size, gap grows with size");
    report.note("  - MST cost <= unicast sum (shared prefixes are paid once)");
    report.note("  - convergecast reaches every node when nothing fails");

    report.note("failure resilience (one tree neighbor of the root dead):");
    let r = convergecast_resilience(4);
    report.kv(
        "resilience",
        vec![
            ("full coverage".into(), r.full_coverage.to_string()),
            ("degraded coverage".into(), r.degraded_coverage.to_string()),
            (
                "unavailable subtrees marked".into(),
                r.unavailable_marks.to_string(),
            ),
        ],
    );
    report.note("(the paper: parents 'time out … and the unavailable estimates can be marked so')");

    report.emit(json_flag());
}
