//! SCALE: the million-user §3.1.1 assignment pipeline — per-tier wall
//! times, convergence stats, and determinism digests, emitted as the
//! committed `BENCH_assign.json` / `BENCH_getmail.json` documents.
//!
//! ```sh
//! repro-scale [--smoke] [--json] [--seed <n>] [--out <dir>]
//!             [--baseline <BENCH_assign.json>] [--tolerance <frac>]
//! ```
//!
//! `--smoke` runs only the fig1 + 50k tiers (the CI gate); `--out` writes
//! the two JSON documents into a directory; `--baseline` + `--tolerance`
//! fail the run when a tier's solver wall time regressed beyond the
//! tolerance (default 0.25 = +25%).

use std::fs;
use std::process::ExitCode;

use lems_bench::emit::{gate_wall_times, json_flag, AssignBench, Report};
use lems_bench::render::{f1, f3, Table};
use lems_bench::scale_exp::{full_tiers, run_suite, smoke_tiers};

struct Args {
    smoke: bool,
    json: bool,
    seed: u64,
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        json: json_flag(),
        seed: 42,
        out: None,
        baseline: None,
        tolerance: 0.25,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => {} // already consumed by json_flag()
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a directory")?.clone()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a file")?.clone());
            }
            "--tolerance" => {
                args.tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--tolerance needs a fraction like 0.25")?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro-scale: {e}");
            return ExitCode::from(2);
        }
    };

    let tiers = if args.smoke {
        smoke_tiers()
    } else {
        full_tiers()
    };
    let (assign, getmail) = run_suite(&tiers, args.seed);

    let mut report = Report::new(
        "scale",
        format!(
            "SCALE — §3.1.1 assignment pipeline at size (seed {}, {} thread(s))",
            assign.seed, assign.threads
        ),
    );

    let mut t = Table::new(vec![
        "tier",
        "users",
        "hosts",
        "servers",
        "matrix ms",
        "classic ms",
        "sync ms",
        "par ms",
        "passes",
        "moves",
        "rho max",
        "rho spread",
        "digest",
    ]);
    for tier in &assign.tiers {
        t.row(vec![
            tier.label.clone(),
            tier.users.to_string(),
            tier.hosts.to_string(),
            tier.servers.to_string(),
            f1(tier.matrix_build_ms),
            tier.classic_ms.map_or_else(|| "-".into(), f1),
            f1(tier.sync_ms),
            f1(tier.par_ms),
            tier.passes.to_string(),
            tier.moves.to_string(),
            f3(tier.rho_max),
            f3(tier.rho_spread),
            tier.digest.clone(),
        ]);
    }
    report.table("assign_tiers", &t);

    for tier in &assign.tiers {
        if let Some(s) = tier.speedup_vs_classic {
            report.note(format!(
                "tier {}: scaled solver is {:.1}x the classic full-recompute solver \
                 (O(1) move deltas; the classic cost is O(hosts x servers) per tentative move)",
                tier.label, s
            ));
        }
    }

    let mut g = Table::new(vec![
        "tier",
        "users",
        "list len",
        "build ms",
        "polls mean",
        "digest",
    ]);
    for tier in &getmail.tiers {
        g.row(vec![
            tier.label.clone(),
            tier.users.to_string(),
            tier.list_len.to_string(),
            f1(tier.build_ms),
            f3(tier.polls_mean),
            tier.digest.clone(),
        ]);
    }
    report.table("getmail_tiers", &g);
    report.note(
        "determinism contract: same seed => same digest at any thread count \
         (tests/assign_differential.rs)",
    );

    report.emit(args.json);

    if let Some(dir) = &args.out {
        fs::create_dir_all(dir).expect("create --out directory");
        let ap = format!("{dir}/BENCH_assign.json");
        let gp = format!("{dir}/BENCH_getmail.json");
        fs::write(&ap, assign.to_json() + "\n").expect("write BENCH_assign.json");
        fs::write(&gp, getmail.to_json() + "\n").expect("write BENCH_getmail.json");
        eprintln!("wrote {ap} and {gp}");
    }

    if let Some(path) = &args.baseline {
        let text = fs::read_to_string(path).expect("read baseline");
        let base: AssignBench = serde_json::from_str(&text).expect("parse baseline");
        let regressions = gate_wall_times(&base, &assign, args.tolerance);
        if regressions.is_empty() {
            eprintln!(
                "perf gate: ok (tolerance {:.0}%, baseline {path})",
                args.tolerance * 100.0
            );
        } else {
            for r in &regressions {
                eprintln!(
                    "perf gate: tier {} {} regressed {:.1} -> {:.1} ms (> {:.0}% over baseline)",
                    r.label,
                    r.metric,
                    r.baseline_ms,
                    r.current_ms,
                    args.tolerance * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
