//! C7: the §4 criteria scorecard — efficiency, reliability, flexibility,
//! cost — for all three designs on a common scenario.

use lems_bench::scorecard_exp::scorecards;
use lems_eval::criteria::{rank, CriteriaWeights};
use lems_eval::report::{comparison_table, to_json};

fn main() {
    println!("C7 — §4 criteria scorecard\n");
    let cards = scorecards(5);
    println!("{}", comparison_table(&cards));
    println!("reading guide (the paper's trade-off in §4):");
    println!("  - syntax-directed: most efficient, least flexible (rename on every move);");
    println!("  - location-independent: small delivery overhead buys rename-free mobility");
    println!("    and cheap rehash reconfiguration;");
    println!("  - attribute-based: group naming and broadcast delivery; pays tree-building");
    println!("    and per-search costs.\n");
    println!("weighted rankings (min-max normalised within this comparison):");
    for (label, weights) in [
        ("equal weights", CriteriaWeights::default()),
        (
            "efficiency-first",
            CriteriaWeights {
                efficiency: 4.0,
                ..CriteriaWeights::default()
            },
        ),
        (
            "flexibility-first",
            CriteriaWeights {
                flexibility: 4.0,
                ..CriteriaWeights::default()
            },
        ),
    ] {
        let ranking = rank(&cards, &weights);
        let order: Vec<String> = ranking
            .iter()
            .map(|&(i, s)| format!("{} ({:.2})", cards[i].system, s))
            .collect();
        println!("  {label:<18} {}", order.join("  >  "));
    }
    println!();
    println!("JSON artifact:\n{}", to_json(&cards));
}
