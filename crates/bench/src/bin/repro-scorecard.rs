//! C7: the §4 criteria scorecard — efficiency, reliability, flexibility,
//! cost — for all three designs on a common scenario.

use lems_bench::emit::{json_flag, Report};
use lems_eval::criteria::{rank, CriteriaWeights};
use lems_eval::report::{comparison_table, to_json};

use lems_bench::scorecard_exp::scorecards;

fn main() {
    let mut report = Report::new("scorecard", "C7 — §4 criteria scorecard");
    let cards = scorecards(5);
    report.note(comparison_table(&cards));
    report.note("reading guide (the paper's trade-off in §4):");
    report.note("  - syntax-directed: most efficient, least flexible (rename on every move);");
    report.note("  - location-independent: small delivery overhead buys rename-free mobility");
    report.note("    and cheap rehash reconfiguration;");
    report.note("  - attribute-based: group naming and broadcast delivery; pays tree-building");
    report.note("    and per-search costs.");
    report.note("weighted rankings (min-max normalised within this comparison):");
    let mut pairs = Vec::new();
    for (label, weights) in [
        ("equal weights", CriteriaWeights::default()),
        (
            "efficiency-first",
            CriteriaWeights {
                efficiency: 4.0,
                ..CriteriaWeights::default()
            },
        ),
        (
            "flexibility-first",
            CriteriaWeights {
                flexibility: 4.0,
                ..CriteriaWeights::default()
            },
        ),
    ] {
        let ranking = rank(&cards, &weights);
        let order: Vec<String> = ranking
            .iter()
            .map(|&(i, s)| format!("{} ({:.2})", cards[i].system, s))
            .collect();
        pairs.push((label.to_owned(), order.join("  >  ")));
    }
    report.kv("weighted_rankings", pairs);
    report.note(format!("JSON artifact:\n{}", to_json(&cards)));

    report.emit(json_flag());
}
