//! SIM: sim-kernel throughput — calendar queue vs the retained ordered-map
//! kernel, plus sharded-dispatch thread scaling, behind the committed
//! `BENCH_sim.json` document.
//!
//! ```sh
//! repro-sim [--smoke] [--json] [--seed <n>] [--out <dir>]
//!           [--baseline <BENCH_sim.json>] [--tolerance <frac>]
//!           [--prof-gate <frac>]
//! ```
//!
//! `--smoke` runs only the small tiers (the CI gate); `--out` writes
//! `BENCH_sim.json` into a directory; `--baseline` + `--tolerance` fail
//! the run when a tier's wall time regressed beyond the tolerance
//! (default 0.25 = +25%). `--prof-gate` additionally measures the kernel
//! profiler's overhead on the smoke actor tier (off vs on, min-of-N) and
//! fails when the profiled run is more than the given fraction slower
//! (CI passes 0.05 = +5%); sub-2ms deltas are treated as scheduler
//! jitter, not overhead.

use std::fs;
use std::process::ExitCode;

use lems_bench::emit::{gate_sim_times, json_flag, Report, SimBench};
use lems_bench::render::{f1, Table};
use lems_bench::sim_exp::{
    full_actor_tiers, full_hold_tiers, full_shard_tiers, hold_child_main, measure_prof_overhead,
    prof_gate_tier, run_suite, smoke_actor_tiers, smoke_hold_tiers, smoke_shard_tiers,
};

struct Args {
    smoke: bool,
    json: bool,
    seed: u64,
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    prof_gate: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        json: json_flag(),
        seed: 42,
        out: None,
        baseline: None,
        tolerance: 0.25,
        prof_gate: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => {} // already consumed by json_flag()
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a directory")?.clone()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a file")?.clone());
            }
            "--tolerance" => {
                args.tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--tolerance needs a fraction like 0.25")?;
            }
            "--prof-gate" => {
                args.prof_gate = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--prof-gate needs a fraction like 0.05")?,
                );
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    // Hold measurements re-exec this binary so every repetition gets a
    // pristine heap; a child process does exactly one measurement.
    if hold_child_main() {
        return ExitCode::SUCCESS;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro-sim: {e}");
            return ExitCode::from(2);
        }
    };

    let doc = if args.smoke {
        run_suite(
            &smoke_hold_tiers(),
            &smoke_actor_tiers(),
            &smoke_shard_tiers(),
            args.seed,
            true,
        )
    } else {
        run_suite(
            &full_hold_tiers(),
            &full_actor_tiers(),
            &full_shard_tiers(),
            args.seed,
            true,
        )
    };

    let mut report = Report::new(
        "sim",
        format!(
            "SIM — kernel throughput: calendar queue, pooled dispatch, sharded merge (seed {})",
            doc.seed
        ),
    );

    let mut t = Table::new(vec![
        "tier", "engine", "threads", "pending", "actors", "events", "wall ms", "events/s", "digest",
    ]);
    for tier in &doc.tiers {
        t.row(vec![
            tier.label.clone(),
            tier.engine.clone(),
            tier.threads.to_string(),
            tier.pending.to_string(),
            tier.actors.to_string(),
            tier.events.to_string(),
            f1(tier.wall_ms),
            format!("{:.0}", tier.events_per_sec),
            tier.digest.clone(),
        ]);
    }
    report.table("sim_tiers", &t);

    // Speedup notes: calendar vs baseline per tier (hold and actor tiers
    // run both engines over digest-identical work).
    for label in doc
        .tiers
        .iter()
        .filter(|t| t.engine == "baseline")
        .map(|t| t.label.clone())
        .collect::<Vec<_>>()
    {
        let cal = doc
            .tiers
            .iter()
            .find(|t| t.label == label && t.engine == "calendar");
        let base = doc
            .tiers
            .iter()
            .find(|t| t.label == label && t.engine == "baseline");
        if let (Some(cal), Some(base)) = (cal, base) {
            if base.events_per_sec > 0.0 {
                report.note(format!(
                    "tier {}: calendar kernel runs {:.2}x the ordered-map kernel \
                     ({:.0} vs {:.0} events/s) over a digest-identical event stream",
                    label,
                    cal.events_per_sec / base.events_per_sec,
                    cal.events_per_sec,
                    base.events_per_sec
                ));
            }
        }
    }
    for tier in doc
        .tiers
        .iter()
        .filter(|t| t.engine.starts_with("sharded-"))
    {
        if tier.threads > 1 {
            if let Some(one) = doc
                .tiers
                .iter()
                .find(|t| t.label == tier.label && t.threads == 1)
            {
                report.note(format!(
                    "tier {}: {} threads run {:.2}x the 1-thread sharded engine, \
                     digest-identical",
                    tier.label,
                    tier.threads,
                    tier.events_per_sec / one.events_per_sec.max(f64::MIN_POSITIVE)
                ));
            }
        }
    }
    report.note(format!(
        "peak RSS {} KiB; determinism contract: equal digests within every \
         tier (asserted during the run, pinned by tests/kernel_equivalence.rs)",
        doc.peak_rss_kib
    ));

    let prof = args.prof_gate.map(|gate| {
        let spec = prof_gate_tier();
        let o = measure_prof_overhead(&spec, args.seed, 5);
        report.note(format!(
            "profiler overhead on tier {}: {:.1} ms off vs {:.1} ms on \
             (best paired ratio {:+.1}% across {} dispatches; gate {:.0}%, \
             wall-clock side channel only — output bytes are identical)",
            o.label,
            o.off_ms,
            o.on_ms,
            o.overhead_frac * 100.0,
            o.dispatches,
            gate * 100.0
        ));
        (o, gate)
    });

    report.emit(args.json);

    if let Some(dir) = &args.out {
        fs::create_dir_all(dir).expect("create --out directory");
        let path = format!("{dir}/BENCH_sim.json");
        fs::write(&path, doc.to_json() + "\n").expect("write BENCH_sim.json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &args.baseline {
        let text = fs::read_to_string(path).expect("read baseline");
        let base: SimBench = serde_json::from_str(&text).expect("parse baseline");
        let regressions = gate_sim_times(&base, &doc, args.tolerance);
        if regressions.is_empty() {
            eprintln!(
                "perf gate: ok (tolerance {:.0}%, baseline {path})",
                args.tolerance * 100.0
            );
        } else {
            for r in &regressions {
                eprintln!(
                    "perf gate: tier {} {} regressed {:.1} -> {:.1} ms (> {:.0}% over baseline)",
                    r.label,
                    r.metric,
                    r.baseline_ms,
                    r.current_ms,
                    args.tolerance * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
    }

    if let Some((o, gate)) = prof {
        // Sub-2ms implied deltas are scheduler jitter at this tier's
        // scale, not profiling cost — the same floor gate_sim_times
        // applies.
        let delta_ms = o.overhead_frac * o.off_ms;
        if o.overhead_frac > gate && delta_ms > 2.0 {
            eprintln!(
                "prof gate: profiling overhead {:.1}% ({:.1} -> {:.1} ms) exceeds {:.0}% \
                 on tier {}",
                o.overhead_frac * 100.0,
                o.off_ms,
                o.on_ms,
                gate * 100.0,
                o.label
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "prof gate: ok ({:+.1}% on tier {}, gate {:.0}%)",
            o.overhead_frac * 100.0,
            o.label,
            gate * 100.0
        );
    }
    ExitCode::SUCCESS
}
