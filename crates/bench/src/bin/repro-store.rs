//! STORE: the durability tax — per-backend deposits/sec and crash-recovery
//! wall times behind the committed `BENCH_store.json` document.
//!
//! ```sh
//! repro-store [--smoke] [--json] [--seed <n>] [--out <dir>]
//!             [--baseline <BENCH_store.json>] [--tolerance <frac>]
//! ```
//!
//! `--smoke` runs only the 10k-message tier (the CI gate); `--out` writes
//! `BENCH_store.json` into a directory; `--baseline` + `--tolerance` fail
//! the run when a tier's deposit or recovery wall time regressed beyond
//! the tolerance (default 0.25 = +25%).

use std::fs;
use std::process::ExitCode;

use lems_bench::emit::{gate_store_times, json_flag, Report, StoreBench};
use lems_bench::render::{f1, Table};
use lems_bench::store_exp::{full_tiers, run_suite, smoke_tiers, wal_health};

struct Args {
    smoke: bool,
    json: bool,
    seed: u64,
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        json: json_flag(),
        seed: 42,
        out: None,
        baseline: None,
        tolerance: 0.25,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => {} // already consumed by json_flag()
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a directory")?.clone()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a file")?.clone());
            }
            "--tolerance" => {
                args.tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--tolerance needs a fraction like 0.25")?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro-store: {e}");
            return ExitCode::from(2);
        }
    };

    let tiers = if args.smoke {
        smoke_tiers()
    } else {
        full_tiers()
    };
    let doc = run_suite(&tiers, args.seed);

    let mut report = Report::new(
        "store",
        format!(
            "STORE — mailbox durability tax: RAM vs write-ahead log (seed {})",
            doc.seed
        ),
    );

    let mut t = Table::new(vec![
        "tier",
        "backend",
        "users",
        "messages",
        "deposit ms",
        "deposits/s",
        "recovery ms",
        "replayed",
        "drain ms",
        "wal KiB",
    ]);
    for tier in &doc.tiers {
        t.row(vec![
            tier.label.clone(),
            tier.backend.clone(),
            tier.users.to_string(),
            tier.messages.to_string(),
            f1(tier.deposit_ms),
            format!("{:.0}", tier.deposits_per_sec),
            f1(tier.recovery_ms),
            tier.replayed_records.to_string(),
            f1(tier.drain_ms),
            (tier.wal_bytes / 1024).to_string(),
        ]);
    }
    report.table("store_tiers", &t);

    for pair in doc.tiers.chunks(2) {
        let [mem, wal] = pair else { continue };
        if wal.deposits_per_sec > 0.0 && mem.deposits_per_sec.is_finite() {
            report.note(format!(
                "tier {}: per-record-synced WAL deposits run at {:.2}x RAM speed; \
                 recovery replayed {} record(s) in {:.1} ms with zero acked deposits lost",
                wal.label,
                wal.deposits_per_sec / mem.deposits_per_sec,
                wal.replayed_records,
                wal.recovery_ms
            ));
        }
    }
    report.note(
        "loss contract: run_backend asserts every acked deposit drains back \
         after crash + recovery on both backends (tests/durability.rs holds \
         the full-deployment version of this claim)",
    );

    // WAL health counters for the smoke tier — the same numbers a durable
    // deployment exports as a schema-v3 `Metrics` line, so the benchmark
    // report and `lems-trace prom` read off one ledger.
    let health_spec = smoke_tiers()[0];
    let health = wal_health(&health_spec, args.seed);
    report.note(format!(
        "WAL health ({}): {} fsyncs / {} appends ({} KiB), {} rotation(s), \
         {} compaction chunk(s), recovery scanned {} record(s) / {} KiB, \
         {} io error(s)",
        health_spec.label,
        health.fsyncs,
        health.appended_records,
        health.appended_bytes / 1024,
        health.rotations,
        health.compaction_chunks,
        health.replayed_records,
        health.replayed_bytes / 1024,
        health.io_errors
    ));

    report.emit(args.json);

    if let Some(dir) = &args.out {
        fs::create_dir_all(dir).expect("create --out directory");
        let path = format!("{dir}/BENCH_store.json");
        fs::write(&path, doc.to_json() + "\n").expect("write BENCH_store.json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &args.baseline {
        let text = fs::read_to_string(path).expect("read baseline");
        let base: StoreBench = serde_json::from_str(&text).expect("parse baseline");
        let regressions = gate_store_times(&base, &doc, args.tolerance);
        if regressions.is_empty() {
            eprintln!(
                "perf gate: ok (tolerance {:.0}%, baseline {path})",
                args.tolerance * 100.0
            );
        } else {
            for r in &regressions {
                eprintln!(
                    "perf gate: tier {} {} regressed {:.1} -> {:.1} ms (> {:.0}% over baseline)",
                    r.label,
                    r.metric,
                    r.baseline_ms,
                    r.current_ms,
                    args.tolerance * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
