//! T1 + T2: initial server assignment (Table 1) and the balanced
//! assignment (Table 2) for the Fig. 1 scenario, with the paper's
//! constants W1=4, W2=1, z=0.5, M=100.

use lems_bench::assign_exp::{fig1_problem, fig1_rankings, render_assignment, tables_1_and_2};
use lems_bench::render::f1;

fn main() {
    let (scenario, problem) = fig1_problem();
    let (initial, balanced, report) = tables_1_and_2();

    println!("TABLE 1 — initial server assignment (nearest server, zero-load costs)\n");
    println!("{}", render_assignment(&scenario, &problem, &initial));
    println!("paper: S1=100, S2=150 (overloaded), S3=20.\n");

    println!("TABLE 2 — final load distribution after balancing\n");
    println!("{}", render_assignment(&scenario, &problem, &balanced));
    println!(
        "balancing: {} passes, {} accepted moves, {} undone, cost {} -> {}\n",
        report.passes,
        report.moves,
        report.undone,
        f1(report.initial_cost),
        f1(report.final_cost),
    );
    println!("paper shape checks:");
    println!(
        "  - every server within capacity: {}",
        balanced.overloaded(&problem).is_empty()
    );
    let split = (0..problem.host_count())
        .filter(|&i| {
            (0..problem.server_count())
                .filter(|&j| balanced.count(i, j) > 0)
                .count()
                > 1
        })
        .count();
    println!(
        "  - 'users on one host may be assigned to different servers': {split} host(s) split\n"
    );

    println!("authority-server rankings per host at final loads (primary first):");
    for (host, servers) in fig1_rankings() {
        println!("  {host}: {}", servers.join(" > "));
    }
}
