//! T1 + T2: initial server assignment (Table 1) and the balanced
//! assignment (Table 2) for the Fig. 1 scenario, with the paper's
//! constants W1=4, W2=1, z=0.5, M=100.

use lems_bench::assign_exp::{fig1_problem, fig1_rankings, render_assignment, tables_1_and_2};
use lems_bench::emit::{json_flag, Report};
use lems_bench::render::f1;

fn main() {
    let (scenario, problem) = fig1_problem();
    let (initial, balanced, balance_report) = tables_1_and_2();

    let mut report = Report::new(
        "table1-2",
        "TABLE 1 + TABLE 2 — initial and balanced server assignment (Fig. 1)",
    );

    report.note("TABLE 1 — initial server assignment (nearest server, zero-load costs)");
    report.note(render_assignment(&scenario, &problem, &initial));
    report.note("paper: S1=100, S2=150 (overloaded), S3=20.");

    report.note("TABLE 2 — final load distribution after balancing");
    report.note(render_assignment(&scenario, &problem, &balanced));
    report.kv(
        "balancing",
        vec![
            ("passes".into(), balance_report.passes.to_string()),
            ("accepted moves".into(), balance_report.moves.to_string()),
            ("undone".into(), balance_report.undone.to_string()),
            ("initial cost".into(), f1(balance_report.initial_cost)),
            ("final cost".into(), f1(balance_report.final_cost)),
        ],
    );

    let split = (0..problem.host_count())
        .filter(|&i| {
            (0..problem.server_count())
                .filter(|&j| balanced.count(i, j) > 0)
                .count()
                > 1
        })
        .count();
    report.note("paper shape checks:");
    report.note(format!(
        "  - every server within capacity: {}",
        balanced.overloaded(&problem).is_empty()
    ));
    report.note(format!(
        "  - 'users on one host may be assigned to different servers': {split} host(s) split"
    ));

    report.note("authority-server rankings per host at final loads (primary first):");
    for (host, servers) in fig1_rankings() {
        report.note(format!("  {host}: {}", servers.join(" > ")));
    }

    report.emit(json_flag());
}
