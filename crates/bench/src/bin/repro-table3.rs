//! T3: the second worked example — three hosts with 100/100/20 users,
//! one server apiece (Table 3) — initial assignment and what balancing
//! does to it.

use lems_bench::assign_exp::{render_assignment, table3_problem};
use lems_bench::emit::{json_flag, Report};
use lems_bench::render::f1;
use lems_syntax::assign::{initialize, solve, BalanceOptions};

fn main() {
    let (scenario, problem) = table3_problem();
    let initial = initialize(&problem);

    let mut report = Report::new("table3", "TABLE 3 — initial server assignment (100/100/20)");
    report.note(render_assignment(&scenario, &problem, &initial));
    report.note("paper: H1->S1 100, H2->S2 100, H3->S3 20.");

    let (balanced, balance_report) = solve(&problem, BalanceOptions::default());
    report.note("after balancing:");
    report.note(render_assignment(&scenario, &problem, &balanced));
    report.note(format!(
        "cost {} -> {} ({} moves): the 100-user servers sit at the M/M/1\n\
         knee (rho = 1.0 -> beta), so the algorithm spreads users toward S3\n\
         until the marginal 4-unit communication penalty outweighs the\n\
         queueing relief.",
        f1(balance_report.initial_cost),
        f1(balance_report.final_cost),
        balance_report.moves,
    ));

    report.emit(json_flag());
}
