//! Experiment C8: the §4.1 "caching capability" — resolution-cache hit
//! rates under Zipf-skewed recipient popularity, and the cost of
//! reconfiguration-driven invalidation.

use lems_core::name::MailName;
use lems_core::user::AuthorityList;
use lems_net::graph::NodeId;
use lems_sim::rng::SimRng;
use lems_sim::time::{SimDuration, SimTime};
use lems_syntax::cache::ResolutionCache;

/// One row of the cache sweep.
#[derive(Clone, Copy, Debug)]
pub struct CacheRow {
    /// Cache capacity as a fraction of the name population.
    pub capacity_fraction: f64,
    /// Zipf exponent of recipient popularity.
    pub zipf: f64,
    /// Measured hit rate.
    pub hit_rate: f64,
    /// Evictions per 1000 lookups.
    pub evictions_per_k: f64,
}

/// Sweeps cache capacity × popularity skew over a synthetic lookup
/// stream: `lookups` resolutions against a population of `names` users.
pub fn sweep(
    names: usize,
    lookups: usize,
    capacity_fractions: &[f64],
    zipfs: &[f64],
    seed: u64,
) -> Vec<CacheRow> {
    let population: Vec<MailName> = (0..names)
        .map(|i| format!("east.h{}.user{i}", i % 13).parse().expect("valid"))
        .collect();

    let mut rows = Vec::new();
    for &zipf in zipfs {
        // Zipf weights over a seed-stable permutation.
        let mut rng = SimRng::seed(seed).fork(&format!("zipf{zipf}"));
        let mut perm: Vec<usize> = (0..names).collect();
        rng.shuffle(&mut perm);
        let mut weights = vec![0.0; names];
        for (rank, &idx) in perm.iter().enumerate() {
            weights[idx] = 1.0 / ((rank + 1) as f64).powf(zipf);
        }

        for &frac in capacity_fractions {
            let capacity = ((names as f64 * frac) as usize).max(1);
            let mut cache = ResolutionCache::new(capacity, SimDuration::from_units(1e9));
            let mut lookup_rng = rng.fork(&format!("cap{frac}"));
            for k in 0..lookups {
                let idx = lookup_rng.weighted_index(&weights);
                let now = SimTime::from_units(k as f64);
                if cache.get(&population[idx], now).is_none() {
                    // Miss: resolve the slow way and remember the answer.
                    cache.put(
                        population[idx].clone(),
                        AuthorityList::new(vec![NodeId(idx % 7)]),
                        now,
                    );
                }
            }
            let st = cache.stats();
            rows.push(CacheRow {
                capacity_fraction: frac,
                zipf,
                hit_rate: st.hit_rate(),
                evictions_per_k: st.evictions as f64 * 1000.0 / lookups as f64,
            });
        }
    }
    rows
}

/// Invalidation cost: fraction of a warm cache lost when one server of a
/// `servers`-wide rotation is removed (§3.1.3c reconfiguration).
pub fn invalidation_cost(names: usize, servers: usize) -> f64 {
    let mut cache = ResolutionCache::new(names, SimDuration::from_units(1e9));
    for i in 0..names {
        let name: MailName = format!("east.h1.user{i}").parse().expect("valid");
        cache.put(
            name,
            AuthorityList::new(vec![NodeId(i % servers), NodeId((i + 1) % servers)]),
            SimTime::ZERO,
        );
    }
    let dropped = cache.invalidate_server(NodeId(0));
    dropped as f64 / names as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_and_capacity_raise_hit_rate() {
        let rows = sweep(500, 20_000, &[0.05, 0.5], &[0.0, 1.2], 1);
        let find = |frac: f64, z: f64| {
            rows.iter()
                .find(|r| r.capacity_fraction == frac && r.zipf == z)
                .copied()
                .unwrap()
        };
        // More capacity helps at fixed skew.
        assert!(find(0.5, 0.0).hit_rate > find(0.05, 0.0).hit_rate);
        // More skew helps at fixed (small) capacity.
        assert!(find(0.05, 1.2).hit_rate > find(0.05, 0.0).hit_rate + 0.05);
        // A large cache with skewed traffic is nearly all hits.
        assert!(find(0.5, 1.2).hit_rate > 0.8);
    }

    #[test]
    fn invalidation_drops_the_right_fraction() {
        // Two slots of a 3-server rotation mention server 0: 2/3 of
        // entries must go.
        let frac = invalidation_cost(300, 3);
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "got {frac}");
    }
}
