//! Shared experiment output: the [`Report`] every `repro-*` binary renders
//! (plain text by default, machine-readable with `--json`) and the typed
//! `BENCH_*.json` documents behind the CI perf gate.
//!
//! There is deliberately one code path from experiment data to both output
//! forms: binaries build a [`Report`] (or a [`AssignBench`] /
//! [`GetMailBench`] document) and call [`Report::emit`], so the text and
//! JSON renderings can never drift apart.

use serde::{Deserialize, Serialize};

use crate::render::Table;

/// Version stamp carried by every JSON document this module emits; bump
/// when a field changes meaning or disappears (additions are fine).
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// True when the process was invoked with `--json` — the shared flag
/// convention for every `repro-*` binary.
pub fn json_flag() -> bool {
    std::env::args().skip(1).any(|a| a == "--json")
}

/// The value following `--trace-out`, when present — the shared flag
/// convention for binaries that can export their run's telemetry as a
/// `lems-obs` JSONL dump.
pub fn trace_out_flag() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// One renderable block of an experiment report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Section {
    /// A free-form prose line (headings, shape checks, paper quotes).
    Note(String),
    /// A titled table: headers plus string rows.
    Rows {
        /// Short machine-friendly name for the table.
        name: String,
        /// Column headers.
        headers: Vec<String>,
        /// Data rows, aligned with `headers`.
        rows: Vec<Vec<String>>,
    },
    /// Named scalar results.
    KeyVals {
        /// Short machine-friendly name for the group.
        name: String,
        /// `(key, value)` pairs in display order.
        pairs: Vec<(String, String)>,
    },
}

/// An experiment report that renders identically structured text and JSON.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Schema version (see [`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Machine-friendly experiment id (e.g. `fig1`, `getmail`).
    pub experiment: String,
    /// Human heading printed at the top of the text rendering.
    pub title: String,
    /// Ordered content blocks.
    pub sections: Vec<Section>,
}

impl Report {
    /// Starts an empty report.
    pub fn new(experiment: &str, title: impl Into<String>) -> Self {
        Report {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: experiment.to_owned(),
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a prose line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.sections.push(Section::Note(text.into()));
    }

    /// Appends a table section.
    pub fn table(&mut self, name: &str, table: &Table) {
        self.sections.push(Section::Rows {
            name: name.to_owned(),
            headers: table.headers().to_vec(),
            rows: table.rows().to_vec(),
        });
    }

    /// Appends a key/value section.
    pub fn kv(&mut self, name: &str, pairs: Vec<(String, String)>) {
        self.sections.push(Section::KeyVals {
            name: name.to_owned(),
            pairs,
        });
    }

    /// The plain-text rendering (what the `repro-*` binaries have always
    /// printed).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push_str("\n\n");
        for s in &self.sections {
            match s {
                Section::Note(text) => {
                    out.push_str(text);
                    out.push('\n');
                }
                Section::Rows { headers, rows, .. } => {
                    let mut t = Table::new(headers.iter().map(String::as_str).collect());
                    for r in rows {
                        t.row(r.clone());
                    }
                    out.push('\n');
                    out.push_str(&t.render());
                    out.push('\n');
                }
                Section::KeyVals { pairs, .. } => {
                    for (k, v) in pairs {
                        out.push_str("  ");
                        out.push_str(k);
                        out.push_str(" = ");
                        out.push_str(v);
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// The JSON rendering.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (experiment-driver policy: fail fast).
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Prints the report in the requested form.
    pub fn emit(&self, json: bool) {
        if json {
            println!("{}", self.render_json());
        } else {
            print!("{}", self.render_text());
        }
    }
}

/// One size tier of the §3.1.1 assignment scale experiment
/// (`BENCH_assign.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AssignTier {
    /// Tier label (`fig1`, `smoke-50k`, `200k`, `1m`).
    pub label: String,
    /// Total users assigned.
    pub users: u64,
    /// Hosts in the topology.
    pub hosts: usize,
    /// Servers in the topology.
    pub servers: usize,
    /// Wall time to build the shared [`CostMatrix`], milliseconds.
    ///
    /// [`CostMatrix`]: lems_net::cost_matrix::CostMatrix
    pub matrix_build_ms: f64,
    /// Wall time for nearest-server initialisation, milliseconds.
    pub init_ms: f64,
    /// Wall time for the paper's classic solver (full-objective
    /// re-evaluation per tentative move); `None` above the sizes where it
    /// is tractable.
    pub classic_ms: Option<f64>,
    /// Wall time for the sequential synchronous-pass solver, milliseconds.
    pub sync_ms: f64,
    /// Wall time for the parallel synchronous-pass solver, milliseconds.
    pub par_ms: f64,
    /// `classic_ms / par_ms` where the classic solver ran.
    pub speedup_vs_classic: Option<f64>,
    /// `sync_ms / par_ms` (≈1 on a single-core machine by design).
    pub speedup_vs_sync: f64,
    /// Synchronous passes to convergence.
    pub passes: u64,
    /// Accepted transfers.
    pub moves: u64,
    /// Maximum final server utilisation ρ.
    pub rho_max: f64,
    /// Spread `max ρ − min ρ` across servers after balancing.
    pub rho_spread: f64,
    /// Final objective `Σ A_ij · TC_ij`.
    pub total_cost: f64,
    /// FNV-1a fingerprint of the final assignment (hex) — the determinism
    /// contract: same seed, same digest, at any thread count.
    pub digest: String,
}

/// One size tier of the GetMail authority-list scale experiment
/// (`BENCH_getmail.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GetMailTier {
    /// Tier label, matching the assignment tier it derives from.
    pub label: String,
    /// Total users whose lists were built.
    pub users: u64,
    /// Hosts in the topology.
    pub hosts: usize,
    /// Servers in the topology.
    pub servers: usize,
    /// Authority-list length per host.
    pub list_len: usize,
    /// Wall time to rank and truncate every host's list, milliseconds.
    pub build_ms: f64,
    /// Mean polls per retrieval over the sampled GetMail runs.
    pub polls_mean: f64,
    /// FNV-1a fingerprint (hex) over every list's node ids.
    pub digest: String,
}

/// The `BENCH_assign.json` document: environment stamp plus per-tier
/// assignment results. (The vendored serde derive has no generics, so the
/// two bench documents are spelled out rather than sharing a `BenchDoc<T>`.)
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AssignBench {
    /// Schema version (see [`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment id (`assign-scale`).
    pub experiment: String,
    /// RNG seed the topologies were generated from.
    pub seed: u64,
    /// Worker threads the parallel paths actually used.
    pub threads: usize,
    /// Per-tier measurements, smallest tier first.
    pub tiers: Vec<AssignTier>,
}

/// The `BENCH_getmail.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GetMailBench {
    /// Schema version (see [`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment id (`getmail-scale`).
    pub experiment: String,
    /// RNG seed the topologies were generated from.
    pub seed: u64,
    /// Worker threads the parallel paths actually used.
    pub threads: usize,
    /// Per-tier measurements, smallest tier first.
    pub tiers: Vec<GetMailTier>,
}

impl AssignBench {
    /// Pretty JSON for committing as a `BENCH_*.json` artifact.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (experiment-driver policy: fail fast).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench doc serialises")
    }
}

impl GetMailBench {
    /// Pretty JSON for committing as a `BENCH_*.json` artifact.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (experiment-driver policy: fail fast).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench doc serialises")
    }
}

/// One backend's measurements at one size tier of the storage durability
/// experiment (`BENCH_store.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreTier {
    /// Tier label (`smoke-10k`, `100k`, `1m`).
    pub label: String,
    /// Backend measured (`mem` = fiat-stable RAM, `wal` = write-ahead log
    /// with per-record sync).
    pub backend: String,
    /// Distinct mailboxes the deposits spread over.
    pub users: usize,
    /// Messages deposited (every one must be drained back after recovery).
    pub messages: u64,
    /// Wall time to deposit every message, milliseconds.
    pub deposit_ms: f64,
    /// `messages / deposit_ms`, as deposits per second — the headline
    /// durability-tax number when compared across backends.
    pub deposits_per_sec: f64,
    /// Wall time for crash + recovery (log replay for `wal`), milliseconds.
    pub recovery_ms: f64,
    /// Log records replayed during recovery (0 for `mem`).
    pub replayed_records: u64,
    /// Mailbox messages present after recovery.
    pub recovered_messages: u64,
    /// Wall time to destructively drain every mailbox post-recovery,
    /// milliseconds.
    pub drain_ms: f64,
    /// Durable log bytes at crash time (0 for `mem`).
    pub wal_bytes: u64,
}

/// The `BENCH_store.json` document: per-tier, per-backend durability cost.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreBench {
    /// Schema version (see [`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment id (`store-durability`).
    pub experiment: String,
    /// Seed the deterministic workload was generated from.
    pub seed: u64,
    /// Per-tier measurements, smallest tier first, `mem` before `wal`
    /// within a tier.
    pub tiers: Vec<StoreTier>,
}

impl StoreBench {
    /// Pretty JSON for committing as a `BENCH_*.json` artifact.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (experiment-driver policy: fail fast).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench doc serialises")
    }
}

/// One engine's measurements at one tier of the sim-kernel throughput
/// experiment (`BENCH_sim.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimTier {
    /// Tier label (`hold-smoke-1m`, `hold-10m`, `actor-10m`, `shard-2m`).
    pub label: String,
    /// Engine measured: `calendar` (the current kernel), `baseline` (the
    /// retained pre-refactor ordered-map kernel), or `sharded-<n>`.
    pub engine: String,
    /// Worker threads (1 for the sequential engines).
    pub threads: usize,
    /// Steady pending-event population (hold/actor tiers; 0 for sharded).
    pub pending: u64,
    /// Actors in the mesh (0 for the raw hold tiers).
    pub actors: u64,
    /// Events processed in the measurement window.
    pub events: u64,
    /// Wall time for the measurement window, milliseconds.
    pub wall_ms: f64,
    /// `events / wall_ms` as events per second — the headline throughput.
    pub events_per_sec: f64,
    /// Determinism fingerprint (hex): the pop-stream digest for hold
    /// tiers, the trace digest for sharded tiers. Equal digests across
    /// engines/thread counts prove the speedup measured identical work.
    pub digest: String,
}

/// The `BENCH_sim.json` document: per-tier, per-engine kernel throughput.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimBench {
    /// Schema version (see [`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment id (`sim-kernel`).
    pub experiment: String,
    /// Seed the deterministic workloads were generated from.
    pub seed: u64,
    /// Peak resident set of the measuring process, KiB (`VmHWM`; 0 where
    /// `/proc` is unavailable).
    pub peak_rss_kib: u64,
    /// Per-tier measurements: hold tiers first (calendar before baseline
    /// within a tier), then actor tiers, then sharded tiers by ascending
    /// thread count.
    pub tiers: Vec<SimTier>,
}

impl SimBench {
    /// Pretty JSON for committing as a `BENCH_*.json` artifact.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (experiment-driver policy: fail fast).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench doc serialises")
    }
}

/// One regression found by [`gate_wall_times`].
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Tier label.
    pub label: String,
    /// Which timing field regressed.
    pub metric: &'static str,
    /// Committed baseline, milliseconds.
    pub baseline_ms: f64,
    /// Current run, milliseconds.
    pub current_ms: f64,
}

/// The CI smoke gate: compares current assignment wall times against a
/// committed baseline, flagging any tier whose `sync_ms`/`par_ms` grew by
/// more than `tolerance` (e.g. `0.25` = +25%). Tiers present on only one
/// side are ignored (the smoke run measures a subset). Timings under two
/// milliseconds are skipped — at that scale scheduler jitter, not code,
/// dominates.
pub fn gate_wall_times(
    baseline: &AssignBench,
    current: &AssignBench,
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in &current.tiers {
        let Some(base) = baseline.tiers.iter().find(|t| t.label == cur.label) else {
            continue;
        };
        for (metric, b, c) in [
            ("sync_ms", base.sync_ms, cur.sync_ms),
            ("par_ms", base.par_ms, cur.par_ms),
        ] {
            if b >= 2.0 && c > b * (1.0 + tolerance) {
                out.push(Regression {
                    label: cur.label.clone(),
                    metric,
                    baseline_ms: b,
                    current_ms: c,
                });
            }
        }
    }
    out
}

/// The storage CI gate: like [`gate_wall_times`] but over the durability
/// tiers, matching on `(label, backend)` and flagging `deposit_ms` /
/// `recovery_ms` growth beyond `tolerance`. The same sub-2ms jitter floor
/// applies.
pub fn gate_store_times(
    baseline: &StoreBench,
    current: &StoreBench,
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in &current.tiers {
        let Some(base) = baseline
            .tiers
            .iter()
            .find(|t| t.label == cur.label && t.backend == cur.backend)
        else {
            continue;
        };
        for (metric, b, c) in [
            ("deposit_ms", base.deposit_ms, cur.deposit_ms),
            ("recovery_ms", base.recovery_ms, cur.recovery_ms),
        ] {
            if b >= 2.0 && c > b * (1.0 + tolerance) {
                out.push(Regression {
                    label: format!("{}/{}", cur.label, cur.backend),
                    metric,
                    baseline_ms: b,
                    current_ms: c,
                });
            }
        }
    }
    out
}

/// The sim-kernel CI gate: like [`gate_wall_times`] but over the kernel
/// throughput tiers, matching on `(label, engine)` and flagging `wall_ms`
/// growth beyond `tolerance`. The same sub-2ms jitter floor applies.
pub fn gate_sim_times(baseline: &SimBench, current: &SimBench, tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in &current.tiers {
        let Some(base) = baseline
            .tiers
            .iter()
            .find(|t| t.label == cur.label && t.engine == cur.engine)
        else {
            continue;
        };
        if base.wall_ms >= 2.0 && cur.wall_ms > base.wall_ms * (1.0 + tolerance) {
            out.push(Regression {
                label: format!("{}/{}", cur.label, cur.engine),
                metric: "wall_ms",
                baseline_ms: base.wall_ms,
                current_ms: cur.wall_ms,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(label: &str, sync_ms: f64, par_ms: f64) -> AssignTier {
        AssignTier {
            label: label.to_owned(),
            users: 100,
            hosts: 6,
            servers: 3,
            matrix_build_ms: 0.1,
            init_ms: 0.1,
            classic_ms: Some(1.0),
            sync_ms,
            par_ms,
            speedup_vs_classic: Some(1.0),
            speedup_vs_sync: 1.0,
            passes: 3,
            moves: 10,
            rho_max: 0.9,
            rho_spread: 0.1,
            total_cost: 1234.5,
            digest: "deadbeef".into(),
        }
    }

    fn doc(tiers: Vec<AssignTier>) -> AssignBench {
        AssignBench {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "assign-scale".into(),
            seed: 42,
            threads: 1,
            tiers,
        }
    }

    #[test]
    fn report_renders_both_forms() {
        let mut r = Report::new("demo", "DEMO — heading");
        r.note("a prose line");
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        r.table("pairs", &t);
        r.kv("totals", vec![("sum".into(), "1".into())]);
        let text = r.render_text();
        assert!(text.contains("DEMO — heading"));
        assert!(text.contains("a prose line"));
        assert!(text.contains("sum = 1"));
        let json = r.render_json();
        assert!(json.contains("\"experiment\": \"demo\""));
        let back: Report = serde_json::from_str(&json).expect("round-trip");
        assert_eq!(back.sections.len(), 3);
        assert_eq!(back.render_text(), text);
    }

    #[test]
    fn bench_doc_round_trips() {
        let d = doc(vec![tier("fig1", 5.0, 5.0)]);
        let json = d.to_json();
        let back: AssignBench = serde_json::from_str(&json).expect("round-trip");
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(back.tiers.len(), 1);
        assert_eq!(back.tiers[0].label, "fig1");
        assert_eq!(back.tiers[0].classic_ms, Some(1.0));
    }

    #[test]
    fn gate_flags_only_real_regressions() {
        let base = doc(vec![tier("a", 10.0, 10.0), tier("b", 1.0, 1.0)]);
        // Tier `a` par_ms regressed 50%; tier `b` is under the jitter
        // floor; tier `c` has no baseline.
        let cur = doc(vec![
            tier("a", 10.0, 15.0),
            tier("b", 1.9, 1.9),
            tier("c", 99.0, 99.0),
        ]);
        let regressions = gate_wall_times(&base, &cur, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].label, "a");
        assert_eq!(regressions[0].metric, "par_ms");
    }

    #[test]
    fn gate_accepts_within_tolerance() {
        let base = doc(vec![tier("a", 10.0, 10.0)]);
        let cur = doc(vec![tier("a", 12.0, 12.0)]);
        assert!(gate_wall_times(&base, &cur, 0.25).is_empty());
    }

    fn store_tier(label: &str, backend: &str, deposit_ms: f64, recovery_ms: f64) -> StoreTier {
        StoreTier {
            label: label.to_owned(),
            backend: backend.to_owned(),
            users: 100,
            messages: 10_000,
            deposit_ms,
            deposits_per_sec: 1.0e6,
            recovery_ms,
            replayed_records: if backend == "wal" { 10_000 } else { 0 },
            recovered_messages: 10_000,
            drain_ms: 1.0,
            wal_bytes: if backend == "wal" { 1 << 20 } else { 0 },
        }
    }

    fn store_doc(tiers: Vec<StoreTier>) -> StoreBench {
        StoreBench {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "store-durability".into(),
            seed: 42,
            tiers,
        }
    }

    #[test]
    fn store_doc_round_trips() {
        let d = store_doc(vec![
            store_tier("smoke-10k", "mem", 3.0, 0.1),
            store_tier("smoke-10k", "wal", 9.0, 4.0),
        ]);
        let back: StoreBench = serde_json::from_str(&d.to_json()).expect("round-trip");
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(back.tiers.len(), 2);
        assert_eq!(back.tiers[1].backend, "wal");
        assert_eq!(d.to_json(), back.to_json());
    }

    #[test]
    fn store_gate_matches_on_label_and_backend() {
        let base = store_doc(vec![
            store_tier("a", "mem", 10.0, 0.1),
            store_tier("a", "wal", 10.0, 10.0),
        ]);
        // mem regresses on deposit, wal on recovery; the sub-2ms mem
        // recovery baseline is jitter-floored; tier `b` has no baseline.
        let cur = store_doc(vec![
            store_tier("a", "mem", 15.0, 1.9),
            store_tier("a", "wal", 10.0, 15.0),
            store_tier("b", "wal", 99.0, 99.0),
        ]);
        let regressions = gate_store_times(&base, &cur, 0.25);
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].label, "a/mem");
        assert_eq!(regressions[0].metric, "deposit_ms");
        assert_eq!(regressions[1].label, "a/wal");
        assert_eq!(regressions[1].metric, "recovery_ms");
    }

    #[test]
    fn store_gate_accepts_within_tolerance() {
        let base = store_doc(vec![store_tier("a", "wal", 10.0, 10.0)]);
        let cur = store_doc(vec![store_tier("a", "wal", 12.0, 12.0)]);
        assert!(gate_store_times(&base, &cur, 0.25).is_empty());
    }

    fn sim_tier(label: &str, engine: &str, wall_ms: f64) -> SimTier {
        SimTier {
            label: label.to_owned(),
            engine: engine.to_owned(),
            threads: 1,
            pending: 50_000,
            actors: 0,
            events: 1_000_000,
            wall_ms,
            events_per_sec: 1_000_000.0 / (wall_ms / 1_000.0),
            digest: "0xdeadbeefdeadbeef".into(),
        }
    }

    fn sim_doc(tiers: Vec<SimTier>) -> SimBench {
        SimBench {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "sim-kernel".into(),
            seed: 42,
            peak_rss_kib: 123_456,
            tiers,
        }
    }

    #[test]
    fn sim_doc_round_trips() {
        let d = sim_doc(vec![
            sim_tier("hold-smoke-1m", "calendar", 100.0),
            sim_tier("hold-smoke-1m", "baseline", 700.0),
        ]);
        let back: SimBench = serde_json::from_str(&d.to_json()).expect("round-trip");
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(back.tiers.len(), 2);
        assert_eq!(back.tiers[1].engine, "baseline");
        assert_eq!(back.peak_rss_kib, 123_456);
        assert_eq!(d.to_json(), back.to_json());
    }

    #[test]
    fn sim_gate_matches_on_label_and_engine() {
        let base = sim_doc(vec![
            sim_tier("a", "calendar", 10.0),
            sim_tier("a", "baseline", 70.0),
        ]);
        // The calendar engine regresses; the baseline engine is fine;
        // tier `b` has no baseline entry and a sub-2ms tier is floored.
        let cur = sim_doc(vec![
            sim_tier("a", "calendar", 15.0),
            sim_tier("a", "baseline", 70.0),
            sim_tier("b", "calendar", 99.0),
            sim_tier("floored", "calendar", 1.9),
        ]);
        let regressions = gate_sim_times(&base, &cur, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].label, "a/calendar");
        assert_eq!(regressions[0].metric, "wall_ms");
    }

    #[test]
    fn sim_gate_accepts_within_tolerance() {
        let base = sim_doc(vec![sim_tier("a", "calendar", 10.0)]);
        let cur = sim_doc(vec![sim_tier("a", "calendar", 12.0)]);
        assert!(gate_sim_times(&base, &cur, 0.25).is_empty());
    }
}
