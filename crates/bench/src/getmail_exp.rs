//! Experiments C1 and C2: GetMail polls per retrieval and the no-lost-mail
//! guarantee, against the poll-every-server baseline, under a sweep of
//! server failure rates.
//!
//! The analytic harness drives the pure GetMail algorithm over a
//! [`FailurePlan`]-backed store (thousands of checks per configuration);
//! the full-stack harness cross-checks one configuration end to end
//! through the actor-based deployment, timeouts and all.
//!
//! [`FailurePlan`]: lems_sim::failure::FailurePlan

use lems_core::message::MessageId;
use lems_net::generators::fig1;
use lems_net::graph::NodeId;
use lems_sim::actor::ActorId;
use lems_sim::failure::FailurePlan;
use lems_sim::metrics::MetricsRegistry;
use lems_sim::rng::SimRng;
use lems_sim::span::SpanLog;
use lems_sim::stats::Summary;
use lems_sim::time::{SimDuration, SimTime};
use lems_syntax::actors::{Deployment, DeploymentConfig, ServerFailurePlan};
use lems_syntax::getmail::{poll_all, GetMailState, PlanStore};

/// Generous per-run event budget: a non-quiescing run is a livelocked
/// retry loop and aborts the experiment rather than hanging it.
const EVENT_BUDGET: u64 = 20_000_000;

/// One row of the C1/C2 sweep.
#[derive(Clone, Copy, Debug)]
pub struct GetMailRow {
    /// Target per-server availability (MTBF / (MTBF + MTTR)).
    pub availability: f64,
    /// Mean polls per retrieval, GetMail.
    pub getmail_polls: f64,
    /// Mean polls per retrieval, poll-all baseline.
    pub pollall_polls: f64,
    /// Messages deposited across the run.
    pub deposited: u64,
    /// Messages retrieved (GetMail side).
    pub retrieved: u64,
    /// Messages silently lost (must be 0 — the §5 claim).
    pub lost: u64,
    /// Deposit attempts that bounced because every server was down.
    pub undeliverable: u64,
}

/// Sweep configuration.
#[derive(Clone, Copy, Debug)]
pub struct GetMailSweepConfig {
    /// Authority servers per user.
    pub servers: usize,
    /// Independent users simulated per availability point.
    pub users: usize,
    /// Scenario horizon, in time units.
    pub horizon: f64,
    /// Mean time between mailbox checks.
    pub check_interval: f64,
    /// Mean time between deposits for a user.
    pub deposit_interval: f64,
    /// MTTR (repair time) in units; MTBF is derived from the availability.
    pub mttr: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for GetMailSweepConfig {
    fn default() -> Self {
        GetMailSweepConfig {
            servers: 3,
            users: 50,
            horizon: 2_000.0,
            check_interval: 10.0,
            deposit_interval: 15.0,
            mttr: 20.0,
            seed: 42,
        }
    }
}

/// Runs the analytic sweep over the given availability targets. An
/// availability of 1.0 means no failures at all ("normal conditions").
pub fn sweep(availabilities: &[f64], cfg: &GetMailSweepConfig) -> Vec<GetMailRow> {
    availabilities
        .iter()
        .map(|&avail| one_point(avail, cfg))
        .collect()
}

fn one_point(availability: f64, cfg: &GetMailSweepConfig) -> GetMailRow {
    assert!((0.0..=1.0).contains(&availability));
    let root = SimRng::seed(cfg.seed).fork(&format!("avail{availability}"));
    let horizon = SimTime::from_units(cfg.horizon);
    let servers: Vec<NodeId> = (0..cfg.servers).map(NodeId).collect();
    let actors: Vec<ActorId> = (0..cfg.servers).map(ActorId).collect();

    let mut getmail_polls = Summary::new();
    let mut pollall_polls = Summary::new();
    let mut deposited = 0u64;
    let mut retrieved = 0u64;
    let mut undeliverable = 0u64;
    let mut left_in_storage = 0u64;

    for user in 0..cfg.users {
        let mut rng = root.fork(&format!("user{user}"));
        let plan = if availability >= 1.0 {
            FailurePlan::new()
        } else {
            let mtbf = cfg.mttr * availability / (1.0 - availability);
            FailurePlan::random(
                &mut rng,
                &actors,
                SimDuration::from_units(mtbf),
                SimDuration::from_units(cfg.mttr),
                horizon,
            )
            .expect("experiment parameters are valid")
        };
        // Identical deposit schedules feed both retrieval strategies.
        let mut store_g = PlanStore::new(plan.clone());
        let mut store_p = PlanStore::new(plan);
        let mut state = GetMailState::new();

        let mut next_id = 0u64;
        let mut t = 0.0;
        let mut next_deposit = rng.exp_duration(SimDuration::from_units(cfg.deposit_interval));
        let mut next_check = rng.exp_duration(SimDuration::from_units(cfg.check_interval));
        let mut t_dep = next_deposit.as_units();
        let mut t_chk = next_check.as_units();
        while t < cfg.horizon {
            if t_dep <= t_chk {
                t = t_dep;
                if t >= cfg.horizon {
                    break;
                }
                let id = MessageId(next_id);
                next_id += 1;
                let at = SimTime::from_units(t);
                match store_g.deposit(&servers, id, at) {
                    Some(_) => deposited += 1,
                    None => undeliverable += 1,
                }
                let _ = store_p.deposit(&servers, id, at);
                next_deposit = rng.exp_duration(SimDuration::from_units(cfg.deposit_interval));
                t_dep += next_deposit.as_units();
            } else {
                t = t_chk;
                if t >= cfg.horizon {
                    break;
                }
                let at = SimTime::from_units(t);
                let out = state.get_mail(&servers, &mut store_g, at);
                getmail_polls.observe(f64::from(out.polls));
                retrieved += out.retrieved.len() as u64;
                let base = poll_all(&servers, &mut store_p, at);
                pollall_polls.observe(f64::from(base.polls));
                next_check = rng.exp_duration(SimDuration::from_units(cfg.check_interval));
                t_chk += next_check.as_units();
            }
        }
        // Drain after the horizon (all outages have ended by then).
        let drain1 = state.get_mail(
            &servers,
            &mut store_g,
            horizon + SimDuration::from_units(1.0),
        );
        let drain2 = state.get_mail(
            &servers,
            &mut store_g,
            horizon + SimDuration::from_units(2.0),
        );
        retrieved += (drain1.retrieved.len() + drain2.retrieved.len()) as u64;
        left_in_storage += store_g.in_storage() as u64;
    }

    GetMailRow {
        availability,
        getmail_polls: getmail_polls.mean(),
        pollall_polls: pollall_polls.mean(),
        deposited,
        retrieved,
        // Lost = deposited but neither retrieved nor still sitting in
        // storage after the final drain.
        lost: deposited.saturating_sub(retrieved + left_in_storage),
        undeliverable,
    }
}

/// Result of the full-stack cross-check (C1 through the actor pipeline).
#[derive(Clone, Copy, Debug)]
pub struct FullStackRow {
    /// Mean polls per retrieval measured end to end.
    pub polls_mean: f64,
    /// Messages submitted.
    pub submitted: u64,
    /// Messages retrieved.
    pub retrieved: u64,
    /// Messages bounced (sender notified — not lost).
    pub bounced: u64,
    /// Messages unaccounted for at drain time.
    pub outstanding: usize,
    /// Messages still sitting in server mailboxes at drain time
    /// (diagnoses whether outstanding mail is stranded in storage or
    /// vanished in flight).
    pub in_storage: usize,
}

/// Message-lifecycle telemetry captured alongside a [`full_stack_traced`]
/// run, in the shape `lems-obs` exports: the complete span log plus the
/// per-actor metric registries in deployment order.
#[derive(Clone, Debug)]
pub struct FullStackTelemetry {
    /// The run's span log (lossless; recording is unbounded).
    pub spans: SpanLog,
    /// `(scope, registry)` pairs in deployment (node) order.
    pub scopes: Vec<(String, MetricsRegistry)>,
    /// Engine seed the run used.
    pub seed: u64,
    /// Simulated time at quiescence.
    pub finished_at: SimTime,
}

/// Runs the actor-based deployment on the Fig. 1 network with random
/// server outages and periodic checks; the deliverable is the same
/// polls/lost metrics as the analytic sweep, now including timeouts,
/// forwarding, and store-and-forward effects.
pub fn full_stack(availability: f64, seed: u64) -> FullStackRow {
    full_stack_traced(availability, seed).0
}

/// [`full_stack`] plus the run's telemetry. Span recording draws no
/// randomness and schedules nothing, so the measured row is identical to
/// the untraced run's.
pub fn full_stack_traced(availability: f64, seed: u64) -> (FullStackRow, FullStackTelemetry) {
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    );
    d.enable_spans();
    let names = d.user_names();
    let mut rng = SimRng::seed(seed).fork("full-stack");

    // Failures on all servers.
    if availability < 1.0 {
        let mttr = 20.0;
        let mtbf = mttr * availability / (1.0 - availability);
        let plan = ServerFailurePlan::random(
            &mut rng,
            &f.topology.servers(),
            SimDuration::from_units(mtbf),
            SimDuration::from_units(mttr),
            SimTime::from_units(1_000.0),
        );
        d.apply_server_failures(&plan);
    }

    // Workload: sends in the first 900 units, checks throughout, then a
    // final drain round of checks once everything is back up.
    let mut t = 1.0;
    while t < 900.0 {
        let from = rng.index(names.len());
        let mut to = rng.index(names.len());
        if to == from {
            to = (to + 1) % names.len();
        }
        d.send_at(
            SimTime::from_units(t),
            &names[from].clone(),
            &names[to].clone(),
        );
        t += rng.unit() * 8.0 + 1.0;
    }
    let mut t = 5.0;
    while t < 1_000.0 {
        for name in &names.clone() {
            d.check_at(SimTime::from_units(t + rng.unit()), name);
        }
        t += 40.0;
    }
    for (i, name) in names.clone().iter().enumerate() {
        d.check_at(SimTime::from_units(1_100.0 + i as f64), name);
        d.check_at(SimTime::from_units(1_200.0 + i as f64), name);
    }
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

    let in_storage = d.mail_in_storage();
    let st = d.stats.borrow();
    let row = FullStackRow {
        polls_mean: st.retrieval_polls.mean(),
        submitted: st.submitted,
        retrieved: st.retrieved,
        bounced: st.bounced,
        outstanding: st.outstanding(),
        in_storage,
    };
    drop(st);
    let telemetry = FullStackTelemetry {
        spans: d.spans.borrow().clone(),
        scopes: d.metrics_snapshot(),
        seed,
        finished_at: d.sim.now(),
    };
    (row, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> GetMailSweepConfig {
        GetMailSweepConfig {
            users: 10,
            horizon: 500.0,
            ..GetMailSweepConfig::default()
        }
    }

    #[test]
    fn no_failures_means_one_poll_and_nothing_lost() {
        let rows = sweep(&[1.0], &quick_cfg());
        let r = rows[0];
        // First check per user walks the list; amortised mean stays near 1.
        assert!(r.getmail_polls < 1.2, "polls {}", r.getmail_polls);
        assert_eq!(r.pollall_polls, 3.0);
        assert_eq!(r.lost, 0);
        assert_eq!(r.undeliverable, 0);
    }

    #[test]
    fn failures_increase_polls_but_never_lose_mail() {
        let rows = sweep(&[0.99, 0.9, 0.7], &quick_cfg());
        for r in &rows {
            assert_eq!(r.lost, 0, "lost mail at availability {}", r.availability);
            assert!(r.getmail_polls < r.pollall_polls);
        }
        // Polls grow as availability drops.
        assert!(rows[0].getmail_polls <= rows[2].getmail_polls);
    }

    #[test]
    fn full_stack_accounts_for_every_message() {
        let r = full_stack(0.95, 7);
        assert!(r.submitted > 50);
        assert_eq!(
            r.outstanding, 0,
            "every message must be retrieved or bounced: {r:?}"
        );
        assert!(r.polls_mean >= 1.0);
    }
}
