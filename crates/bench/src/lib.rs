//! # lems-bench — experiment harness
//!
//! Regenerates every table and figure of *"Designing Large Electronic
//! Mail Systems"* (Bahaa-El-Din & Yuen, ICDCS 1988) plus the paper's
//! quantitative claims; see `DESIGN.md` for the experiment index
//! (FIG1/FIG2, T1–T3, C1–C7) and the `repro-*` binaries for the runnable
//! entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign_exp;
pub mod cache_exp;
pub mod emit;
pub mod getmail_exp;
pub mod locindep_exp;
pub mod mst_exp;
pub mod render;
pub mod scale_exp;
pub mod scorecard_exp;
pub mod sim_exp;
pub mod store_exp;
