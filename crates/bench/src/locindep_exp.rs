//! Experiment C5: the System-2 overhead story — "overhead is only
//! incurred if a user moves to other locations other than his primary
//! location" (§3.2.2c), and the remote-access / redirect / rename
//! trade-off for cross-region migration (§3.2.4).

use lems_locindep::delivery::{
    delivery_cost, rename_breakeven, CostParams, CrossRegionPolicy, DeliveryCost, UserLocation,
};
use lems_locindep::tracking::RegionTracker;
use lems_net::shortest_path::DistanceTable;
use lems_net::topology::{RegionId, Topology};
use lems_sim::rng::SimRng;

use crate::mst_exp::distinct_world;

/// Generous per-run event budget: a non-quiescing run is a livelocked
/// retry loop and aborts the experiment rather than hanging it.
const EVENT_BUDGET: u64 = 20_000_000;

/// One row of the mobility sweep.
#[derive(Clone, Copy, Debug)]
pub struct MobilityRow {
    /// Fraction of recipients away from their primary host.
    pub moved_fraction: f64,
    /// Mean delivery cost (units) across sampled deliveries.
    pub mean_cost: f64,
    /// Mean consultations per delivery.
    pub mean_consults: f64,
}

/// Sweeps the fraction of roaming users on a two-region world: deliveries
/// to stationary users must cost the same regardless of the sweep, and
/// the marginal cost comes only from roamers.
pub fn mobility_sweep(fractions: &[f64], seed: u64) -> Vec<MobilityRow> {
    let t = distinct_world(seed, 2, 3, 6);
    let dist = t.distances();
    let region = RegionId(0);
    let servers = t.servers_in(region);
    let hosts = t.hosts_in(region);
    let mut rng = SimRng::seed(seed).fork("mobility");
    let params = CostParams::default();

    fractions
        .iter()
        .map(|&frac| {
            let mut tracker = RegionTracker::new(servers.clone());
            let mut total_cost = 0.0;
            let mut total_consults = 0.0;
            let samples = 400;
            for i in 0..samples {
                let sender_server = *rng.pick(&servers);
                let authority = *rng.pick(&servers);
                let primary = *rng.pick(&hosts);
                let user: lems_core::name::MailName = format!("r0.{}.user{i}", t.name(primary))
                    .parse()
                    .expect("valid");

                let location = if rng.chance(frac) {
                    // Roamer: logs in from a random other host through the
                    // server nearest to it; the authority must locate them.
                    let current = *rng.pick(&hosts);
                    let via = *rng.pick(&servers);
                    tracker.login(&user, current, via);
                    let found = tracker.locate(&user, authority);
                    UserLocation::WithinRegion {
                        current_host: found.host.unwrap_or(current),
                        consults: found.consults,
                    }
                } else {
                    UserLocation::Primary
                };
                let c: DeliveryCost = delivery_cost(
                    &dist,
                    sender_server,
                    authority,
                    primary,
                    &servers,
                    location,
                    CrossRegionPolicy::Redirect,
                    &params,
                );
                total_cost += c.total();
                total_consults += c.consult_units;
            }
            MobilityRow {
                moved_fraction: frac,
                mean_cost: total_cost / samples as f64,
                mean_consults: total_consults / samples as f64,
            }
        })
        .collect()
}

/// Cross-region policy comparison on one representative migrant.
#[derive(Clone, Copy, Debug)]
pub struct PolicyRow {
    /// Per-message cost under remote access.
    pub remote_access: f64,
    /// Per-message cost under redirection.
    pub redirect: f64,
    /// Per-message cost after renaming.
    pub rename: f64,
    /// Messages after which renaming beats redirecting (None = never).
    pub breakeven_messages: Option<u64>,
}

/// Computes the §3.2.4 policy comparison on a two-region world.
pub fn policy_comparison(seed: u64) -> PolicyRow {
    let t = distinct_world(seed, 2, 3, 4);
    let dist: DistanceTable = t.distances();
    let params = CostParams::default();

    let old_servers = t.servers_in(RegionId(0));
    let new_servers = t.servers_in(RegionId(1));
    let sender_server = old_servers[0];
    let authority = old_servers[1 % old_servers.len()];
    let primary = t.hosts_in(RegionId(0))[0];
    let new_server = new_servers[0];
    let new_host = t.hosts_in(RegionId(1))[0];

    let loc = UserLocation::CrossRegion {
        current_host: new_host,
        new_region_server: new_server,
    };
    let cost_for = |policy| {
        delivery_cost(
            &dist,
            sender_server,
            authority,
            primary,
            &old_servers,
            loc,
            policy,
            &params,
        )
        .total()
    };
    let remote_access = cost_for(CrossRegionPolicy::RemoteAccess);
    let redirect = cost_for(CrossRegionPolicy::Redirect);
    let rename = cost_for(CrossRegionPolicy::Rename);
    PolicyRow {
        remote_access,
        redirect,
        rename,
        breakeven_messages: rename_breakeven(redirect, rename, &params),
    }
}

/// Reconfiguration comparison (System 1 vs System 2): System 1 reassigns
/// user records when a server is added; System 2 just rehashes sub-groups
/// and moves only the remapped groups' records.
#[derive(Clone, Copy, Debug)]
pub struct ReconfigComparisonRow {
    /// Fraction of the name space System 2 moves on a server addition.
    pub rehash_moved_fraction: f64,
    /// Fraction of users System 1 moves on the same addition (from the
    /// C6c experiment's assignment delta).
    pub assignment_moved_fraction: f64,
}

/// Runs the reconfiguration comparison.
pub fn reconfig_comparison(seed: u64) -> ReconfigComparisonRow {
    // System 2 side: 64 sub-groups over 3 servers -> add a 4th.
    let mut map = lems_locindep::subgroup::SubgroupMap::new(
        64,
        vec![
            lems_net::graph::NodeId(0),
            lems_net::graph::NodeId(1),
            lems_net::graph::NodeId(2),
        ],
    );
    let report = map.rehash(vec![
        lems_net::graph::NodeId(0),
        lems_net::graph::NodeId(1),
        lems_net::graph::NodeId(2),
        lems_net::graph::NodeId(3),
    ]);

    // System 1 side: the C6c add-server experiment.
    let r = crate::assign_exp::add_server_reconvergence();
    let total_users = 270.0;
    let _ = seed;
    ReconfigComparisonRow {
        rehash_moved_fraction: report.moved_fraction(),
        assignment_moved_fraction: r.moved_users as f64 / total_users,
    }
}

/// Sanity helper: the topology used in C5 (exposed for the example
/// binaries).
pub fn c5_world(seed: u64) -> Topology {
    distinct_world(seed, 2, 3, 6)
}

/// One row of the *actor-measured* mobility sweep: the same question as
/// [`mobility_sweep`], answered by the running System-2 protocol
/// (`lems_locindep::actors`) instead of the analytic cost model.
#[derive(Clone, Copy, Debug)]
pub struct ActorMobilityRow {
    /// Fraction of recipients who roamed before their mail arrived.
    pub moved_fraction: f64,
    /// `WhereIs` consultations per stored message.
    pub consults_per_message: f64,
    /// Notifications that reached a non-primary host.
    pub roaming_notifications: u64,
    /// Mean submission-to-notification latency (units).
    pub notify_latency: f64,
}

/// Runs the actor-based System-2 protocol at each mobility point.
///
/// Login reports propagate cooperatively (`LocationUpdate` broadcasts), so
/// consults stay near zero even under mobility *when logins precede
/// mail*; the sweep therefore makes half the roamers log in only **after**
/// their mail is sent, forcing the sub-group server to fall back to peer
/// consultation or the primary-host default — the §3.2.2c "server has to
/// consult with other local servers" path.
pub fn actor_mobility_sweep(fractions: &[f64], seed: u64) -> Vec<ActorMobilityRow> {
    use lems_locindep::actors::RoamDeployment;
    use lems_sim::time::SimTime;

    fractions
        .iter()
        .map(|&frac| {
            let mut rng = SimRng::seed(seed).fork(&format!("actor-mob{frac}"));
            let topo = distinct_world(seed, 1, 3, 6);
            let mut d = RoamDeployment::build(&topo, &[2; 6], 32, seed);
            let users: Vec<lems_core::name::MailName> = d.users.keys().cloned().collect();
            let hosts = topo.hosts_in(lems_net::topology::RegionId(0));

            // Everyone starts logged in at their primary host.
            for (i, u) in users.iter().enumerate() {
                let home = d.users[u];
                d.login_at(SimTime::from_units(1.0 + i as f64 * 0.1), u, home);
            }
            // A fraction roams to a random other host at t=50.
            for u in &users {
                if rng.chance(frac) {
                    let home = d.users[u];
                    let away = *hosts
                        .iter()
                        .filter(|&&h| h != home)
                        .nth(rng.index(hosts.len() - 1))
                        .expect("other host");
                    d.login_at(SimTime::from_units(50.0 + rng.unit()), u, away);
                }
            }
            // Mail to everyone at t=100 (locations settled).
            let sender = users[0].clone();
            for (i, u) in users.iter().enumerate().skip(1) {
                d.send_at(SimTime::from_units(100.0 + i as f64), &sender, u);
            }
            assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

            let st = d.stats.borrow();
            ActorMobilityRow {
                moved_fraction: frac,
                consults_per_message: st.consults as f64 / st.stored.max(1) as f64,
                roaming_notifications: st.notified - st.notified_at_primary,
                notify_latency: st.notify_latency.mean(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_sweep_consults_only_for_roamers() {
        let rows = actor_mobility_sweep(&[0.0, 1.0], 3);
        assert_eq!(rows[0].roaming_notifications, 0);
        // With full mobility, some notifications reach non-primary hosts.
        assert!(rows[1].roaming_notifications > 0);
        // Cooperative LocationUpdates keep consults rare even then.
        assert!(rows[1].consults_per_message < 1.0);
        assert!(rows[1].notify_latency > 0.0);
    }

    #[test]
    fn stationary_users_cost_nothing_extra() {
        let rows = mobility_sweep(&[0.0, 0.5, 1.0], 1);
        assert_eq!(rows[0].mean_consults, 0.0);
        // Cost grows with mobility.
        assert!(rows[2].mean_cost >= rows[0].mean_cost);
        assert!(rows[2].mean_consults > rows[0].mean_consults);
    }

    #[test]
    fn policy_ranking_matches_the_paper() {
        let p = policy_comparison(2);
        assert!(
            p.remote_access > p.redirect,
            "remote access must be the slow option: {p:?}"
        );
        assert!(p.rename <= p.redirect);
    }

    #[test]
    fn rehash_moves_less_than_reassignment() {
        let r = reconfig_comparison(3);
        assert!(r.rehash_moved_fraction > 0.0);
        assert!(r.rehash_moved_fraction < 0.5);
    }
}
