//! Experiments FIG2, C3, C4: the backbone+local MST worked example,
//! broadcast cost scaling, and the per-region cost table.

use lems_net::generators::{multi_region, MultiRegionConfig};
use lems_net::graph::NodeId;
use lems_net::shortest_path::DistanceTable;
use lems_net::topology::Topology;
use lems_sim::failure::FailurePlan;
use lems_sim::rng::SimRng;
use lems_sim::time::SimDuration;

use lems_mst::backbone::{
    build_two_level, build_two_level_distributed, flat_mst_weight, TwoLevelMst,
};
use lems_mst::broadcast::{cost_comparison, simulate_broadcast, BroadcastConfig, CostComparison};
use lems_mst::ghs::GhsStats;

/// Builds a multi-region topology with globally distinct weights (GHS
/// requirement), deterministically from `seed`.
pub fn distinct_world(
    seed: u64,
    regions: usize,
    servers_per_region: usize,
    hosts_per_region: usize,
) -> Topology {
    let mut rng = SimRng::seed(seed);
    let cfg = MultiRegionConfig {
        regions,
        servers_per_region,
        hosts_per_region,
        ..MultiRegionConfig::default()
    };
    let raw = multi_region(&mut rng, &cfg);
    let g = raw.graph().with_distinct_weights();
    let mut t = Topology::new();
    for n in raw.nodes() {
        match raw.kind(n) {
            lems_net::topology::NodeKind::Host => t.add_host(raw.region(n), raw.name(n)),
            lems_net::topology::NodeKind::Server => t.add_server(raw.region(n), raw.name(n)),
        };
    }
    for e in g.edges() {
        t.link(e.a, e.b, e.weight);
    }
    t
}

/// The FIG2 reproduction: the two-level structure on a worked example,
/// described edge by edge.
#[derive(Clone, Debug)]
pub struct Fig2Result {
    /// The topology used.
    pub topology: Topology,
    /// The structure (distributed construction).
    pub two_level: TwoLevelMst,
    /// Aggregate GHS statistics of the distributed build.
    pub ghs_stats: GhsStats,
    /// Weight of the two-level structure.
    pub two_level_weight: f64,
    /// Weight of the unconstrained flat MST (lower bound).
    pub flat_weight: f64,
}

/// Runs FIG2 on a small 4-region example.
pub fn fig2(seed: u64) -> Fig2Result {
    let topology = distinct_world(seed, 4, 3, 3);
    let (two_level, ghs_stats) = build_two_level_distributed(&topology, seed);
    let central = build_two_level(&topology);
    assert_eq!(
        two_level, central,
        "distributed and centralized constructions must agree"
    );
    let two_level_weight = two_level.total_weight(topology.graph()).as_units();
    let flat_weight = flat_mst_weight(&topology).as_units();
    Fig2Result {
        topology,
        two_level,
        ghs_stats,
        two_level_weight,
        flat_weight,
    }
}

/// One row of the C3 scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct C3Row {
    /// Regions in the topology.
    pub regions: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Total edges.
    pub edges: usize,
    /// MST broadcast cost (units).
    pub mst_units: f64,
    /// Flooding cost (units).
    pub flooding_units: f64,
    /// Per-recipient unicast cost (units).
    pub unicast_units: f64,
    /// GHS protocol messages spent building the structure.
    pub ghs_messages: u64,
    /// Nodes that answered the simulated convergecast.
    pub responded: u64,
    /// Virtual completion time of the convergecast (units).
    pub completed_units: f64,
}

/// C3: broadcast-cost scaling — MST vs flooding vs unicast as the network
/// grows, plus a live convergecast run to confirm full coverage.
pub fn c3_sweep(region_counts: &[usize], seed: u64) -> Vec<C3Row> {
    region_counts
        .iter()
        .map(|&regions| {
            let t = distinct_world(seed ^ regions as u64, regions, 3, 4);
            let (two, stats) = build_two_level_distributed(&t, seed);
            let g = t.graph();
            let dist = DistanceTable::build(g);
            let root = t.servers()[0];
            let cc: CostComparison = cost_comparison(g, &dist, root, &two.all_edges());

            let adjacency = two.adjacency(&t);
            let out = simulate_broadcast(
                g,
                &adjacency,
                &BroadcastConfig {
                    root,
                    local_matches: vec![1; g.node_count()],
                    grace: SimDuration::from_units(2.0),
                    seed,
                },
                &FailurePlan::new(),
            )
            .expect("root is up");
            assert_eq!(out.aggregate.responded as usize, g.node_count());

            C3Row {
                regions,
                nodes: g.node_count(),
                edges: g.edge_count(),
                mst_units: cc.mst_units,
                flooding_units: cc.flooding_units,
                unicast_units: cc.unicast_units,
                ghs_messages: stats.total_sent(),
                responded: out.aggregate.responded,
                completed_units: out.completed_at.as_units(),
            }
        })
        .collect()
}

/// C4: the §3.3.1B per-region cost table and a budget walk.
#[derive(Clone, Debug)]
pub struct C4Result {
    /// `(region index, cost)` rows.
    pub rows: Vec<(usize, f64)>,
    /// Total cost of full coverage.
    pub total: f64,
    /// Regions affordable at half the total budget.
    pub half_budget_regions: usize,
}

/// Runs C4 on a world of `regions` regions.
pub fn c4_table(regions: usize, seed: u64) -> C4Result {
    let t = distinct_world(seed, regions, 3, 3);
    let two = build_two_level(&t);
    let root = t.servers()[0];
    let table = lems_mst::broadcast::region_cost_table(&t, &two, t.region(root));
    let total = table.total();
    let half = table.regions_within_budget(total / 2.0).len();
    C4Result {
        rows: table.rows.iter().map(|&(r, c)| (r.0, c)).collect(),
        total,
        half_budget_regions: half,
    }
}

/// Convergecast resilience companion to C3: kill one random non-root
/// server and report coverage loss and unavailable marks.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceRow {
    /// Nodes reached without failures.
    pub full_coverage: u64,
    /// Nodes reached with the victim down.
    pub degraded_coverage: u64,
    /// Subtrees marked unavailable.
    pub unavailable_marks: u64,
}

/// Runs the resilience companion.
pub fn convergecast_resilience(seed: u64) -> ResilienceRow {
    let t = distinct_world(seed, 4, 3, 3);
    let two = build_two_level(&t);
    let g = t.graph();
    let adjacency = two.adjacency(&t);
    let root = t.servers()[0];
    let cfg = BroadcastConfig {
        root,
        local_matches: vec![1; g.node_count()],
        grace: SimDuration::from_units(2.0),
        seed,
    };
    let full = simulate_broadcast(g, &adjacency, &cfg, &FailurePlan::new()).expect("root up");

    // Pick the victim as a tree neighbor of the root, guaranteeing a
    // severed subtree.
    let victim: NodeId = adjacency[root.0][0];
    let mut plan = FailurePlan::new();
    plan.add_outage(
        lems_sim::actor::ActorId(victim.0),
        lems_sim::time::SimTime::ZERO,
        lems_sim::time::SimTime::from_units(1e9),
    )
    .expect("outage window is well-formed");
    let degraded = simulate_broadcast(g, &adjacency, &cfg, &plan).expect("root up");

    ResilienceRow {
        full_coverage: full.aggregate.responded,
        degraded_coverage: degraded.aggregate.responded,
        unavailable_marks: degraded.aggregate.unavailable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_structure_is_sound() {
        let r = fig2(3);
        assert!(r.two_level.spans(&r.topology));
        assert_eq!(r.two_level.backbone_edges.len(), 3);
        assert!(r.two_level_weight >= r.flat_weight);
        assert!(r.ghs_stats.total_sent() > 0);
    }

    #[test]
    fn c3_mst_beats_flooding_and_gap_grows() {
        let rows = c3_sweep(&[2, 4, 8], 1);
        for r in &rows {
            assert!(r.mst_units < r.flooding_units, "{r:?}");
            assert_eq!(r.responded as usize, r.nodes);
        }
        let gap_small = rows[0].flooding_units - rows[0].mst_units;
        let gap_large = rows[2].flooding_units - rows[2].mst_units;
        assert!(gap_large > gap_small, "gap should grow with size");
    }

    #[test]
    fn c4_budget_walk() {
        let r = c4_table(5, 2);
        assert_eq!(r.rows.len(), 5);
        assert!(r.total > 0.0);
        assert!(r.half_budget_regions < 5);
        assert!(r.half_budget_regions >= 1);
    }

    #[test]
    fn resilience_degrades_gracefully() {
        let r = convergecast_resilience(4);
        assert!(r.degraded_coverage < r.full_coverage);
        assert!(r.unavailable_marks >= 1);
    }
}
