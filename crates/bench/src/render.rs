//! Plain-text table rendering for the `repro-*` binaries.

use std::fmt::Write;

/// A fixed-width text table.
///
/// # Examples
///
/// ```
/// use lems_bench::render::Table;
///
/// let mut t = Table::new(vec!["host", "server", "users"]);
/// t.row(vec!["H1".into(), "S1".into(), "50".into()]);
/// let s = t.render();
/// assert!(s.contains("host") && s.contains("50"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column-wise padding.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["12345".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[2].contains("12345"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
