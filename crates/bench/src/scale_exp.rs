//! SCALE: the million-user §3.1.1 assignment pipeline behind
//! `BENCH_assign.json` / `BENCH_getmail.json`.
//!
//! Each size tier generates a deterministic multi-region topology, builds
//! the shared [`CostMatrix`] once, runs the scaled solvers (sequential and
//! parallel — byte-identical by construction), optionally cross-times the
//! paper's classic solver where it is still tractable, and then builds the
//! §3.2.3 authority lists and samples GetMail retrievals off the final
//! assignment. Wall times go into the committed `BENCH_*.json` artifacts;
//! everything except wall time is a pure function of the seed (the digest
//! fields are the proof).
//!
//! [`CostMatrix`]: lems_net::cost_matrix::CostMatrix

use std::time::Instant;

use lems_core::message::MessageId;
use lems_net::cost_matrix::CostMatrix;
use lems_net::generators::{fig1, multi_region, MultiRegionConfig};
use lems_net::graph::NodeId;
use lems_net::topology::Topology;
use lems_sim::failure::FailurePlan;
use lems_sim::rng::SimRng;
use lems_sim::time::SimTime;
use lems_syntax::assign::{
    authority_lists, balance, initialize, Assignment, AssignmentProblem, BalanceOptions,
    ScaleOptions, ScaleReport,
};
use lems_syntax::cost::{CostModel, ServerSpec};
use lems_syntax::getmail::{GetMailState, PlanStore};

use crate::emit::{AssignBench, AssignTier, GetMailBench, GetMailTier, BENCH_SCHEMA_VERSION};

/// How a tier's topology is generated.
#[derive(Clone, Copy, Debug)]
pub enum TierTopology {
    /// The paper's Fig. 1 worked example (6 hosts, 3 servers, 270 users).
    Fig1,
    /// A seeded multi-region network.
    MultiRegion {
        /// Regions in the network.
        regions: usize,
        /// Hosts per region.
        hosts_per_region: usize,
        /// Servers per region.
        servers_per_region: usize,
        /// Users on every host.
        users_per_host: u32,
        /// Per-server capacity `M`.
        server_capacity: u32,
    },
}

/// One size tier of the scale experiment.
#[derive(Clone, Copy, Debug)]
pub struct TierSpec {
    /// Tier label carried into the JSON documents.
    pub label: &'static str,
    /// Topology recipe.
    pub topology: TierTopology,
    /// Whether the classic (full-recompute) solver is timed too — it is
    /// `O(hosts × servers)` per tentative move, so only small tiers can
    /// afford it.
    pub run_classic: bool,
}

/// Authority-list length used by every tier's GetMail stage.
pub const LIST_LEN: usize = 3;

/// The CI smoke subset: Fig. 1 plus the ~50k-user tier, small enough for
/// a sub-minute gate run.
pub fn smoke_tiers() -> Vec<TierSpec> {
    vec![
        TierSpec {
            label: "fig1",
            topology: TierTopology::Fig1,
            run_classic: true,
        },
        TierSpec {
            label: "smoke-50k",
            topology: TierTopology::MultiRegion {
                regions: 25,
                hosts_per_region: 40,
                servers_per_region: 2,
                users_per_host: 50,
                server_capacity: 1_250,
            },
            run_classic: true,
        },
    ]
}

/// The full tier ladder, up to a million users on 10k hosts and 500
/// servers.
pub fn full_tiers() -> Vec<TierSpec> {
    let mut tiers = smoke_tiers();
    tiers.push(TierSpec {
        label: "200k",
        topology: TierTopology::MultiRegion {
            regions: 50,
            hosts_per_region: 80,
            servers_per_region: 4,
            users_per_host: 50,
            server_capacity: 1_250,
        },
        run_classic: false,
    });
    tiers.push(TierSpec {
        label: "1m",
        topology: TierTopology::MultiRegion {
            regions: 50,
            hosts_per_region: 200,
            servers_per_region: 10,
            users_per_host: 100,
            server_capacity: 2_500,
        },
        run_classic: false,
    });
    tiers
}

/// Everything one tier produced: the JSON rows plus the problem and final
/// assignment for callers that want to keep digging.
#[derive(Debug)]
pub struct TierOutput {
    /// Assignment-side measurements.
    pub assign: AssignTier,
    /// GetMail-side measurements.
    pub getmail: GetMailTier,
    /// The solved problem (sequential/parallel agree; this is the shared
    /// result).
    pub problem: AssignmentProblem,
    /// The final assignment.
    pub assignment: Assignment,
    /// The parallel solver's report (trace included).
    pub report: ScaleReport,
}

fn tier_topology(spec: &TierSpec, seed: u64) -> (Topology, Vec<u32>, ServerSpec) {
    match spec.topology {
        TierTopology::Fig1 => {
            let f = fig1();
            (f.topology, f.users_per_host, ServerSpec::paper_example())
        }
        TierTopology::MultiRegion {
            regions,
            hosts_per_region,
            servers_per_region,
            users_per_host,
            server_capacity,
        } => {
            let mut rng = SimRng::seed(seed).fork(&format!("scale-{}", spec.label));
            let cfg = MultiRegionConfig {
                regions,
                hosts_per_region,
                servers_per_region,
                ..MultiRegionConfig::default()
            };
            let t = multi_region(&mut rng, &cfg);
            let hosts = t.hosts().len();
            (
                t,
                vec![users_per_host; hosts],
                ServerSpec::new(server_capacity, 0.5),
            )
        }
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Runs `f` once for its result, then re-times it up to two more times and
/// keeps the minimum wall time. Small tiers finish within a few
/// milliseconds — right at the scheduler's jitter floor — and the CI perf
/// gate compares these numbers, so a single cold sample is too noisy.
/// Tiers past 200 ms are stable relative to the gate tolerance and are
/// not re-run.
fn best_ms<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    let mut best = ms(t0);
    if best < 200.0 {
        for _ in 0..2 {
            let t0 = Instant::now();
            let _ = f();
            best = best.min(ms(t0));
        }
    }
    (out, best)
}

/// FNV-1a over a flat sequence of node ids.
fn lists_digest(lists: &[Vec<NodeId>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(lists.len() as u64);
    for list in lists {
        eat(list.len() as u64);
        for n in list {
            eat(n.0 as u64);
        }
    }
    h
}

/// Runs one tier end to end. Deterministic modulo the `*_ms` wall times:
/// same `seed` ⇒ same digests, loads, costs, and traces.
pub fn run_tier(spec: &TierSpec, seed: u64) -> TierOutput {
    let (topology, users_per_host, server_spec) = tier_topology(spec, seed);

    let t0 = Instant::now();
    let matrix = CostMatrix::build(&topology);
    let matrix_build_ms = ms(t0);

    let problem = AssignmentProblem::from_matrix(
        &topology,
        matrix,
        &users_per_host,
        server_spec,
        CostModel::paper_example(),
    );

    let t0 = Instant::now();
    let initial = initialize(&problem);
    let init_ms = ms(t0);

    let opts = ScaleOptions::default();

    let ((a_sync, r_sync), sync_ms) = best_ms(|| {
        let mut a = initial.clone();
        let r = lems_syntax::assign::balance_sync(&problem, &mut a, opts);
        (a, r)
    });

    let ((a_par, r_par), par_ms) = best_ms(|| {
        let mut a = initial.clone();
        let r = lems_syntax::assign::balance_par(&problem, &mut a, opts);
        (a, r)
    });

    assert_eq!(
        a_sync, a_par,
        "parallel solver diverged from sequential on tier {}",
        spec.label
    );
    assert_eq!(r_sync.cost_trace, r_par.cost_trace);

    let classic_ms = if spec.run_classic {
        let t0 = Instant::now();
        let mut a_classic = initial.clone();
        let _ = balance(
            &problem,
            &mut a_classic,
            BalanceOptions {
                batch: opts.batch,
                ..BalanceOptions::default()
            },
        );
        Some(ms(t0))
    } else {
        None
    };

    let loads = a_par.loads();
    let rhos: Vec<f64> = (0..problem.server_count())
        .map(|j| a_par.utilization(&problem, j))
        .collect();
    let rho_max = rhos.iter().copied().fold(0.0_f64, f64::max);
    let rho_min = rhos.iter().copied().fold(f64::INFINITY, f64::min);

    let assign = AssignTier {
        label: spec.label.to_owned(),
        users: u64::from(problem.total_users()),
        hosts: problem.host_count(),
        servers: problem.server_count(),
        matrix_build_ms,
        init_ms,
        classic_ms,
        sync_ms,
        par_ms,
        speedup_vs_classic: classic_ms.map(|c| c / par_ms.max(1e-9)),
        speedup_vs_sync: sync_ms / par_ms.max(1e-9),
        passes: r_par.passes,
        moves: r_par.moves,
        rho_max,
        rho_spread: rho_max - rho_min,
        total_cost: r_par.final_cost,
        digest: format!("{:016x}", a_par.digest()),
    };
    debug_assert_eq!(
        loads.iter().map(|&l| u64::from(l)).sum::<u64>(),
        assign.users
    );

    let t0 = Instant::now();
    let lists = authority_lists(&problem, &a_par, LIST_LEN);
    let build_ms = ms(t0);

    let getmail = GetMailTier {
        label: spec.label.to_owned(),
        users: assign.users,
        hosts: assign.hosts,
        servers: assign.servers,
        list_len: LIST_LEN,
        build_ms,
        polls_mean: sample_polls(&lists, seed),
        digest: format!("{:016x}", lists_digest(&lists)),
    };

    TierOutput {
        assign,
        getmail,
        problem,
        assignment: a_par,
        report: r_par,
    }
}

/// Samples GetMail retrievals over up to 500 hosts' authority lists
/// (failure-free stores): deposit one message, retrieve it, record polls.
/// The §5 claim is "approximately one" — this stays exactly 1.0 while
/// every primary server is up.
fn sample_polls(lists: &[Vec<NodeId>], seed: u64) -> f64 {
    let mut rng = SimRng::seed(seed).fork("scale-getmail-sample");
    let samples = lists.len().min(500);
    let mut polls = 0u64;
    for s in 0..samples {
        let host = if lists.len() <= 500 {
            s
        } else {
            rng.index(lists.len())
        };
        let servers = &lists[host];
        let mut store = PlanStore::new(FailurePlan::new());
        let mut state = GetMailState::new();
        // A user's very first check walks the whole list to establish the
        // checking times; steady-state polling is what the §5 claim is
        // about, so warm up before measuring.
        let _ = state.get_mail(servers, &mut store, SimTime::from_units(0.5));
        let _ = store.deposit(servers, MessageId(s as u64), SimTime::from_units(1.0));
        let out = state.get_mail(servers, &mut store, SimTime::from_units(2.0));
        assert_eq!(out.retrieved.len(), 1, "deposited message must come back");
        polls += u64::from(out.polls);
    }
    polls as f64 / samples.max(1) as f64
}

/// Runs a tier list into the two `BENCH_*.json` documents.
pub fn run_suite(tiers: &[TierSpec], seed: u64) -> (AssignBench, GetMailBench) {
    let mut assign_tiers = Vec::new();
    let mut getmail_tiers = Vec::new();
    for spec in tiers {
        let out = run_tier(spec, seed);
        assign_tiers.push(out.assign);
        getmail_tiers.push(out.getmail);
    }
    let threads = rayon::current_num_threads();
    (
        AssignBench {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "assign-scale".into(),
            seed,
            threads,
            tiers: assign_tiers,
        },
        GetMailBench {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "getmail-scale".into(),
            seed,
            threads,
            tiers: getmail_tiers,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_tier_matches_paper_shape() {
        let spec = &smoke_tiers()[0];
        let out = run_tier(spec, 42);
        assert_eq!(out.assign.users, 270);
        assert_eq!(out.assign.hosts, 6);
        assert_eq!(out.assign.servers, 3);
        assert!(out.assign.rho_max <= 1.0);
        assert!(out.assign.classic_ms.is_some());
        assert_eq!(out.getmail.polls_mean, 1.0);
        assert_eq!(out.getmail.list_len, LIST_LEN);
    }

    #[test]
    fn tiers_are_deterministic_across_runs() {
        let spec = &smoke_tiers()[1];
        let a = run_tier(spec, 42);
        let b = run_tier(spec, 42);
        assert_eq!(a.assign.digest, b.assign.digest);
        assert_eq!(a.getmail.digest, b.getmail.digest);
        assert_eq!(a.report.cost_trace, b.report.cost_trace);
        // A different seed lands elsewhere.
        let c = run_tier(spec, 43);
        assert_ne!(a.assign.digest, c.assign.digest);
    }

    #[test]
    fn smoke_suite_builds_well_formed_docs() {
        let (assign, getmail) = run_suite(&smoke_tiers(), 42);
        assert_eq!(assign.tiers.len(), 2);
        assert_eq!(getmail.tiers.len(), 2);
        assert_eq!(assign.experiment, "assign-scale");
        assert!(assign.threads >= 1);
        for t in &assign.tiers {
            assert!(
                t.rho_max < 0.999,
                "tier {} left a server at the wall",
                t.label
            );
            assert!(t.total_cost > 0.0);
            assert_eq!(t.digest.len(), 16);
        }
        let smoke = &assign.tiers[1];
        assert_eq!(smoke.users, 50_000);
        assert_eq!(smoke.hosts, 1_000);
        assert_eq!(smoke.servers, 50);
    }
}
