//! Experiment C7: the §4 criteria scorecard for all three designs on a
//! common scenario.
//!
//! System 1 is measured end to end through the actor deployment; Systems
//! 2 and 3 reuse System 1's delivery fabric conceptually, so their
//! scorecards combine the measured System-1 baseline with their own
//! analytic deltas (consultation overhead, rehash-based reconfiguration,
//! group naming support) — the same way the paper argues §3.2/§3.3
//! relative to §3.1.

use lems_eval::criteria::Scorecard;
use lems_net::generators::fig1;
use lems_sim::rng::SimRng;
use lems_sim::time::{SimDuration, SimTime};
use lems_syntax::actors::{Deployment, DeploymentConfig, ServerFailurePlan};

/// Generous per-run event budget: a non-quiescing run is a livelocked
/// retry loop and aborts the experiment rather than hanging it.
const EVENT_BUDGET: u64 = 20_000_000;

use crate::locindep_exp::{mobility_sweep, reconfig_comparison};
use crate::mst_exp::c3_sweep;

/// The measured + derived scorecards.
pub fn scorecards(seed: u64) -> Vec<Scorecard> {
    let scenario = "fig1 workload, 95% server availability";

    // ---- System 1: measured through the actor pipeline. ----
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    );
    let names = d.user_names();
    let mut rng = SimRng::seed(seed).fork("scorecard");
    let horizon = 800.0;
    let plan = ServerFailurePlan::random(
        &mut rng,
        &f.topology.servers(),
        SimDuration::from_units(190.0), // availability ~0.95 with mttr 10
        SimDuration::from_units(10.0),
        SimTime::from_units(horizon),
    );
    d.apply_server_failures(&plan);

    let mut t = 1.0;
    while t < horizon - 100.0 {
        let a = rng.index(names.len());
        let mut b = rng.index(names.len());
        if b == a {
            b = (b + 1) % names.len();
        }
        d.send_at(SimTime::from_units(t), &names[a].clone(), &names[b].clone());
        t += rng.unit() * 6.0 + 1.0;
    }
    let mut t = 10.0;
    while t < horizon {
        for n in names.clone() {
            d.check_at(SimTime::from_units(t + rng.unit()), &n);
        }
        t += 50.0;
    }
    for (i, n) in names.clone().iter().enumerate() {
        d.check_at(SimTime::from_units(horizon + 100.0 + i as f64), n);
        d.check_at(SimTime::from_units(horizon + 200.0 + i as f64), n);
    }
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

    let st = d.stats.borrow();
    let submitted = st.submitted.max(1) as f64;
    let mut syntax = Scorecard::new("syntax-directed", scenario);
    syntax.efficiency.connection_attempts_mean = st.submit_attempts as f64 / submitted;
    syntax.efficiency.delivery_latency_mean = st.delivery_latency.mean();
    syntax.efficiency.end_to_end_latency_mean = st.end_to_end.mean();
    syntax.efficiency.retrieval_polls_mean = st.retrieval_polls.mean();
    syntax.efficiency.notification_rate = if st.deposited > 0 {
        st.notifications as f64 / st.deposited as f64
    } else {
        0.0
    };
    syntax.reliability.delivered_fraction = st.retrieved as f64 / submitted;
    syntax.reliability.bounced_fraction = st.bounced as f64 / submitted;
    syntax.reliability.lost_fraction = st.outstanding() as f64 / submitted;
    syntax.reliability.availability_mean = 0.95;
    syntax.flexibility.move_requires_rename = true; // §3.1.4
    syntax.flexibility.supports_group_naming = false;
    let reconfig = crate::assign_exp::add_server_reconvergence();
    syntax.flexibility.reconfig_moved_users = reconfig.moved_users;
    syntax.flexibility.reconfig_tables_touched = 3;
    syntax.cost.messages_per_delivery =
        (st.submit_attempts + st.forward_attempts + st.notifications) as f64
            / st.deposited.max(1) as f64;
    syntax.cost.total_comm_units = st.delivery_latency.mean() * st.deposited as f64;
    syntax.cost.peak_storage = st.peak_storage;
    drop(st);

    // ---- System 2: System 1 baseline + measured roaming deltas. ----
    let mut locindep = syntax.clone();
    locindep.system = "location-independent".into();
    let mob = mobility_sweep(&[0.0, 0.3], seed);
    let overhead = mob[1].mean_cost / mob[0].mean_cost.max(1e-9);
    locindep.efficiency.delivery_latency_mean *= overhead;
    locindep.efficiency.end_to_end_latency_mean *= overhead;
    locindep.flexibility.move_requires_rename = false; // the whole point
    let rcmp = reconfig_comparison(seed);
    locindep.flexibility.reconfig_moved_users = (rcmp.rehash_moved_fraction * 270.0).round() as u64;
    locindep.cost.total_comm_units *= overhead;

    // ---- System 3: attribute addressing over the MST fabric. ----
    let mut attr = syntax.clone();
    attr.system = "attribute-based".into();
    attr.flexibility.move_requires_rename = false;
    attr.flexibility.supports_group_naming = true;
    let c3 = c3_sweep(&[4], seed);
    // Broadcast delivery to a group costs the tree weight instead of one
    // unicast per recipient.
    attr.cost.total_comm_units = c3[0].mst_units;
    attr.cost.messages_per_delivery = c3[0].ghs_messages as f64 / c3[0].nodes as f64; // amortised tree build
    attr.efficiency.end_to_end_latency_mean = c3[0].completed_units;

    let cards = vec![syntax, locindep, attr];
    for c in &cards {
        c.validate().expect("scorecards must validate");
    }
    cards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_validated_scorecards() {
        let cards = scorecards(5);
        assert_eq!(cards.len(), 3);
        assert_eq!(cards[0].system, "syntax-directed");
        // The paper's no-loss claim, end to end.
        assert_eq!(cards[0].reliability.lost_fraction, 0.0);
        // System 2's defining flexibility win.
        assert!(cards[0].flexibility.move_requires_rename);
        assert!(!cards[1].flexibility.move_requires_rename);
        // System 3 is the only one with group naming.
        assert!(cards[2].flexibility.supports_group_naming);
    }

    #[test]
    fn retrieval_polls_near_one() {
        let cards = scorecards(6);
        let polls = cards[0].efficiency.retrieval_polls_mean;
        assert!(
            polls < 2.0,
            "polls per retrieval should stay near 1, got {polls}"
        );
    }
}
