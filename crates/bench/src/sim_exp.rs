//! Experiment SIM: sim-kernel throughput — the calendar-queue hot path
//! against the pre-refactor ordered-map kernel, and the sharded dispatcher's
//! thread scaling, behind the committed `BENCH_sim.json`.
//!
//! Three tier families:
//!
//! * **hold** — the classic hold model run directly on [`EventQueue`]: a
//!   large steady pending set where every pop is followed by a push at
//!   `popped + jitter`. This isolates the future-event list, which is where
//!   the kernel refactor claims its win; both backends must produce the
//!   identical `(time, seq)` pop stream (asserted via digest) so the
//!   speedup is measured over byte-identical work.
//! * **actor** — the same comparison end-to-end through [`ActorSim`]
//!   dispatch (boxed handlers, FIFO lanes, counters), calendar vs the
//!   retained baseline queue.
//! * **shard** — [`ShardedSim`] under compute-heavy handlers on wide
//!   same-instant batches at 1, 2, and 8 threads; every thread count must
//!   digest identically (asserted) — the scaling numbers are only
//!   meaningful because the work is proven to be the same.

use std::time::Instant;

use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx};
use lems_sim::queue::EventQueue;
use lems_sim::shard::ShardedSim;
use lems_sim::time::{SimDuration, SimTime};

use crate::emit::{SimBench, SimTier, BENCH_SCHEMA_VERSION};

/// One hold-model tier of the kernel experiment.
#[derive(Clone, Copy, Debug)]
pub struct HoldTierSpec {
    /// Tier label carried into `BENCH_sim.json`.
    pub label: &'static str,
    /// Steady pending-event population.
    pub pending: usize,
    /// Total pop+push cycles measured.
    pub events: u64,
    /// Reschedule delay range in ticks: each pop pushes back at
    /// `popped + 1 + U(0, spread)`. Small spreads pack many events per
    /// instant; large spreads give the classic sparse hold model.
    pub spread: u64,
}

/// One actor-dispatch tier (calendar vs baseline queue, end to end).
#[derive(Clone, Copy, Debug)]
pub struct ActorTierSpec {
    /// Tier label.
    pub label: &'static str,
    /// Actors in the mesh.
    pub actors: usize,
    /// Messages kept in flight.
    pub in_flight: u64,
    /// Event budget per run.
    pub events: u64,
}

/// One sharded-dispatch tier.
#[derive(Clone, Copy, Debug)]
pub struct ShardTierSpec {
    /// Tier label.
    pub label: &'static str,
    /// Actors sharing each instant.
    pub actors: usize,
    /// Event budget per run.
    pub events: u64,
    /// Thread counts to measure (each must digest identically).
    pub threads: &'static [usize],
}

/// The CI smoke ladder: small enough for the gate job, large enough
/// (hundreds of milliseconds) that scheduler jitter cannot masquerade as a
/// regression.
pub fn smoke_hold_tiers() -> Vec<HoldTierSpec> {
    vec![HoldTierSpec {
        label: "hold-smoke-1m",
        pending: 50_000,
        events: 1_000_000,
        spread: 100_000,
    }]
}

/// The full committed hold ladder: a million-pending sparse tier, a
/// duplicate-heavy tier where thousands of events share each instant, and
/// the deep tier behind the headline speedup claim — 32 million pending
/// events, where the ordered map pays a ~25-level descent with cold nodes
/// per operation while the calendar's per-event work stays flat.
pub fn full_hold_tiers() -> Vec<HoldTierSpec> {
    let mut tiers = smoke_hold_tiers();
    tiers.push(HoldTierSpec {
        label: "hold-10m",
        pending: 1_000_000,
        events: 10_000_000,
        spread: 2_000_000,
    });
    tiers.push(HoldTierSpec {
        label: "hold-10m-dense",
        pending: 500_000,
        events: 10_000_000,
        spread: 1_000,
    });
    tiers.push(HoldTierSpec {
        label: "hold-10m-deep",
        pending: 32_000_000,
        events: 10_000_000,
        spread: 12_000,
    });
    tiers
}

/// Smoke actor tier.
pub fn smoke_actor_tiers() -> Vec<ActorTierSpec> {
    vec![ActorTierSpec {
        label: "actor-smoke-500k",
        actors: 64,
        in_flight: 4_096,
        events: 500_000,
    }]
}

/// The tier the `--prof-gate` overhead measurement runs on: the smoke
/// actor mesh scaled to a quarter-second wall time, so the min-of-N
/// statistic is measuring profiler cost rather than scheduler noise (at
/// the 65ms smoke scale, runner jitter alone spans several percent).
pub fn prof_gate_tier() -> ActorTierSpec {
    ActorTierSpec {
        label: "actor-prof-gate-2m",
        actors: 64,
        in_flight: 4_096,
        events: 2_000_000,
    }
}

/// Full actor ladder.
pub fn full_actor_tiers() -> Vec<ActorTierSpec> {
    let mut tiers = smoke_actor_tiers();
    tiers.push(ActorTierSpec {
        label: "actor-10m",
        actors: 256,
        in_flight: 65_536,
        events: 10_000_000,
    });
    tiers
}

/// Smoke sharded tier.
pub fn smoke_shard_tiers() -> Vec<ShardTierSpec> {
    vec![ShardTierSpec {
        label: "shard-smoke-100k",
        actors: 64,
        events: 100_000,
        threads: &[1, 2],
    }]
}

/// Full sharded ladder.
pub fn full_shard_tiers() -> Vec<ShardTierSpec> {
    vec![ShardTierSpec {
        label: "shard-2m",
        actors: 256,
        events: 2_000_000,
        threads: &[1, 2, 8],
    }]
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

fn per_sec(events: u64, wall_ms: f64) -> f64 {
    if wall_ms > 0.0 {
        events as f64 / (wall_ms / 1_000.0)
    } else {
        f64::INFINITY
    }
}

/// Repetitions per measurement: every tier keeps the minimum wall time
/// over three runs. With process-isolated hold measurements the heap
/// layout is reproducible run to run, so min-of-3 only has to absorb
/// external interference (scheduler preemption, other tenants).
fn reps_for(_events: u64) -> u32 {
    3
}

/// Hold tiers with multi-gigabyte pending sets get two extra repetitions:
/// their timed cycle is one long cold-memory walk, maximally exposed to
/// neighboring tenants' memory traffic, and the minimum needs more draws
/// to converge there.
fn hold_reps_for(spec: &HoldTierSpec) -> u32 {
    if spec.pending >= 8_000_000 {
        5
    } else {
        reps_for(spec.events)
    }
}

/// Peak resident set of this process so far, in KiB (`VmHWM`), or 0 where
/// `/proc` is unavailable. One monotonic value per process: record it once,
/// after the largest tier has run.
pub fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Deterministic tick jitter: a 64-bit LCG (Knuth's MMIX constants), folded
/// to a bounded delay.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state
}

// ---------------------------------------------------------------------------
// Hold model: the queue in isolation.
// ---------------------------------------------------------------------------

/// A realistic event footprint: the kernel's own `Ev<M>` (discriminant,
/// actor ids, a message payload) is this order of magnitude, not a bare
/// integer. Payload size is where the two backends differ structurally —
/// the ordered map copies payloads through every node shift and split,
/// the calendar writes each into a pool slot exactly once.
#[derive(Clone, Copy)]
struct HoldEvent([u64; 8]);

/// One hold run: fills `pending` events, then cycles pop→push `events`
/// times. Returns the wall time and an FNV digest of the complete
/// `(ticks, seq)` pop stream.
fn hold_run(mut q: EventQueue<HoldEvent>, spec: &HoldTierSpec, seed: u64) -> (f64, u64) {
    let mut rng = seed;
    for i in 0..spec.pending as u64 {
        q.push(
            SimTime::from_ticks(1 + lcg(&mut rng) % spec.spread),
            HoldEvent([i; 8]),
        );
    }
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let t0 = Instant::now();
    for i in 0..spec.events {
        let (at, seq, ev) = q.pop_with_seq().expect("pending set never empties");
        digest ^= at.as_ticks();
        digest = digest.wrapping_mul(0x1000_0000_01b3);
        digest ^= seq.0;
        digest = digest.wrapping_mul(0x1000_0000_01b3);
        q.push(
            SimTime::from_ticks(at.as_ticks() + 1 + lcg(&mut rng) % spec.spread),
            HoldEvent([i.wrapping_add(ev.0[0]); 8]),
        );
    }
    (ms(t0), digest)
}

/// One hold measurement in this process: fill + timed cycle on a fresh
/// queue. Returns wall time, pop-stream digest, and the process's peak
/// RSS so far in KiB.
fn hold_measure_in_process(spec: &HoldTierSpec, engine: &str, seed: u64) -> (f64, u64, u64) {
    let q = if engine == "calendar" {
        EventQueue::with_capacity(spec.pending)
    } else {
        EventQueue::baseline()
    };
    let (wall, digest) = hold_run(q, spec, seed);
    (wall, digest, peak_rss_kib())
}

/// Environment handshake for process-isolated hold measurements:
/// `engine:pending:events:spread:seed`.
pub const HOLD_CHILD_ENV: &str = "LEMS_SIM_HOLD_CHILD";

/// Child-process hook for binaries that use [`run_hold_tier_isolated`]:
/// when the handshake variable is present, this process was spawned by a
/// parent bench run — perform the single requested measurement, print
/// `wall_ms digest rss_kib` on stdout, and return `true` so the caller
/// exits before running its own suite.
pub fn hold_child_main() -> bool {
    let Ok(v) = std::env::var(HOLD_CHILD_ENV) else {
        return false;
    };
    let mut parts = v.split(':');
    let engine = parts.next().unwrap_or_default().to_owned();
    let mut num = || -> u64 {
        parts
            .next()
            .and_then(|s| s.parse().ok())
            .expect("malformed hold-child handshake")
    };
    let spec = HoldTierSpec {
        label: "child",
        pending: num() as usize,
        events: num(),
        spread: num(),
    };
    let seed = num();
    let (wall, digest, rss) = hold_measure_in_process(&spec, &engine, seed);
    println!("{wall:.6} {digest} {rss}");
    true
}

/// One process-isolated hold measurement: re-executes the current binary
/// with the [`HOLD_CHILD_ENV`] handshake so the fill + timed cycle runs on
/// a pristine heap. In-process repetitions contaminate each other through
/// recycled allocator pages — whichever engine runs *later* rebuilds its
/// multi-gigabyte structure over pages the earlier one already faulted in,
/// and min-of-N then reports that engine's warmed reps (worth ~20% to the
/// ordered map at the deep tier). A fresh process per measurement makes
/// both engines equally cold and the heap layout reproducible. Requires
/// the calling binary to invoke [`hold_child_main`] before anything else.
fn hold_measure_isolated(spec: &HoldTierSpec, engine: &str, seed: u64) -> (f64, u64, u64) {
    let exe = std::env::current_exe().expect("resolve current executable");
    let out = std::process::Command::new(exe)
        .env(
            HOLD_CHILD_ENV,
            format!(
                "{engine}:{}:{}:{}:{seed}",
                spec.pending, spec.events, spec.spread
            ),
        )
        .stderr(std::process::Stdio::inherit())
        .output()
        .expect("spawn hold measurement child");
    assert!(
        out.status.success(),
        "hold child failed — does the calling binary run hold_child_main()?"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let mut it = text.split_whitespace();
    let wall: f64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .expect("child wall time");
    let digest: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .expect("child digest");
    let rss: u64 = it.next().and_then(|s| s.parse().ok()).expect("child rss");
    (wall, digest, rss)
}

/// Runs one hold tier on both backends (`calendar` first, then
/// `baseline`), asserting the pop streams are byte-identical. `measure`
/// supplies each repetition's wall time, digest, and peak RSS; the tier
/// keeps the minimum wall time, and the largest RSS any measurement saw is
/// returned alongside the tiers.
fn hold_tier_with(
    spec: &HoldTierSpec,
    seed: u64,
    mut measure: impl FnMut(&HoldTierSpec, &str, u64) -> (f64, u64, u64),
) -> (Vec<SimTier>, u64) {
    let mut out = Vec::new();
    let mut digests = Vec::new();
    let mut max_rss = 0u64;
    for engine in ["calendar", "baseline"] {
        let mut best: Option<(f64, u64)> = None;
        for _ in 0..hold_reps_for(spec) {
            let (wall, digest, rss) = measure(spec, engine, seed);
            max_rss = max_rss.max(rss);
            best = Some(match best {
                None => (wall, digest),
                Some((w, d)) => {
                    assert_eq!(d, digest, "hold runs are deterministic");
                    (w.min(wall), d)
                }
            });
        }
        let (wall_ms, digest) = best.expect("at least one repetition runs");
        digests.push(digest);
        out.push(SimTier {
            label: spec.label.to_owned(),
            engine: engine.to_owned(),
            threads: 1,
            pending: spec.pending as u64,
            actors: 0,
            events: spec.events,
            wall_ms,
            events_per_sec: per_sec(spec.events, wall_ms),
            digest: format!("{digest:#018x}"),
        });
    }
    assert_eq!(
        digests[0], digests[1],
        "{}: calendar and baseline pop streams must be byte-identical",
        spec.label
    );
    (out, max_rss)
}

/// In-process hold tier: every repetition shares this process's heap.
/// Used by tests and oracles; the committed bench numbers come from
/// [`run_hold_tier_isolated`] instead.
pub fn run_hold_tier(spec: &HoldTierSpec, seed: u64) -> Vec<SimTier> {
    hold_tier_with(spec, seed, hold_measure_in_process).0
}

/// Process-isolated hold tier: each repetition of each engine runs in a
/// fresh child process (see [`hold_measure_isolated`]). Returns the tiers
/// plus the largest peak RSS any child reported.
pub fn run_hold_tier_isolated(spec: &HoldTierSpec, seed: u64) -> (Vec<SimTier>, u64) {
    hold_tier_with(spec, seed, hold_measure_isolated)
}

// ---------------------------------------------------------------------------
// Actor dispatch: the kernel end to end.
// ---------------------------------------------------------------------------

/// Forwards every ball to an arithmetically chosen peer with a small
/// quantized delay — pure queue-and-dispatch churn, no per-event state
/// growth.
struct Forwarder {
    n: usize,
}

impl Actor for Forwarder {
    type Msg = u64;
    fn on_message(&mut self, _from: ActorId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().0 as u64;
        let to = ActorId(((me + 1 + (msg % 13)) as usize) % self.n);
        ctx.send(
            to,
            msg.wrapping_mul(31).wrapping_add(me),
            SimDuration::from_ticks(3 + msg % 5),
        );
    }
}

fn actor_run(sim: &mut ActorSim<u64>, spec: &ActorTierSpec) -> (f64, u64) {
    for _ in 0..spec.actors {
        sim.add_actor(Forwarder { n: spec.actors });
    }
    let mut rng = 0x5eed_5eed_5eed_5eed_u64;
    for b in 0..spec.in_flight {
        let to = ActorId((b % spec.actors as u64) as usize);
        sim.inject(to, lcg(&mut rng), SimDuration::from_ticks(1 + b % 7));
    }
    let t0 = Instant::now();
    let quiesced = sim.run_to_quiescence_bounded(spec.events);
    let wall = ms(t0);
    assert!(
        !quiesced,
        "forwarding traffic must keep the budget saturated"
    );
    (wall, sim.counters().delivered.get())
}

/// Runs one actor tier end to end on both kernels, asserting equal
/// delivery counts (the workloads are identical by construction).
pub fn run_actor_tier(spec: &ActorTierSpec, seed: u64) -> Vec<SimTier> {
    let mut out = Vec::new();
    let mut delivered_seen = Vec::new();
    for engine in ["calendar", "baseline"] {
        let mut best: Option<(f64, u64)> = None;
        for _ in 0..reps_for(spec.events) {
            let mut sim = if engine == "calendar" {
                ActorSim::new(seed)
            } else {
                ActorSim::new_with_baseline_queue(seed)
            };
            let (wall, delivered) = actor_run(&mut sim, spec);
            best = Some(match best {
                None => (wall, delivered),
                Some((w, d)) => {
                    assert_eq!(d, delivered, "actor runs are deterministic");
                    (w.min(wall), d)
                }
            });
        }
        let (wall_ms, delivered) = best.expect("at least one repetition runs");
        delivered_seen.push(delivered);
        out.push(SimTier {
            label: spec.label.to_owned(),
            engine: engine.to_owned(),
            threads: 1,
            pending: spec.in_flight,
            actors: spec.actors as u64,
            events: delivered,
            wall_ms,
            events_per_sec: per_sec(delivered, wall_ms),
            digest: format!("{delivered:#018x}"),
        });
    }
    assert_eq!(
        delivered_seen[0], delivered_seen[1],
        "{}: both kernels must process identical workloads",
        spec.label
    );
    out
}

/// One paired profiling-overhead measurement: the same actor tier timed
/// with the kernel profiler off and on.
#[derive(Clone, Copy, Debug)]
pub struct ProfOverhead {
    /// Tier the measurement ran on.
    pub label: &'static str,
    /// Min-of-N wall time with profiling off, in milliseconds.
    pub off_ms: f64,
    /// Min-of-N wall time with profiling on, in milliseconds.
    pub on_ms: f64,
    /// Best paired ratio minus one: each repetition times off and on
    /// back to back and contributes `on/off`; the minimum ratio across
    /// repetitions is the estimate least polluted by background load
    /// (a spike inflates one side of *some* pair, not every pair).
    /// Negative when jitter favours the profiled run.
    pub overhead_frac: f64,
    /// Events the profiler attributed in the profiled runs.
    pub dispatches: u64,
}

/// Measures the kernel profiler's overhead on one actor tier: min-of-N
/// wall time with profiling off vs on, over workloads asserted identical
/// (same delivered count and final clock — the profiler's
/// zero-perturbation contract, pinned independently by
/// `crates/sim/tests/prof_digest.rs`).
///
/// # Panics
///
/// Panics when the profiled and unprofiled runs diverge in delivered
/// count or final sim time — that would mean profiling perturbed the run,
/// which is a kernel bug, not a measurement artifact.
pub fn measure_prof_overhead(spec: &ActorTierSpec, seed: u64, reps: u32) -> ProfOverhead {
    let mut best = [f64::INFINITY; 2];
    let mut best_ratio = f64::INFINITY;
    let mut outcome: [Option<(u64, u64)>; 2] = [None, None];
    let mut dispatches = 0u64;
    // Each repetition times off and on back to back, so background load
    // has to persist across a whole pair to bias its ratio; the gate then
    // reads the *minimum* paired ratio, which a transient spike cannot
    // inflate.
    for _ in 0..reps.max(1) {
        let mut pair = [0.0f64; 2];
        for (i, prof) in [false, true].into_iter().enumerate() {
            let mut sim = ActorSim::new(seed);
            if prof {
                sim.enable_prof();
            }
            let (wall, delivered) = actor_run(&mut sim, spec);
            pair[i] = wall;
            best[i] = best[i].min(wall);
            let fp = (delivered, sim.now().as_ticks());
            match outcome[i] {
                None => outcome[i] = Some(fp),
                Some(prev) => assert_eq!(prev, fp, "reps are deterministic"),
            }
            if prof {
                dispatches = sim.prof().dispatches();
            }
        }
        best_ratio = best_ratio.min(pair[1] / pair[0].max(f64::MIN_POSITIVE));
    }
    assert_eq!(
        outcome[0], outcome[1],
        "{}: profiling must not perturb the run",
        spec.label
    );
    ProfOverhead {
        label: spec.label,
        off_ms: best[0],
        on_ms: best[1],
        overhead_frac: best_ratio - 1.0,
        dispatches,
    }
}

// ---------------------------------------------------------------------------
// Sharded dispatch: thread scaling on compute-heavy wide instants.
// ---------------------------------------------------------------------------

/// ~a microsecond of real per-event work — the regime the sharded engine
/// exists for, where handler compute dwarfs queue bookkeeping. An FNV
/// chain the optimizer cannot elide because the result routes the next
/// hop.
fn spin(mut x: u64) -> u64 {
    for _ in 0..512 {
        x ^= x >> 33;
        x = x.wrapping_mul(0x1000_0000_01b3);
    }
    x
}

/// Compute-heavy forwarder on a grid-quantized delay lattice, so every
/// instant carries a wide batch for the sharded engine to fan out.
struct Cruncher {
    n: usize,
    acc: u64,
}

impl Actor for Cruncher {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().0 as u64;
        for k in 1..=8u64 {
            ctx.send(
                ActorId(((me + k) as usize) % self.n),
                me.wrapping_mul(k),
                SimDuration::from_ticks(250_000 * (1 + (me + k) % 4)),
            );
        }
    }
    fn on_message(&mut self, _from: ActorId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        let hashed = spin(msg);
        self.acc ^= hashed;
        let me = ctx.me().0 as u64;
        let to = ActorId(((me + 1 + hashed % 11) as usize) % self.n);
        ctx.send(
            to,
            hashed,
            SimDuration::from_ticks(250_000 * (1 + hashed % 4)),
        );
    }
}

fn shard_run(spec: &ShardTierSpec, seed: u64, threads: usize) -> (f64, u64, u64) {
    let mut sim: ShardedSim<u64> = ShardedSim::new(seed, threads);
    sim.enable_trace(1 << 16);
    for _ in 0..spec.actors {
        sim.add_actor(Cruncher {
            n: spec.actors,
            acc: 0,
        });
    }
    let t0 = Instant::now();
    let quiesced = sim.run_to_quiescence_bounded(spec.events);
    let wall = ms(t0);
    assert!(
        !quiesced,
        "forwarding traffic must keep the budget saturated"
    );
    let delivered = sim.counters().delivered.get();
    let digest = sim.trace().digest();
    (wall, delivered, digest)
}

/// Runs one sharded tier at every configured thread count, asserting the
/// trace digests are identical across counts.
pub fn run_shard_tier(spec: &ShardTierSpec, seed: u64) -> Vec<SimTier> {
    let mut out = Vec::new();
    let mut pinned: Option<u64> = None;
    for &threads in spec.threads {
        let mut best: Option<(f64, u64, u64)> = None;
        for _ in 0..reps_for(spec.events) {
            let (wall, delivered, digest) = shard_run(spec, seed, threads);
            best = Some(match best {
                None => (wall, delivered, digest),
                Some((w, d, g)) => {
                    assert_eq!(g, digest, "sharded runs are deterministic");
                    (w.min(wall), d, g)
                }
            });
        }
        let (wall_ms, delivered, digest) = best.expect("at least one repetition runs");
        match pinned {
            None => pinned = Some(digest),
            Some(p) => assert_eq!(
                p, digest,
                "{}: {threads} thread(s) diverged from the 1-thread digest",
                spec.label
            ),
        }
        out.push(SimTier {
            label: spec.label.to_owned(),
            engine: format!("sharded-{threads}"),
            threads,
            pending: 0,
            actors: spec.actors as u64,
            events: delivered,
            wall_ms,
            events_per_sec: per_sec(delivered, wall_ms),
            digest: format!("{digest:#018x}"),
        });
    }
    out
}

/// Runs the given ladders and assembles the `BENCH_sim.json` document.
///
/// With `isolate_hold`, every hold repetition runs in a fresh child
/// process (the calling binary must run [`hold_child_main`] first thing);
/// `peak_rss_kib` then covers the children too. Without it, hold tiers run
/// in-process — fine for tests, too contaminated for committed numbers.
pub fn run_suite(
    hold: &[HoldTierSpec],
    actor: &[ActorTierSpec],
    shard: &[ShardTierSpec],
    seed: u64,
    isolate_hold: bool,
) -> SimBench {
    let mut tiers = Vec::new();
    let mut child_rss = 0u64;
    for spec in hold {
        let (t, rss) = if isolate_hold {
            run_hold_tier_isolated(spec, seed)
        } else {
            (run_hold_tier(spec, seed), 0)
        };
        child_rss = child_rss.max(rss);
        tiers.extend(t);
    }
    for spec in actor {
        tiers.extend(run_actor_tier(spec, seed));
    }
    for spec in shard {
        tiers.extend(run_shard_tier(spec, seed));
    }
    SimBench {
        schema_version: BENCH_SCHEMA_VERSION,
        experiment: "sim-kernel".to_owned(),
        seed,
        peak_rss_kib: peak_rss_kib().max(child_rss),
        tiers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_tier_pins_identical_pop_streams() {
        let spec = HoldTierSpec {
            label: "test-hold",
            pending: 2_000,
            events: 20_000,
            spread: 5_000,
        };
        let tiers = run_hold_tier(&spec, 7);
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[0].engine, "calendar");
        assert_eq!(tiers[1].engine, "baseline");
        assert_eq!(tiers[0].digest, tiers[1].digest);
        assert_eq!(tiers[0].events, 20_000);
        assert!(tiers[0].events_per_sec > 0.0);
    }

    #[test]
    fn actor_tier_processes_identical_workloads() {
        let spec = ActorTierSpec {
            label: "test-actor",
            actors: 8,
            in_flight: 64,
            events: 10_000,
        };
        let tiers = run_actor_tier(&spec, 7);
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[0].events, tiers[1].events);
        assert!(tiers[0].events >= 10_000);
    }

    #[test]
    fn prof_overhead_measurement_is_sane() {
        let spec = ActorTierSpec {
            label: "test-prof",
            actors: 8,
            in_flight: 64,
            events: 10_000,
        };
        let o = measure_prof_overhead(&spec, 7, 2);
        assert!(o.off_ms > 0.0 && o.on_ms > 0.0);
        assert!(o.dispatches >= 10_000, "profiler saw the whole run");
        assert!(o.overhead_frac.is_finite());
    }

    #[test]
    fn shard_tier_digests_are_thread_invariant() {
        let spec = ShardTierSpec {
            label: "test-shard",
            actors: 16,
            events: 5_000,
            threads: &[1, 2, 8],
        };
        let tiers = run_shard_tier(&spec, 7);
        assert_eq!(tiers.len(), 3);
        assert_eq!(tiers[0].digest, tiers[1].digest);
        assert_eq!(tiers[1].digest, tiers[2].digest);
        assert_eq!(tiers[2].engine, "sharded-8");
    }

    #[test]
    fn rss_probe_reports_something_on_linux() {
        // On Linux the probe must find VmHWM; elsewhere 0 is acceptable.
        let kib = peak_rss_kib();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(kib > 0, "VmHWM should be present and non-zero");
        }
    }
}
