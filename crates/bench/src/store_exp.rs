//! Experiment D1: the durability tax — deposits/sec, crash-recovery time,
//! and drain throughput for the fiat-stable in-memory backend against the
//! per-record-synced WAL backend, behind the committed `BENCH_store.json`.
//!
//! Each tier deposits a deterministic workload into one server's store,
//! crashes it, recovers it (log replay for the WAL), and destructively
//! drains every mailbox — asserting that *every* acked deposit comes back.
//! The WAL tier is sized so segment rotation and chunked compaction both
//! run inside the measurement window; wall times are the only
//! non-deterministic outputs.

use std::time::Instant;

use lems_core::message::{Message, MessageId};
use lems_core::name::MailName;
use lems_core::store::{MailStore, StoreMetrics};
use lems_sim::time::SimTime;
use lems_store::{make_store, DurabilityConfig, WalConfig};

use crate::emit::{StoreBench, StoreTier, BENCH_SCHEMA_VERSION};

/// One size tier of the durability experiment.
#[derive(Clone, Copy, Debug)]
pub struct StoreTierSpec {
    /// Tier label carried into `BENCH_store.json`.
    pub label: &'static str,
    /// Distinct mailboxes the workload spreads over.
    pub users: usize,
    /// Messages deposited.
    pub messages: u64,
}

/// The CI smoke ladder: one tier, small enough for the gate job yet big
/// enough (hundreds of milliseconds per backend) that scheduler jitter
/// cannot masquerade as a regression.
pub fn smoke_tiers() -> Vec<StoreTierSpec> {
    vec![StoreTierSpec {
        label: "smoke-100k",
        users: 1_000,
        messages: 100_000,
    }]
}

/// The full committed ladder, up to the paper's million-message scale.
pub fn full_tiers() -> Vec<StoreTierSpec> {
    let mut tiers = smoke_tiers();
    tiers.push(StoreTierSpec {
        label: "1m",
        users: 1_000,
        messages: 1_000_000,
    });
    tiers
}

/// WAL sized for the tier: roughly eight segment rotations per run, so
/// rotation and compaction are exercised at every size without compaction
/// (which rewrites the live state) turning the tier quadratic.
fn wal_cfg(messages: u64) -> WalConfig {
    WalConfig {
        segment_bytes: (messages * 160 / 8).max(64 * 1024),
        ..WalConfig::default()
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Runs one tier against both backends (`mem` first, then `wal`).
pub fn run_tier(spec: &StoreTierSpec, seed: u64) -> Vec<StoreTier> {
    vec![
        run_backend(spec, seed, "mem", || make_store(&DurabilityConfig::Ideal)),
        run_backend(spec, seed, "wal", || {
            make_store(&DurabilityConfig::Wal(wal_cfg(spec.messages)))
        }),
    ]
}

/// Repetitions per measurement: the small tiers finish in tens of
/// milliseconds, where scheduler noise on a shared runner is a large
/// fraction of the signal, so we keep the minimum over three runs; the
/// million-message tier is long enough to measure once.
fn reps_for(messages: u64) -> u32 {
    if messages <= 100_000 {
        3
    } else {
        1
    }
}

fn run_backend(
    spec: &StoreTierSpec,
    seed: u64,
    backend: &str,
    make: impl Fn() -> Box<dyn MailStore>,
) -> StoreTier {
    let mut best: Option<StoreTier> = None;
    for _ in 0..reps_for(spec.messages) {
        let (tier, _) = run_backend_once(spec, seed, backend, make());
        best = Some(match best {
            None => tier,
            Some(prev) => StoreTier {
                deposit_ms: prev.deposit_ms.min(tier.deposit_ms),
                deposits_per_sec: prev.deposits_per_sec.max(tier.deposits_per_sec),
                recovery_ms: prev.recovery_ms.min(tier.recovery_ms),
                drain_ms: prev.drain_ms.min(tier.drain_ms),
                ..prev
            },
        });
    }
    best.expect("at least one repetition runs")
}

fn run_backend_once(
    spec: &StoreTierSpec,
    seed: u64,
    backend: &str,
    mut store: Box<dyn MailStore>,
) -> (StoreTier, StoreMetrics) {
    let users: Vec<MailName> = (0..spec.users)
        .map(|u| {
            MailName::new("r0", &format!("h{}", u % 31), &format!("u{u}"))
                .expect("generated names are well-formed")
        })
        .collect();

    let t0 = Instant::now();
    for i in 0..spec.messages {
        let slot = usize::try_from(i).expect("tier sizes fit usize");
        let at = SimTime::from_units(i as f64);
        let msg = Message {
            id: MessageId(i),
            from: users[(slot + 1) % users.len()].clone(),
            to: users[slot % users.len()].clone(),
            subject: "bench".into(),
            body: format!("durability workload {seed}/{i}"),
            submitted_at: at,
        };
        assert!(store.deposit(msg, at), "workload ids are unique");
    }
    let deposit_ms = ms(t0);
    let wal_bytes = store.wal_bytes();

    // Crash at the end of the workload, then time recovery (for the WAL
    // this is a full log replay; for fiat-stable RAM it is a no-op).
    let crash_at = SimTime::from_units(spec.messages as f64);
    let t0 = Instant::now();
    store.crash(crash_at);
    let report = store.recover(crash_at);
    let recovery_ms = ms(t0);
    assert_eq!(
        report.lost_messages, 0,
        "{}/{backend}: acked deposits must survive the crash",
        spec.label
    );

    let t0 = Instant::now();
    let mut drained = 0u64;
    for owner in &users {
        drained += store.drain_destructive(owner).len() as u64;
    }
    let drain_ms = ms(t0);
    assert_eq!(
        drained, spec.messages,
        "{}/{backend}: every deposit drains back after recovery",
        spec.label
    );

    let tier = StoreTier {
        label: spec.label.to_owned(),
        backend: backend.to_owned(),
        users: spec.users,
        messages: spec.messages,
        deposit_ms,
        deposits_per_sec: if deposit_ms > 0.0 {
            spec.messages as f64 / (deposit_ms / 1_000.0)
        } else {
            f64::INFINITY
        },
        recovery_ms,
        replayed_records: report.replayed_records,
        recovered_messages: report.recovered_messages,
        drain_ms,
        wal_bytes,
    };
    (tier, store.store_metrics())
}

/// Runs the WAL workload of `spec` once — deposit, crash, recover,
/// drain — and returns the backend's lifetime health counters (fsyncs,
/// rotations, compaction chunks, replay scan work): the same counters a
/// durable deployment exports as a schema-v3 `Metrics` line, here made
/// visible in the benchmark report.
pub fn wal_health(spec: &StoreTierSpec, seed: u64) -> StoreMetrics {
    let store = make_store(&DurabilityConfig::Wal(wal_cfg(spec.messages)));
    run_backend_once(spec, seed, "wal", store).1
}

/// Runs the given ladder and assembles the `BENCH_store.json` document.
pub fn run_suite(tiers: &[StoreTierSpec], seed: u64) -> StoreBench {
    StoreBench {
        schema_version: BENCH_SCHEMA_VERSION,
        experiment: "store-durability".to_owned(),
        seed,
        tiers: tiers.iter().flat_map(|t| run_tier(t, seed)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_measures_both_backends() {
        let spec = StoreTierSpec {
            label: "test-1k",
            users: 20,
            messages: 1_000,
        };
        let tiers = run_tier(&spec, 7);
        assert_eq!(tiers.len(), 2);
        let (mem, wal) = (&tiers[0], &tiers[1]);
        assert_eq!(mem.backend, "mem");
        assert_eq!(wal.backend, "wal");
        // The asserts inside run_backend already proved zero loss; the
        // document-level contract is that the WAL actually logged and
        // replayed while RAM did neither.
        assert_eq!(mem.replayed_records, 0);
        assert_eq!(mem.wal_bytes, 0);
        assert!(wal.replayed_records > 0);
        assert!(wal.wal_bytes > 0);
        assert_eq!(wal.recovered_messages, 1_000);
    }

    #[test]
    fn wal_health_counters_reflect_the_workload() {
        let spec = StoreTierSpec {
            label: "test-1k",
            users: 20,
            messages: 1_000,
        };
        let m = wal_health(&spec, 7);
        // Per-record sync: at least one fsync per deposit, plus the
        // rotation/compaction syncs the segment sizing guarantees. The
        // append count exceeds the deposit count because destructive
        // drains are themselves logged.
        assert!(
            m.appended_records >= 1_000,
            "{} appends",
            m.appended_records
        );
        assert!(m.appended_bytes > 0);
        assert!(
            m.fsyncs >= 1_000,
            "per-record durability: {} fsyncs",
            m.fsyncs
        );
        assert!(m.rotations > 0, "segment rotation must run in-window");
        assert!(m.replayed_records > 0, "recovery must scan the log");
        assert!(m.replayed_bytes > 0);
        assert_eq!(m.io_errors, 0);
    }

    #[test]
    fn suite_orders_tiers_mem_before_wal() {
        let doc = run_suite(
            &[StoreTierSpec {
                label: "t",
                users: 5,
                messages: 100,
            }],
            3,
        );
        assert_eq!(doc.experiment, "store-durability");
        let pairs: Vec<(&str, &str)> = doc
            .tiers
            .iter()
            .map(|t| (t.label.as_str(), t.backend.as_str()))
            .collect();
        assert_eq!(pairs, vec![("t", "mem"), ("t", "wal")]);
    }
}
