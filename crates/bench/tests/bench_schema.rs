//! Golden-schema tests for the committed `BENCH_assign.json` /
//! `BENCH_getmail.json` documents at the repository root: the files must
//! deserialize into the current [`lems_bench::emit`] types, carry the
//! current schema version and the expected tiers, and survive a
//! serde round trip — so the emitter and the committed baselines (which
//! CI's perf gate compares against) can never silently drift apart.

use std::fs;
use std::path::PathBuf;

use lems_bench::emit::{AssignBench, GetMailBench, SimBench, StoreBench, BENCH_SCHEMA_VERSION};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(name: &str) -> String {
    let path = repo_root().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn committed_assign_bench_matches_schema() {
    let doc: AssignBench = serde_json::from_str(&read("BENCH_assign.json"))
        .expect("BENCH_assign.json must deserialize into emit::AssignBench");
    assert_eq!(doc.schema_version, BENCH_SCHEMA_VERSION);
    assert_eq!(doc.experiment, "assign-scale");
    assert!(doc.threads >= 1);
    assert!(!doc.tiers.is_empty(), "need at least one tier");

    let labels: Vec<&str> = doc.tiers.iter().map(|t| t.label.as_str()).collect();
    // The committed baseline is the full ladder; the CI smoke run gates
    // against the tiers it shares with it.
    for required in ["fig1", "smoke-50k", "1m"] {
        assert!(labels.contains(&required), "missing tier {required}");
    }

    for t in &doc.tiers {
        assert!(t.users > 0 && t.hosts > 0 && t.servers > 0, "{}", t.label);
        assert!(
            t.sync_ms >= 0.0 && t.par_ms >= 0.0 && t.matrix_build_ms >= 0.0,
            "{}: negative wall time",
            t.label
        );
        assert!(
            t.passes >= 1,
            "{}: solver must run at least one pass",
            t.label
        );
        assert!(
            (0.0..1.0).contains(&t.rho_max),
            "{}: rho_max {} out of range",
            t.label,
            t.rho_max
        );
        assert!(
            t.rho_spread >= 0.0 && t.rho_spread <= t.rho_max,
            "{}",
            t.label
        );
        assert!(
            t.total_cost.is_finite() && t.total_cost > 0.0,
            "{}",
            t.label
        );
        assert_eq!(
            t.digest.len(),
            16,
            "{}: digest must be a 16-hex-digit FNV-1a fingerprint",
            t.label
        );
        assert!(
            t.digest.chars().all(|c| c.is_ascii_hexdigit()),
            "{}: digest not hex",
            t.label
        );
    }

    let m = doc.tiers.iter().find(|t| t.label == "1m").expect("1m tier");
    assert_eq!(m.users, 1_000_000);
    assert_eq!(m.hosts, 10_000);
    assert_eq!(m.servers, 500);
    assert!(
        m.classic_ms.is_none(),
        "the classic solver is not run at the million-user tier"
    );

    // Round trip: emitter output re-parses to an identical document.
    let doc2: AssignBench = serde_json::from_str(&doc.to_json()).expect("round trip");
    assert_eq!(doc2.schema_version, doc.schema_version);
    assert_eq!(doc2.tiers.len(), doc.tiers.len());
    assert_eq!(doc.to_json(), doc2.to_json());
}

#[test]
fn committed_getmail_bench_matches_schema() {
    let doc: GetMailBench = serde_json::from_str(&read("BENCH_getmail.json"))
        .expect("BENCH_getmail.json must deserialize into emit::GetMailBench");
    assert_eq!(doc.schema_version, BENCH_SCHEMA_VERSION);
    assert_eq!(doc.experiment, "getmail-scale");
    assert!(!doc.tiers.is_empty());

    for t in &doc.tiers {
        assert!(t.users > 0 && t.hosts > 0 && t.servers > 0, "{}", t.label);
        assert!(t.list_len >= 1, "{}", t.label);
        assert!(t.build_ms >= 0.0, "{}", t.label);
        // The paper's steady-state contract: GetMail needs ≈ one poll.
        assert!(
            t.polls_mean >= 1.0 && t.polls_mean < 1.5,
            "{}: polls_mean {} violates the ≈1-poll contract",
            t.label,
            t.polls_mean
        );
        assert_eq!(t.digest.len(), 16, "{}", t.label);
    }

    let doc2: GetMailBench = serde_json::from_str(&doc.to_json()).expect("round trip");
    assert_eq!(doc.to_json(), doc2.to_json());
}

#[test]
fn committed_store_bench_matches_schema() {
    let doc: StoreBench = serde_json::from_str(&read("BENCH_store.json"))
        .expect("BENCH_store.json must deserialize into emit::StoreBench");
    assert_eq!(doc.schema_version, BENCH_SCHEMA_VERSION);
    assert_eq!(doc.experiment, "store-durability");
    assert!(!doc.tiers.is_empty(), "need at least one tier");

    let labels: Vec<(&str, &str)> = doc
        .tiers
        .iter()
        .map(|t| (t.label.as_str(), t.backend.as_str()))
        .collect();
    // The committed baseline is the full ladder (mem before wal within a
    // tier); CI's smoke run gates against the smoke-100k pair.
    for required in [
        ("smoke-100k", "mem"),
        ("smoke-100k", "wal"),
        ("1m", "mem"),
        ("1m", "wal"),
    ] {
        assert!(labels.contains(&required), "missing tier {required:?}");
    }

    for t in &doc.tiers {
        assert!(t.users > 0 && t.messages > 0, "{}/{}", t.label, t.backend);
        assert!(
            t.deposit_ms >= 0.0 && t.recovery_ms >= 0.0 && t.drain_ms >= 0.0,
            "{}/{}: negative wall time",
            t.label,
            t.backend
        );
        assert!(
            t.deposits_per_sec > 0.0,
            "{}/{}: deposits/sec must be positive",
            t.label,
            t.backend
        );
        // The durability contract the bench asserts at run time, visible
        // in the document: everything deposited is there after recovery.
        assert_eq!(
            t.recovered_messages, t.messages,
            "{}/{}",
            t.label, t.backend
        );
        match t.backend.as_str() {
            "mem" => {
                assert_eq!(t.replayed_records, 0, "{}: RAM replays nothing", t.label);
                assert_eq!(t.wal_bytes, 0, "{}: RAM logs nothing", t.label);
            }
            "wal" => {
                assert!(t.replayed_records > 0, "{}: WAL must replay", t.label);
                assert!(t.wal_bytes > 0, "{}: WAL must log", t.label);
            }
            other => panic!("unknown backend {other}"),
        }
    }

    let doc2: StoreBench = serde_json::from_str(&doc.to_json()).expect("round trip");
    assert_eq!(doc.to_json(), doc2.to_json());
}

#[test]
fn committed_sim_bench_matches_schema() {
    let doc: SimBench = serde_json::from_str(&read("BENCH_sim.json"))
        .expect("BENCH_sim.json must deserialize into emit::SimBench");
    assert_eq!(doc.schema_version, BENCH_SCHEMA_VERSION);
    assert_eq!(doc.experiment, "sim-kernel");
    assert!(!doc.tiers.is_empty(), "need at least one tier");

    let pairs: Vec<(&str, &str)> = doc
        .tiers
        .iter()
        .map(|t| (t.label.as_str(), t.engine.as_str()))
        .collect();
    // The committed baseline is the full ladder; CI's smoke run gates
    // against the smoke tiers it shares with it. Every hold/actor tier
    // carries both engines; the sharded tier carries every thread count.
    for required in [
        ("hold-smoke-1m", "calendar"),
        ("hold-smoke-1m", "baseline"),
        ("hold-10m-deep", "calendar"),
        ("hold-10m-deep", "baseline"),
        ("actor-smoke-500k", "calendar"),
        ("actor-smoke-500k", "baseline"),
        ("shard-2m", "sharded-1"),
        ("shard-2m", "sharded-2"),
        ("shard-2m", "sharded-8"),
    ] {
        assert!(pairs.contains(&required), "missing tier {required:?}");
    }

    for t in &doc.tiers {
        assert!(t.events > 0, "{}/{}", t.label, t.engine);
        assert!(t.wall_ms >= 0.0, "{}/{}", t.label, t.engine);
        assert!(t.events_per_sec > 0.0, "{}/{}", t.label, t.engine);
        assert!(t.threads >= 1, "{}/{}", t.label, t.engine);
        assert!(
            t.digest.starts_with("0x") && t.digest.len() == 18,
            "{}/{}: digest must be a 0x-prefixed 16-hex fingerprint",
            t.label,
            t.engine
        );
    }

    // The determinism contract, visible in the committed document: within
    // a tier, every engine/thread-count produced the same digest.
    for t in &doc.tiers {
        for u in &doc.tiers {
            if t.label == u.label {
                assert_eq!(
                    t.digest, u.digest,
                    "{}: {} and {} digests diverge",
                    t.label, t.engine, u.engine
                );
            }
        }
    }

    // The headline claim behind the kernel refactor: on the deep hold
    // tier (a >=10M-event workload) the calendar kernel clears 5x the
    // measured old-kernel baseline.
    let cal = doc
        .tiers
        .iter()
        .find(|t| t.label == "hold-10m-deep" && t.engine == "calendar")
        .expect("deep calendar tier");
    let base = doc
        .tiers
        .iter()
        .find(|t| t.label == "hold-10m-deep" && t.engine == "baseline")
        .expect("deep baseline tier");
    assert!(cal.events >= 10_000_000, "deep tier must be >=10M events");
    assert!(
        cal.events_per_sec >= 5.0 * base.events_per_sec,
        "committed deep-tier speedup below 5x: {:.0} vs {:.0} events/s",
        cal.events_per_sec,
        base.events_per_sec
    );

    let doc2: SimBench = serde_json::from_str(&doc.to_json()).expect("round trip");
    assert_eq!(doc.to_json(), doc2.to_json());
}

#[test]
fn assign_and_getmail_baselines_agree_on_seed_and_tiers() {
    let a: AssignBench = serde_json::from_str(&read("BENCH_assign.json")).expect("assign");
    let g: GetMailBench = serde_json::from_str(&read("BENCH_getmail.json")).expect("getmail");
    assert_eq!(a.seed, g.seed, "both documents come from one run");
    let al: Vec<&str> = a.tiers.iter().map(|t| t.label.as_str()).collect();
    let gl: Vec<&str> = g.tiers.iter().map(|t| t.label.as_str()).collect();
    assert_eq!(al, gl, "tier ladders must match");
}
