//! Trace-based invariant checking.
//!
//! The engine records a [`TraceEvent`] for every send, delivery, drop,
//! crash, and recovery (see [`lems_sim::trace`]). Because the engine
//! stamps a `Send` with its *scheduled arrival time*, a send and the
//! deliver-or-drop that consumes it share the same `(from, to, at)` key,
//! which lets the auditor match them as multisets without understanding
//! message payloads:
//!
//! * **Message conservation** — every traced send terminates in exactly
//!   one deliver, drop, or link-drop; no consume appears without a
//!   matching send; nothing is consumed twice. Link-level duplication
//!   preserves the law because the engine records a separate `Send` for
//!   the duplicate copy; retransmissions are likewise fresh sends.
//! * **Failure alternation** — per actor, crash and recover events
//!   strictly alternate, starting from the up state.
//! * **Trace completeness** — a lossy (evicting) trace is rejected up
//!   front rather than audited: a missing prefix would surface as fake
//!   violations.
//!
//! On top of the stream-level laws, [`audit_deployment`] checks the
//! System-1 domain ledgers: retrieved/bounced ids are subsets of
//! submitted ids, nothing is both retrieved and bounced, outstanding
//! mail equals mail physically in server storage at quiescence, and —
//! for scenarios that end with every server up and every user polling —
//! no delivered message is stranded.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lems_core::message::MessageId;
use lems_sim::actor::ActorId;
use lems_sim::time::SimTime;
use lems_sim::trace::{Trace, TraceEvent, TraceKind};
use lems_syntax::actors::Deployment;

/// One broken invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditViolation {
    /// A send was never consumed by a deliver or drop.
    UnmatchedSend {
        /// Sender.
        from: ActorId,
        /// Destination.
        to: ActorId,
        /// Scheduled arrival time.
        at: SimTime,
        /// How many sends on this key are left dangling.
        count: u32,
    },
    /// A deliver or drop appeared with no matching send (or the send was
    /// already consumed once).
    UnmatchedConsume {
        /// `Deliver` or `Drop`.
        kind: TraceKind,
        /// Sender.
        from: ActorId,
        /// Destination.
        to: ActorId,
        /// Event time.
        at: SimTime,
    },
    /// A crash event hit an actor that was already down.
    CrashWhileDown {
        /// The actor.
        actor: ActorId,
        /// Event time.
        at: SimTime,
    },
    /// A recover event hit an actor that was not down.
    RecoverWhileUp {
        /// The actor.
        actor: ActorId,
        /// Event time.
        at: SimTime,
    },
    /// The trace evicted events; conservation cannot be judged.
    LossyTrace {
        /// Events recorded over the run.
        recorded: u64,
        /// Events actually retained.
        retained: usize,
        /// Events silently evicted (`recorded - retained`).
        dropped: u64,
    },
    /// A domain-level (ledger / storage) inconsistency.
    Domain(String),
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::UnmatchedSend {
                from,
                to,
                at,
                count,
            } => write!(
                f,
                "send {from} -> {to} scheduled for [{at}] never delivered or dropped (x{count})"
            ),
            AuditViolation::UnmatchedConsume { kind, from, to, at } => {
                write!(f, "{kind} {from} -> {to} at [{at}] has no matching send")
            }
            AuditViolation::CrashWhileDown { actor, at } => {
                write!(f, "crash of {actor} at [{at}] while already down")
            }
            AuditViolation::RecoverWhileUp { actor, at } => {
                write!(f, "recover of {actor} at [{at}] while not down")
            }
            AuditViolation::LossyTrace {
                recorded,
                retained,
                dropped,
            } => write!(
                f,
                "trace is lossy ({recorded} events recorded, {retained} retained, \
                 {dropped} dropped); audit with Trace::unbounded()"
            ),
            AuditViolation::Domain(msg) => f.write_str(msg),
        }
    }
}

/// Result of an audit pass.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Broken invariants, in detection order.
    pub violations: Vec<AuditViolation>,
    /// Sends observed.
    pub sends: u64,
    /// Delivers observed.
    pub delivers: u64,
    /// Drops observed.
    pub drops: u64,
    /// Messages lost on the wire (link outages, probabilistic loss).
    pub link_drops: u64,
    /// Crashes observed.
    pub crashes: u64,
    /// Recoveries observed.
    pub recoveries: u64,
}

impl AuditReport {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sends, {} delivers, {} drops, {} link-drops, {} crashes, {} recoveries: {}",
            self.sends,
            self.delivers,
            self.drops,
            self.link_drops,
            self.crashes,
            self.recoveries,
            if self.is_clean() {
                "all invariants hold".to_owned()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )
    }
}

/// Streaming auditor over [`TraceEvent`]s.
///
/// Feed events in stream order via [`observe`](TraceAuditor::observe),
/// then call [`finish`](TraceAuditor::finish) to flush end-of-stream
/// checks (dangling sends).
#[derive(Debug, Default)]
pub struct TraceAuditor {
    /// Pending sends: `(from, to) -> arrival time -> count`. Ordered maps
    /// keep reports deterministic.
    pending: BTreeMap<(ActorId, ActorId), BTreeMap<SimTime, u32>>,
    /// Actors currently observed down.
    down: BTreeMap<ActorId, bool>,
    report: AuditReport,
}

impl TraceAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        TraceAuditor::default()
    }

    /// Consumes one event.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::Send => {
                self.report.sends += 1;
                *self
                    .pending
                    .entry((ev.from, ev.to))
                    .or_default()
                    .entry(ev.at)
                    .or_insert(0) += 1;
            }
            TraceKind::Deliver | TraceKind::Drop | TraceKind::LinkDrop => {
                match ev.kind {
                    TraceKind::Deliver => self.report.delivers += 1,
                    TraceKind::Drop => self.report.drops += 1,
                    _ => self.report.link_drops += 1,
                }
                let consumed = self
                    .pending
                    .get_mut(&(ev.from, ev.to))
                    .and_then(|per_time| per_time.get_mut(&ev.at))
                    .map(|n| {
                        *n -= 1;
                        *n
                    });
                match consumed {
                    Some(0) => {
                        // Tidy empty slots so `finish` only sees real leftovers.
                        if let Some(per_time) = self.pending.get_mut(&(ev.from, ev.to)) {
                            per_time.remove(&ev.at);
                            if per_time.is_empty() {
                                self.pending.remove(&(ev.from, ev.to));
                            }
                        }
                    }
                    Some(_) => {}
                    None => self
                        .report
                        .violations
                        .push(AuditViolation::UnmatchedConsume {
                            kind: ev.kind,
                            from: ev.from,
                            to: ev.to,
                            at: ev.at,
                        }),
                }
            }
            TraceKind::Crash => {
                self.report.crashes += 1;
                let down = self.down.entry(ev.from).or_insert(false);
                if *down {
                    self.report.violations.push(AuditViolation::CrashWhileDown {
                        actor: ev.from,
                        at: ev.at,
                    });
                }
                *down = true;
            }
            TraceKind::Recover => {
                self.report.recoveries += 1;
                let down = self.down.entry(ev.from).or_insert(false);
                if !*down {
                    self.report.violations.push(AuditViolation::RecoverWhileUp {
                        actor: ev.from,
                        at: ev.at,
                    });
                }
                *down = false;
            }
        }
    }

    /// Consumes a whole stream.
    pub fn observe_all<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for ev in events {
            self.observe(ev);
        }
    }

    /// Flushes end-of-stream checks and returns the report.
    pub fn finish(mut self) -> AuditReport {
        for (&(from, to), per_time) in &self.pending {
            for (&at, &count) in per_time {
                if count > 0 {
                    self.report.violations.push(AuditViolation::UnmatchedSend {
                        from,
                        to,
                        at,
                        count,
                    });
                }
            }
        }
        self.report
    }
}

/// Audits a complete [`Trace`]. Rejects lossy traces outright.
pub fn audit_trace(trace: &Trace) -> AuditReport {
    if trace.is_lossy() {
        return AuditReport {
            violations: vec![AuditViolation::LossyTrace {
                recorded: trace.recorded_total(),
                retained: trace.len(),
                dropped: trace.dropped_events(),
            }],
            ..AuditReport::default()
        };
    }
    let mut auditor = TraceAuditor::new();
    auditor.observe_all(trace.events());
    auditor.finish()
}

/// Domain-level audit of a quiescent System-1 [`Deployment`].
///
/// Always checked:
///
/// * retrieved and bounced ledgers are subsets of the submitted ledger,
///   and disjoint from each other;
/// * every outstanding id (submitted − retrieved − bounced) is physically
///   present in server storage — at quiescence nothing is in flight, so
///   a missing id is lost mail;
/// * every stored id was submitted and not bounced. A stored id that was
///   *retrieved* is tolerated: at-least-once submission over a lossy wire
///   can legally deposit a message on two authority servers (the ack for
///   the first deposit was lost), the UI dedups on retrieval, and the
///   residue copy is indistinguishable from unread mail to the server
///   holding it;
/// * the transport counted no wiring errors (sends to unbound nodes).
///
/// With `expect_drained` (scenarios that end with every server up and
/// every user checking mail until quiet), additionally:
///
/// * no unretrieved message is stranded in storage, and
/// * every submitted message was retrieved or bounced.
pub fn audit_deployment(d: &Deployment, expect_drained: bool) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    let stats = d.stats.borrow();

    for id in &stats.ledger_retrieved {
        if !stats.ledger_submitted.contains(id) {
            out.push(AuditViolation::Domain(format!(
                "message {id:?} retrieved but never submitted"
            )));
        }
        if stats.ledger_bounced.contains_key(id) {
            out.push(AuditViolation::Domain(format!(
                "message {id:?} both retrieved and bounced"
            )));
        }
    }
    for id in stats.ledger_bounced.keys() {
        if !stats.ledger_submitted.contains(id) {
            out.push(AuditViolation::Domain(format!(
                "message {id:?} bounced but never submitted"
            )));
        }
    }

    // Counters must agree with the id ledgers: a drift means something
    // was counted twice (e.g. a duplicate drain after a crash re-route)
    // or not at all.
    if stats.retrieved != stats.ledger_retrieved.len() as u64 {
        out.push(AuditViolation::Domain(format!(
            "retrieved counter ({}) disagrees with the retrieved ledger ({} unique ids)",
            stats.retrieved,
            stats.ledger_retrieved.len()
        )));
    }
    if stats.submitted != stats.ledger_submitted.len() as u64 {
        out.push(AuditViolation::Domain(format!(
            "submitted counter ({}) disagrees with the submitted ledger ({} unique ids)",
            stats.submitted,
            stats.ledger_submitted.len()
        )));
    }

    let stored = d.stranded_mail();
    let stored_ids: BTreeSet<MessageId> = stored.iter().map(|&(_, _, id, _)| id).collect();
    let outstanding_ids: BTreeSet<MessageId> = stats
        .ledger_submitted
        .iter()
        .filter(|id| !stats.ledger_retrieved.contains(id) && !stats.ledger_bounced.contains_key(id))
        .copied()
        .collect();

    for id in &outstanding_ids {
        if !stored_ids.contains(id) {
            out.push(AuditViolation::Domain(format!(
                "outstanding message {id:?} is nowhere in server storage (lost)"
            )));
        }
    }
    for id in &stored_ids {
        if !stats.ledger_submitted.contains(id) {
            out.push(AuditViolation::Domain(format!(
                "stored message {id:?} was never submitted"
            )));
        }
        if stats.ledger_bounced.contains_key(id) {
            out.push(AuditViolation::Domain(format!(
                "message {id:?} bounced yet still in server storage"
            )));
        }
    }

    let wiring = d.transport.wiring_errors();
    if wiring != 0 {
        out.push(AuditViolation::Domain(format!(
            "transport counted {wiring} wiring error(s) (sends to unbound/unknown nodes)"
        )));
    }

    if expect_drained {
        if !outstanding_ids.is_empty() {
            out.push(AuditViolation::Domain(format!(
                "drained run left {} message(s) outstanding \
                 (submitted {} retrieved {} bounced {})",
                outstanding_ids.len(),
                stats.ledger_submitted.len(),
                stats.ledger_retrieved.len(),
                stats.ledger_bounced.len()
            )));
        }
        for (node, owner, id, auth) in &stored {
            // Residue copies of already-retrieved mail are legal (see
            // above); only unretrieved mail counts as stranded.
            if !stats.ledger_retrieved.contains(id) {
                out.push(AuditViolation::Domain(format!(
                    "message {id:?} for {owner} stranded on server {node:?} \
                     (authorities {auth:?})"
                )));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_sim::actor::{Actor, ActorSim, Ctx};
    use lems_sim::time::SimDuration;

    /// Every test scenario quiesces far below this; exhausting it means
    /// a stuck retry loop, which must fail the test rather than hang it.
    const EVENT_BUDGET: u64 = 100_000;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn ev(at: f64, kind: TraceKind, from: usize, to: usize) -> TraceEvent {
        TraceEvent {
            at: t(at),
            kind,
            from: ActorId(from),
            to: ActorId(to),
        }
    }

    #[test]
    fn balanced_stream_is_clean() {
        let mut a = TraceAuditor::new();
        a.observe(&ev(1.0, TraceKind::Send, 0, 1));
        a.observe(&ev(2.0, TraceKind::Send, 1, 0));
        a.observe(&ev(1.0, TraceKind::Deliver, 0, 1));
        a.observe(&ev(2.0, TraceKind::Drop, 1, 0));
        let r = a.finish();
        assert!(r.is_clean(), "{r}");
        assert_eq!((r.sends, r.delivers, r.drops), (2, 1, 1));
    }

    #[test]
    fn dangling_send_is_reported() {
        let mut a = TraceAuditor::new();
        a.observe(&ev(1.0, TraceKind::Send, 0, 1));
        let r = a.finish();
        assert_eq!(
            r.violations,
            vec![AuditViolation::UnmatchedSend {
                from: ActorId(0),
                to: ActorId(1),
                at: t(1.0),
                count: 1,
            }]
        );
    }

    #[test]
    fn consume_without_send_is_reported() {
        let mut a = TraceAuditor::new();
        a.observe(&ev(1.0, TraceKind::Deliver, 0, 1));
        let r = a.finish();
        assert!(matches!(
            r.violations[..],
            [AuditViolation::UnmatchedConsume {
                kind: TraceKind::Deliver,
                ..
            }]
        ));
    }

    #[test]
    fn double_consume_is_reported() {
        let mut a = TraceAuditor::new();
        a.observe(&ev(1.0, TraceKind::Send, 0, 1));
        a.observe(&ev(1.0, TraceKind::Deliver, 0, 1));
        a.observe(&ev(1.0, TraceKind::Drop, 0, 1));
        let r = a.finish();
        assert!(matches!(
            r.violations[..],
            [AuditViolation::UnmatchedConsume {
                kind: TraceKind::Drop,
                ..
            }]
        ));
    }

    #[test]
    fn repeated_sends_on_one_key_are_counted() {
        // FIFO clamping can legitimately give two sends on the same
        // ordered pair the same arrival time.
        let mut a = TraceAuditor::new();
        a.observe(&ev(5.0, TraceKind::Send, 0, 1));
        a.observe(&ev(5.0, TraceKind::Send, 0, 1));
        a.observe(&ev(5.0, TraceKind::Deliver, 0, 1));
        let r = a.finish();
        assert_eq!(
            r.violations,
            vec![AuditViolation::UnmatchedSend {
                from: ActorId(0),
                to: ActorId(1),
                at: t(5.0),
                count: 1,
            }]
        );
    }

    #[test]
    fn link_drop_consumes_its_send() {
        let mut a = TraceAuditor::new();
        a.observe(&ev(1.0, TraceKind::Send, 0, 1));
        a.observe(&ev(1.0, TraceKind::LinkDrop, 0, 1));
        // A duplicated message is two sends consumed by two delivers.
        a.observe(&ev(2.0, TraceKind::Send, 0, 1));
        a.observe(&ev(2.5, TraceKind::Send, 0, 1));
        a.observe(&ev(2.0, TraceKind::Deliver, 0, 1));
        a.observe(&ev(2.5, TraceKind::Deliver, 0, 1));
        let r = a.finish();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.link_drops, 1);
        assert_eq!(r.sends, r.delivers + r.drops + r.link_drops);
    }

    #[test]
    fn crash_recover_alternation_is_enforced() {
        let mut a = TraceAuditor::new();
        a.observe(&ev(1.0, TraceKind::Crash, 2, 2));
        a.observe(&ev(2.0, TraceKind::Recover, 2, 2));
        a.observe(&ev(3.0, TraceKind::Recover, 2, 2));
        a.observe(&ev(4.0, TraceKind::Crash, 3, 3));
        a.observe(&ev(5.0, TraceKind::Crash, 3, 3));
        let r = a.finish();
        assert_eq!(
            r.violations,
            vec![
                AuditViolation::RecoverWhileUp {
                    actor: ActorId(2),
                    at: t(3.0),
                },
                AuditViolation::CrashWhileDown {
                    actor: ActorId(3),
                    at: t(5.0),
                },
            ]
        );
    }

    #[test]
    fn lossy_trace_is_rejected() {
        let mut tr = Trace::bounded(1);
        tr.record(t(1.0), TraceKind::Send, ActorId(0), ActorId(1));
        tr.record(t(1.0), TraceKind::Deliver, ActorId(0), ActorId(1));
        let r = audit_trace(&tr);
        assert!(matches!(
            r.violations[..],
            [AuditViolation::LossyTrace {
                recorded: 2,
                retained: 1,
                dropped: 1
            }]
        ));
    }

    /// Echoes every message back to its sender, `bounces` times.
    struct Echo {
        bounces: u32,
    }

    impl Actor for Echo {
        type Msg = u32;
        fn on_message(&mut self, from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            if self.bounces > 0 && from != ActorId::EXTERNAL {
                self.bounces -= 1;
                ctx.send(from, msg + 1, SimDuration::from_units(1.0));
            } else if from == ActorId::EXTERNAL {
                // Kick off the rally with a peer chosen by convention: the
                // other of actors 0 and 1.
                let peer = ActorId(1 - ctx.me().0);
                ctx.send(peer, msg, SimDuration::from_units(1.0));
            }
        }
    }

    #[test]
    fn live_engine_run_with_failures_audits_clean() {
        let mut sim: ActorSim<u32> = ActorSim::new(7).with_trace(usize::MAX);
        let a = sim.add_actor(Echo { bounces: 5 });
        let b = sim.add_actor(Echo { bounces: 5 });
        sim.inject(a, 0, SimDuration::from_units(0.5));
        // Crash the peer mid-rally so some sends become drops, and
        // recover it before the rally's retries would matter.
        sim.schedule_crash(b, t(2.5));
        sim.schedule_recover(b, t(4.5));
        assert!(sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let r = audit_trace(sim.trace());
        assert!(r.is_clean(), "{r}");
        assert!(r.sends > 0 && r.crashes == 1 && r.recoveries == 1);
        assert_eq!(r.sends, r.delivers + r.drops);
    }

    #[test]
    fn send_to_unknown_actor_still_conserves() {
        let mut sim: ActorSim<u32> = ActorSim::new(7).with_trace(usize::MAX);
        let a = sim.add_actor(Echo { bounces: 0 });
        sim.inject(a, 0, SimDuration::ZERO);
        sim.inject(ActorId(99), 1, SimDuration::ZERO);
        assert!(sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let r = audit_trace(sim.trace());
        assert!(r.is_clean(), "{r}");
        assert!(r.drops >= 1);
    }
}
