//! Per-fn control-flow graphs lowered from [`crate::expr`] statement
//! trees.
//!
//! Each fn body becomes a small digraph of [`Node`]s between a
//! distinguished `Entry` and `Exit`. Statement-position control flow
//! (`if`/`while`/`loop`/`for`/`match`, `return`/`break`/`continue`,
//! `let .. else`) produces real branches and back-edges; flat
//! expression statements become single straight-line nodes. Two
//! conservative refinements keep the graph honest without a full
//! parser:
//!
//! * A statement that consists of a diverging macro call (`panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!`) becomes a [`NodeKind::
//!   Diverge`] node with no fallthrough — as does a `loop` with no
//!   `break`, which genuinely never terminates.
//! * A statement containing a depth-0 `?` gets an extra edge to `Exit`
//!   (the early error return).
//!
//! The graph drives [`crate::flow`]'s worklist (facts propagate along
//! `succs` until fixpoint) and the corpus connectivity check used by
//! the test suite: for every fn, `Entry` must reach `Exit` or a
//! diverging node.

use crate::expr::{FnBody, Range, Stmt, StmtKind};
use crate::lex::Tok;

/// Node kinds in a fn's control-flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The unique entry node (no statement range).
    Entry,
    /// The unique exit node; `return` and fn-tail fallthrough land here.
    Exit,
    /// A straight-line statement (or statement fragment, e.g. a loop
    /// condition).
    Stmt,
    /// A branching point: an `if`/`while` condition or `match`
    /// scrutinee. Has one successor per branch.
    Branch,
    /// A statement that never falls through: diverging macro call or an
    /// infinite `loop` with no `break`.
    Diverge,
}

/// One CFG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// What kind of node.
    pub kind: NodeKind,
    /// Token range of the statement or fragment this node covers;
    /// `None` for `Entry`/`Exit`.
    pub range: Option<Range>,
    /// Successor node indices.
    pub succs: Vec<usize>,
    /// For nodes that bind a pattern (`let`, `for`): the pattern range.
    /// Dataflow assigns the evaluated `value` bits to these bindings.
    pub bind: Option<Range>,
    /// For binding nodes: the range whose value is bound (`let`
    /// initializer, `for` iterable).
    pub value: Option<Range>,
    /// True when `value` is iterated (a `for` loop): hash-classed
    /// collections in it taint the bindings with iteration order.
    pub iterates: bool,
}

/// A per-fn control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; `nodes[entry]` is `Entry`, `nodes[exit]` is `Exit`.
    pub nodes: Vec<Node>,
    /// Index of the entry node (always 0).
    pub entry: usize,
    /// Index of the exit node (always 1).
    pub exit: usize,
}

/// Macro names whose statement-position invocation never returns.
const DIVERGING_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Cfg {
    /// Lower a parsed fn body into a CFG. `toks` is the same token
    /// stream the body's ranges index into.
    pub fn build(body: &FnBody, toks: &[Tok]) -> Self {
        let mut cfg = Cfg {
            nodes: vec![
                Node {
                    kind: NodeKind::Entry,
                    range: None,
                    succs: Vec::new(),
                    bind: None,
                    value: None,
                    iterates: false,
                },
                Node {
                    kind: NodeKind::Exit,
                    range: None,
                    succs: Vec::new(),
                    bind: None,
                    value: None,
                    iterates: false,
                },
            ],
            entry: 0,
            exit: 1,
        };
        let mut lower = Lowerer {
            cfg: &mut cfg,
            toks,
            loops: Vec::new(),
        };
        let tail = lower.block(&body.stmts, 0);
        // Fn-tail fallthrough reaches Exit.
        lower.connect(tail, 1);
        cfg
    }

    /// True when `from` can reach any node satisfying `pred`.
    pub fn reaches(&self, from: usize, pred: impl Fn(&Node) -> bool) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            if pred(&self.nodes[n]) {
                return true;
            }
            stack.extend(self.nodes[n].succs.iter().copied());
        }
        false
    }

    /// True when `from` can reach node index `target`.
    pub fn reaches_node(&self, from: usize, target: usize) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            if n == target {
                return true;
            }
            stack.extend(self.nodes[n].succs.iter().copied());
        }
        false
    }

    /// The corpus invariant: entry reaches exit or a diverging node.
    pub fn entry_reaches_exit_or_diverge(&self) -> bool {
        self.reaches(self.entry, |n| {
            matches!(n.kind, NodeKind::Exit | NodeKind::Diverge)
        })
    }

    /// Nodes in reverse-postorder-ish worklist seed order (just index
    /// order; the worklist iterates to fixpoint regardless).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Loop context for `break`/`continue` targets: indices that `break`
/// edges should be patched to, and the loop-head node `continue` jumps
/// back to.
struct LoopCtx {
    head: usize,
    breaks: Vec<usize>,
}

struct Lowerer<'a> {
    cfg: &'a mut Cfg,
    toks: &'a [Tok],
    loops: Vec<LoopCtx>,
}

impl Lowerer<'_> {
    fn push(&mut self, kind: NodeKind, range: Option<Range>) -> usize {
        self.cfg.nodes.push(Node {
            kind,
            range,
            succs: Vec::new(),
            bind: None,
            value: None,
            iterates: false,
        });
        self.cfg.nodes.len() - 1
    }

    /// Add an edge from every node in `froms` to `to`.
    fn connect(&mut self, froms: Vec<usize>, to: usize) {
        for f in froms {
            if !self.cfg.nodes[f].succs.contains(&to) {
                self.cfg.nodes[f].succs.push(to);
            }
        }
    }

    /// For an `if let` / `while let` condition node: record the pattern
    /// and matched-value sub-ranges so dataflow can bind them.
    fn set_cond_bind(&mut self, node: usize, cond: Range) {
        let (lo, hi) = cond;
        let hi = hi.min(self.toks.len());
        let mut i = lo;
        while i < hi && self.toks[i].kind == crate::lex::TokKind::Comment {
            i += 1;
        }
        if i >= hi || !self.toks[i].is_ident("let") {
            return;
        }
        // Split at the depth-0 `=` (never `==`/`=>` at depth 0 in a
        // condition's let position).
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < hi {
            let t = &self.toks[j];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 => {
                    self.cfg.nodes[node].bind = Some((i + 1, j));
                    self.cfg.nodes[node].value = Some((j + 1, hi));
                    return;
                }
                _ => {}
            }
            j += 1;
        }
    }

    /// Does `[lo, hi)` contain a depth-0 `?` (early error return)?
    fn has_try(&self, range: Range) -> bool {
        let (lo, hi) = range;
        let hi = hi.min(self.toks.len());
        (lo..hi).any(|i| self.toks[i].is_punct('?'))
    }

    /// Is the flat statement range a diverging macro invocation?
    fn is_diverging(&self, range: Range) -> bool {
        let (lo, hi) = range;
        let hi = hi.min(self.toks.len());
        let mut i = lo;
        while i < hi && self.toks[i].kind == crate::lex::TokKind::Comment {
            i += 1;
        }
        i < hi
            && DIVERGING_MACROS.iter().any(|m| self.toks[i].is_ident(m))
            && i + 1 < hi
            && self.toks[i + 1].is_punct('!')
    }

    /// Lower a statement list. `preds` is the set of dangling node
    /// indices whose fallthrough enters this block; returns the set
    /// whose fallthrough leaves it. Entry (index 0) participates via
    /// `preds = vec![0]` at the top level.
    fn block(&mut self, stmts: &[Stmt], entry_pred: usize) -> Vec<usize> {
        let mut preds = vec![entry_pred];
        for s in stmts {
            preds = self.stmt(s, preds);
        }
        preds
    }

    fn block_from(&mut self, stmts: &[Stmt], preds: Vec<usize>) -> Vec<usize> {
        let mut p = preds;
        for s in stmts {
            p = self.stmt(s, p);
        }
        p
    }

    /// Lower one statement given dangling predecessors; returns the new
    /// dangling set.
    fn stmt(&mut self, s: &Stmt, preds: Vec<usize>) -> Vec<usize> {
        match &s.kind {
            StmtKind::Let {
                pat,
                init,
                else_block,
                ..
            } => {
                if let Some(eb) = else_block {
                    // let-else: binding succeeds (fallthrough) or the
                    // else block runs (and must diverge).
                    let n = self.push(NodeKind::Branch, Some(s.range));
                    self.cfg.nodes[n].bind = Some(*pat);
                    self.cfg.nodes[n].value = *init;
                    self.connect(preds, n);
                    let else_tail = self.block_from(eb, vec![n]);
                    // The else block's fallthrough cannot continue past
                    // the let (the compiler enforces divergence); drop
                    // its dangling ends at Exit to stay conservative.
                    self.connect(else_tail, self.cfg.exit);
                    vec![n]
                } else {
                    let n = self.flat(s.range);
                    self.cfg.nodes[n].bind = Some(*pat);
                    self.cfg.nodes[n].value = *init;
                    self.connect(preds, n);
                    self.flat_next(n, s.range)
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let b = self.push(NodeKind::Branch, Some(*cond));
                self.set_cond_bind(b, *cond);
                self.connect(preds, b);
                let mut out = self.block_from(then_branch, vec![b]);
                if let Some(eb) = else_branch {
                    let else_out = self.block_from(eb, vec![b]);
                    out.extend(else_out);
                } else {
                    out.push(b);
                }
                out
            }
            StmtKind::While { cond, body } => {
                let b = self.push(NodeKind::Branch, Some(*cond));
                self.set_cond_bind(b, *cond);
                self.connect(preds, b);
                self.loops.push(LoopCtx {
                    head: b,
                    breaks: Vec::new(),
                });
                let body_out = self.block_from(body, vec![b]);
                self.connect(body_out, b);
                // Balanced with the push above; empty only if a `break`
                // handler misbehaved, in which case there are no breaks.
                let breaks = self.loops.pop().map(|c| c.breaks).unwrap_or_default();
                let mut out = vec![b];
                out.extend(breaks);
                out
            }
            StmtKind::Loop { body } => {
                let head = self.push(NodeKind::Stmt, Some(s.range));
                self.connect(preds, head);
                self.loops.push(LoopCtx {
                    head,
                    breaks: Vec::new(),
                });
                let body_out = self.block_from(body, vec![head]);
                self.connect(body_out, head);
                let breaks = self.loops.pop().map(|c| c.breaks).unwrap_or_default();
                if breaks.is_empty() {
                    // No break: the loop never terminates — that IS the
                    // fn's way of diverging.
                    self.cfg.nodes[head].kind = NodeKind::Diverge;
                    Vec::new()
                } else {
                    breaks
                }
            }
            StmtKind::For { pat, iter, body } => {
                let b = self.push(NodeKind::Branch, Some(*iter));
                self.cfg.nodes[b].bind = Some(*pat);
                self.cfg.nodes[b].value = Some(*iter);
                self.cfg.nodes[b].iterates = true;
                self.connect(preds, b);
                self.loops.push(LoopCtx {
                    head: b,
                    breaks: Vec::new(),
                });
                let body_out = self.block_from(body, vec![b]);
                self.connect(body_out, b);
                let breaks = self.loops.pop().map(|c| c.breaks).unwrap_or_default();
                let mut out = vec![b];
                out.extend(breaks);
                out
            }
            StmtKind::Match { scrut, arms } => {
                let b = self.push(NodeKind::Branch, Some(*scrut));
                self.connect(preds, b);
                if arms.is_empty() {
                    // `match never {}` — no arm can run; treat as
                    // diverging.
                    self.cfg.nodes[b].kind = NodeKind::Diverge;
                    return Vec::new();
                }
                let mut out = Vec::new();
                for arm in arms {
                    let arm_out = self.block_from(&arm.body, vec![b]);
                    out.extend(arm_out);
                }
                out
            }
            StmtKind::Return { .. } => {
                let n = self.push(NodeKind::Stmt, Some(s.range));
                self.connect(preds, n);
                let exit = self.cfg.exit;
                self.connect(vec![n], exit);
                Vec::new()
            }
            StmtKind::Break => {
                let n = self.push(NodeKind::Stmt, Some(s.range));
                self.connect(preds, n);
                if let Some(ctx) = self.loops.last_mut() {
                    ctx.breaks.push(n);
                } else {
                    // break outside a lowered loop (e.g. inside a
                    // labelled block we flattened): fall to Exit so the
                    // node is not dangling.
                    let exit = self.cfg.exit;
                    self.connect(vec![n], exit);
                }
                Vec::new()
            }
            StmtKind::Continue => {
                let n = self.push(NodeKind::Stmt, Some(s.range));
                self.connect(preds, n);
                if let Some(ctx) = self.loops.last() {
                    let head = ctx.head;
                    self.connect(vec![n], head);
                } else {
                    let exit = self.cfg.exit;
                    self.connect(vec![n], exit);
                }
                Vec::new()
            }
            StmtKind::Block(body) => {
                let mut p = preds;
                if body.is_empty() {
                    let n = self.push(NodeKind::Stmt, Some(s.range));
                    self.connect(p, n);
                    return vec![n];
                }
                for st in body {
                    p = self.stmt(st, p);
                }
                p
            }
            StmtKind::Expr { range } => {
                if self.is_diverging(*range) {
                    let n = self.push(NodeKind::Diverge, Some(*range));
                    self.connect(preds, n);
                    return Vec::new();
                }
                let n = self.flat(*range);
                self.connect(preds, n);
                self.flat_next(n, *range)
            }
        }
    }

    fn flat(&mut self, range: Range) -> usize {
        self.push(NodeKind::Stmt, Some(range))
    }

    /// Fallthrough set for a flat node: itself, plus an Exit edge when
    /// the range contains a `?` operator.
    fn flat_next(&mut self, n: usize, range: Range) -> Vec<usize> {
        if self.has_try(range) {
            let exit = self.cfg.exit;
            self.connect(vec![n], exit);
        }
        vec![n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn cfg_of(src: &str) -> Cfg {
        let toks = lex(src);
        let open = toks.iter().position(|t| t.is_punct('{')).unwrap();
        let body = FnBody::parse(&toks, open + 1, toks.len() - 1);
        Cfg::build(&body, &toks)
    }

    #[test]
    fn straight_line_reaches_exit() {
        let cfg = cfg_of("fn f() { let x = 1; g(x); }");
        assert!(cfg.entry_reaches_exit_or_diverge());
        assert!(cfg.reaches(cfg.entry, |n| n.kind == NodeKind::Exit));
    }

    #[test]
    fn if_produces_branch_and_join() {
        let cfg = cfg_of("fn f(c: bool) { if c { a(); } else { b(); } tail(); }");
        let branches = cfg
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Branch)
            .count();
        assert_eq!(branches, 1);
        assert!(cfg.entry_reaches_exit_or_diverge());
    }

    #[test]
    fn while_has_back_edge() {
        let cfg = cfg_of("fn f() { while cond() { step(); } }");
        // The branch node must appear in its own transitive successors
        // (the loop back-edge).
        let b = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Branch)
            .unwrap();
        let reached = cfg.nodes[b].succs.iter().any(|&s| cfg.reaches_node(s, b));
        assert!(reached, "no back edge to loop head");
        assert!(cfg.entry_reaches_exit_or_diverge());
    }

    #[test]
    fn infinite_loop_counts_as_diverging() {
        let cfg = cfg_of("fn f() { loop { tick(); } }");
        assert!(!cfg.reaches(cfg.entry, |n| n.kind == NodeKind::Exit));
        assert!(cfg.entry_reaches_exit_or_diverge());
    }

    #[test]
    fn loop_with_break_reaches_exit() {
        let cfg = cfg_of("fn f() { loop { if done() { break; } } after(); }");
        assert!(cfg.reaches(cfg.entry, |n| n.kind == NodeKind::Exit));
    }

    #[test]
    fn panic_statement_diverges() {
        let cfg = cfg_of("fn f() { panic!(\"boom\"); }");
        assert!(cfg.nodes.iter().any(|n| n.kind == NodeKind::Diverge));
        assert!(cfg.entry_reaches_exit_or_diverge());
    }

    #[test]
    fn early_return_and_try_reach_exit() {
        let cfg = cfg_of("fn f() -> R { if bad() { return err(); } let v = io()?; ok(v) }");
        assert!(cfg.entry_reaches_exit_or_diverge());
        // The `?` statement must have an Exit successor.
        let exit = cfg.exit;
        assert!(cfg
            .nodes
            .iter()
            .any(|n| n.kind == NodeKind::Stmt && n.succs.contains(&exit)));
    }

    #[test]
    fn match_arms_all_branch_from_scrutinee() {
        let cfg = cfg_of("fn f(m: M) { match m { M::A => a(), M::B => { b(); } } }");
        let b = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Branch)
            .unwrap();
        assert_eq!(cfg.nodes[b].succs.len(), 2);
    }
}
