//! Small-scope schedule model checking (`lems-check -- explore`).
//!
//! The audit scenarios in [`scenarios`](crate::scenarios) replay exactly one
//! schedule per seed. This module closes that gap for *small* deployments:
//! it rebuilds the same workload once per schedule and drives it through
//! [`lems_sim::sched::Explorer`], which enumerates every interleaving of
//! same-instant ready events (up to configurable bounds, with partial-order
//! reduction — see `DESIGN.md` §8). Every terminal state is fed through the
//! trace auditor's conservation laws plus two terminal checks:
//!
//! * **no-lost-mail** — every submitted, unbounced message id is either
//!   retrieved or physically present in server storage;
//! * **no-stuck-retry** — the run quiesces within its event budget
//!   (deadlock/livelock detection: a retry loop that never converges under
//!   some ordering shows up here).
//!
//! A failing schedule is reported as a [`Counterexample`] carrying the
//! branch-choice list; replaying it through
//! [`ReplayScheduler`](lems_sim::sched::ReplayScheduler) reproduces the
//! violating run byte-identically, which the driver verifies before
//! reporting.

use std::collections::BTreeSet;

use lems_locindep::actors::RoamDeployment;
use lems_net::generators::{fig1, multi_region, MultiRegionConfig};
use lems_sim::rng::SimRng;
use lems_sim::sched::{ExploreBounds, Explorer, ReplayScheduler, Schedule, Scheduler};
use lems_sim::time::SimTime;
use lems_sim::trace::Trace;
use lems_syntax::actors::{Deployment, DeploymentConfig, ServerFailurePlan};

use crate::audit::audit_trace;

/// Per-run event budget. Explore deployments are tiny (2–3 servers, a
/// handful of messages); a run that needs more events than this is stuck.
pub const RUN_EVENT_BUDGET: u64 = 200_000;

/// Default bounds for one exploration: deep enough to exhaust the shipped
/// scenarios without truncation, with a hard schedule budget so CI cannot
/// run away if a scenario edit explodes the state space.
pub fn default_bounds() -> ExploreBounds {
    ExploreBounds {
        max_decisions: 256,
        branch_bound: 8,
        max_schedules: 50_000,
    }
}

/// A schedule that violated an invariant, plus what it violated.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Branch-choice list; replay with
    /// [`ReplayScheduler`](lems_sim::sched::ReplayScheduler).
    pub schedule: Schedule,
    /// The violated checks, rendered.
    pub violations: Vec<String>,
    /// True when replaying the schedule reproduced the identical terminal
    /// fingerprint and violations (it always should; `false` would mean
    /// the workload itself is nondeterministic).
    pub replay_verified: bool,
}

/// The verdict of exploring one scenario.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Stable scenario name (CLI selector).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Schedules (distinct interleavings) enumerated.
    pub schedules: u64,
    /// Distinct terminal fingerprints (trace digest + ledger state) seen
    /// across those schedules.
    pub distinct_outcomes: usize,
    /// True when a bound clipped the exploration (sample, not proof).
    pub truncated: bool,
    /// First violating schedule found, if any.
    pub counterexample: Option<Counterexample>,
}

impl ExploreOutcome {
    /// True when every explored schedule passed every check.
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none()
    }
}

fn t(u: f64) -> SimTime {
    SimTime::from_units(u)
}

/// FNV-1a over the rendered trace stream: schedules that differ in any
/// observable event (order, timing, kind, endpoints) differ here. Thin
/// alias over the kernel's canonical [`Trace::digest`] so explore
/// fingerprints and the kernel-equivalence pins share one algorithm.
fn trace_digest(trace: &Trace) -> u64 {
    trace.digest()
}

/// Generic DFS driver: rebuild, install scheduler, run, check, backtrack.
///
/// `check` returns the violated-invariant lines for one terminal state
/// (empty = clean); `fingerprint` must capture everything `check` looks at,
/// so replay verification can compare terminal states across runs.
fn drive<D>(
    name: &'static str,
    description: &'static str,
    bounds: ExploreBounds,
    build: impl Fn() -> D,
    install: impl Fn(&mut D, Box<dyn Scheduler>),
    run: impl Fn(&mut D) -> bool,
    check: impl Fn(&D, bool) -> Vec<String>,
    fingerprint: impl Fn(&D) -> u64,
) -> ExploreOutcome {
    let mut ex = Explorer::new(bounds);
    let mut distinct: BTreeSet<u64> = BTreeSet::new();
    let mut counterexample: Option<Counterexample> = None;
    loop {
        let mut d = build();
        install(&mut d, Box::new(ex.begin_run()));
        let quiesced = run(&mut d);
        let violations = check(&d, quiesced);
        let print = fingerprint(&d);
        distinct.insert(print);
        if !violations.is_empty() && counterexample.is_none() {
            let schedule = ex.finish_run();
            // Replay the recorded schedule against a fresh build: the
            // counterexample must reproduce byte-identically or it is
            // useless as a regression artefact.
            let mut replay = build();
            install(
                &mut replay,
                Box::new(ReplayScheduler::new(schedule.clone())),
            );
            let replay_quiesced = run(&mut replay);
            let replay_verified =
                fingerprint(&replay) == print && check(&replay, replay_quiesced) == violations;
            counterexample = Some(Counterexample {
                schedule,
                violations,
                replay_verified,
            });
        }
        if !ex.advance() {
            break;
        }
    }
    ExploreOutcome {
        name,
        description,
        schedules: ex.schedules_run(),
        distinct_outcomes: distinct.len(),
        truncated: ex.truncated(),
        counterexample,
    }
}

/// Terminal checks for a System-1 deployment: trace conservation laws,
/// no-stuck-retry, and no-lost-mail.
fn system1_checks(d: &Deployment, quiesced: bool) -> Vec<String> {
    let mut out = Vec::new();
    if !quiesced {
        out.push(format!(
            "no-stuck-retry: {RUN_EVENT_BUDGET} events processed without quiescence"
        ));
    }
    let trace = audit_trace(d.sim.trace());
    out.extend(trace.violations.iter().map(|v| format!("trace: {v}")));

    let stats = d.stats.borrow();
    let stored: BTreeSet<_> = d.stranded_mail().iter().map(|&(_, _, id, _)| id).collect();
    for id in &stats.ledger_submitted {
        if !stats.ledger_retrieved.contains(id)
            && !stats.ledger_bounced.contains_key(id)
            && !stored.contains(id)
        {
            out.push(format!(
                "no-lost-mail: message {id:?} neither retrieved, bounced, nor stored"
            ));
        }
    }
    // Ledger sanity that must hold under *any* schedule: nothing counted
    // twice, nothing conjured from nowhere.
    for id in &stats.ledger_retrieved {
        if !stats.ledger_submitted.contains(id) {
            out.push(format!(
                "ledger: message {id:?} retrieved but never submitted"
            ));
        }
        if stats.ledger_bounced.contains_key(id) {
            out.push(format!("ledger: message {id:?} both retrieved and bounced"));
        }
    }
    if stats.retrieved != stats.ledger_retrieved.len() as u64 {
        out.push(format!(
            "ledger: retrieved counter ({}) disagrees with ledger ({} ids)",
            stats.retrieved,
            stats.ledger_retrieved.len()
        ));
    }
    if d.transport.wiring_errors() != 0 {
        out.push(format!(
            "ledger: {} transport wiring error(s)",
            d.transport.wiring_errors()
        ));
    }
    out
}

fn system1_fingerprint(d: &Deployment) -> u64 {
    let stats = d.stats.borrow();
    let mut h = trace_digest(d.sim.trace());
    for x in [
        stats.submitted,
        stats.retrieved,
        stats.bounced,
        stats.retransmits,
        d.mail_in_storage() as u64,
    ] {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// System-1 steady exchange, shrunk to explorable size: the Fig. 1
/// topology's 3-server chain with one user on each of the first three
/// hosts. Each user fires a burst of *simultaneous* sends (simultaneity is
/// what creates schedule branch points), then everyone checks mail.
fn s1_steady_deployment(seed: u64) -> Deployment {
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[1, 1, 1, 0, 0, 0],
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    );
    d.sim.enable_trace(usize::MAX);
    let names = d.user_names();
    // Three coincident submissions per user: every host actor has a 3-way
    // contended arrival group (3!^3 base schedules), and the submit/forward
    // traffic they fan out into races organically further downstream.
    for (i, from) in names.iter().enumerate() {
        for k in 1..=3usize {
            d.send_at(t(1.0), from, &names[(i + k) % names.len()]);
        }
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(120.0 + i as f64), n);
        d.check_at(t(200.0 + i as f64), n);
    }
    d
}

/// Exhaustive exploration of the shrunken steady-exchange scenario.
pub fn s1_steady(seed: u64, bounds: ExploreBounds) -> ExploreOutcome {
    drive(
        "s1-steady",
        "System-1, 3 servers, 3 users, coincident send bursts, no failures",
        bounds,
        move || s1_steady_deployment(seed),
        |d, s| d.sim.set_scheduler(s),
        |d| d.sim.run_to_quiescence_bounded(RUN_EVENT_BUDGET),
        system1_checks,
        system1_fingerprint,
    )
}

/// The acceptance scenario: same shrunken System-1 deployment plus one
/// crash point — the first server (primary authority for the user hosts)
/// dies at t=6 with traffic in flight and recovers at t=40, before the
/// check waves. Every interleaving of the send bursts, the submit/forward
/// races, and the crash must conserve mail.
fn s1_crash_deployment(seed: u64) -> Deployment {
    let f = fig1();
    let mut d = s1_steady_deployment(seed);
    let mut plan = ServerFailurePlan::new();
    plan.add(f.servers[0], t(6.0), t(40.0));
    d.apply_server_failures(&plan);
    d
}

/// Exhaustive exploration of the crash-point scenario.
pub fn s1_crash(seed: u64, bounds: ExploreBounds) -> ExploreOutcome {
    drive(
        "s1-crash",
        "System-1, 3 servers, coincident send bursts, server 0 down in [6, 40)",
        bounds,
        move || s1_crash_deployment(seed),
        |d, s| d.sim.set_scheduler(s),
        |d| d.sim.run_to_quiescence_bounded(RUN_EVENT_BUDGET),
        system1_checks,
        system1_fingerprint,
    )
}

/// Terminal checks for a System-2 deployment. No faults are injected in
/// the explore scenario, so every submission must be stored exactly once
/// (hop-by-hop acks may retransmit; dedup must absorb it) and every
/// delivery session must converge.
fn system2_checks(d: &RoamDeployment, quiesced: bool) -> Vec<String> {
    let mut out = Vec::new();
    if !quiesced {
        out.push(format!(
            "no-stuck-retry: {RUN_EVENT_BUDGET} events processed without quiescence"
        ));
    }
    let trace = audit_trace(d.sim.trace());
    out.extend(trace.violations.iter().map(|v| format!("trace: {v}")));

    let stats = d.stats.borrow();
    if stats.delivery_failures != 0 {
        out.push(format!(
            "no-lost-mail: {} delivery failure(s) on a fault-free network",
            stats.delivery_failures
        ));
    }
    if stats.stored != stats.submitted {
        out.push(format!(
            "no-lost-mail: submitted {} but stored {} (duplicate or lost deposit)",
            stats.submitted, stats.stored
        ));
    }
    if d.mail_in_storage() as u64 != stats.stored {
        out.push(format!(
            "no-lost-mail: stored counter {} disagrees with {} message(s) in storage",
            stats.stored,
            d.mail_in_storage()
        ));
    }
    out
}

fn system2_fingerprint(d: &RoamDeployment) -> u64 {
    let stats = d.stats.borrow();
    let mut h = trace_digest(d.sim.trace());
    for x in [
        stats.submitted,
        stats.stored,
        stats.notified,
        stats.consults,
        stats.retransmits,
        stats.delivery_failures,
    ] {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// System-2 (location-independent addressing) shrunk to explorable size:
/// one region, three hosts, two sub-group servers. Users log in and fire
/// sends at the same instant, racing the `LocationUpdate` broadcasts
/// against mail routing — the orderings where mail outruns the location
/// update are exactly the ones a single seed rarely hits.
fn s2_roam_deployment(seed: u64) -> RoamDeployment {
    let mut rng = SimRng::seed(seed).fork("explore-s2-topo");
    let topo = multi_region(
        &mut rng,
        &MultiRegionConfig {
            regions: 1,
            hosts_per_region: 3,
            servers_per_region: 2,
            ..MultiRegionConfig::default()
        },
    );
    let mut d = RoamDeployment::build(&topo, &[1, 1, 1], 16, seed);
    d.sim.enable_trace(usize::MAX);
    let users: Vec<_> = d.users.keys().cloned().collect();
    let homes: Vec<_> = users.iter().map(|u| d.users[u]).collect();
    // Everyone logs in at the same instant — at their *neighbour's* host,
    // so location knowledge matters — and the first user immediately
    // mails the other two, racing the location broadcasts.
    for (i, u) in users.iter().enumerate() {
        d.login_at(t(1.0), u, homes[(i + 1) % homes.len()]);
    }
    d.send_at(t(1.0), &users[0], &users[1]);
    d.send_at(t(1.0), &users[0], &users[2]);
    d.send_at(t(1.0), &users[1], &users[2]);
    d
}

/// Exhaustive exploration of the System-2 roaming scenario.
pub fn s2_roam(seed: u64, bounds: ExploreBounds) -> ExploreOutcome {
    drive(
        "s2-roam",
        "System-2, 2 servers, 3 roaming users: logins race mail routing",
        bounds,
        move || s2_roam_deployment(seed),
        |d, s| d.sim.set_scheduler(s),
        |d| d.sim.run_to_quiescence_bounded(RUN_EVENT_BUDGET),
        system2_checks,
        system2_fingerprint,
    )
}

/// Trace digests of the three explore deployments run once each under the
/// default FIFO engine (no scheduler installed). These are the kernel-level
/// fingerprints `tests/kernel_equivalence.rs` pins against the committed
/// pre-refactor values: the explore workloads exercise contended
/// same-instant ready sets, crash windows, and System-2 roaming on top of
/// the raw event queue, so any kernel ordering change surfaces here.
///
/// # Panics
///
/// Panics if a deployment fails to quiesce within [`RUN_EVENT_BUDGET`] —
/// the shipped explore scenarios always do, so non-quiescence means the
/// engine itself regressed.
pub fn kernel_fifo_digests(seed: u64) -> Vec<(&'static str, u64)> {
    let mut s1 = s1_steady_deployment(seed);
    assert!(
        s1.sim.run_to_quiescence_bounded(RUN_EVENT_BUDGET),
        "s1-steady failed to quiesce"
    );
    let mut s1c = s1_crash_deployment(seed);
    assert!(
        s1c.sim.run_to_quiescence_bounded(RUN_EVENT_BUDGET),
        "s1-crash failed to quiesce"
    );
    let mut s2 = s2_roam_deployment(seed);
    assert!(
        s2.sim.run_to_quiescence_bounded(RUN_EVENT_BUDGET),
        "s2-roam failed to quiesce"
    );
    vec![
        ("s1-steady", s1.sim.trace().digest()),
        ("s1-crash", s1c.sim.trace().digest()),
        ("s2-roam", s2.sim.trace().digest()),
    ]
}

/// Runs every explore scenario with `seed`.
pub fn run_all(seed: u64, bounds: ExploreBounds) -> Vec<ExploreOutcome> {
    vec![
        s1_steady(seed, bounds),
        s1_crash(seed, bounds),
        s2_roam(seed, bounds),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cheap bounds for unit tests: schedule budget trimmed but deep
    /// enough that the shipped scenarios still exhaust (not truncate).
    fn bounds(max_schedules: u64) -> ExploreBounds {
        ExploreBounds {
            max_schedules,
            ..default_bounds()
        }
    }

    #[test]
    fn s2_roam_explores_clean() {
        let o = s2_roam(3, bounds(20_000));
        assert!(
            o.is_clean(),
            "counterexample {:?}",
            o.counterexample
                .as_ref()
                .map(|c| (&c.schedule, &c.violations))
        );
        assert!(o.schedules >= 2, "logins/sends must contend");
    }

    /// Injected violation: a check that rejects a specific message order
    /// must produce a counterexample whose schedule replays to the same
    /// terminal fingerprint.
    #[test]
    fn counterexamples_replay_byte_identically() {
        // Baseline: the FIFO schedule's terminal fingerprint.
        let baseline = {
            let mut d = s1_steady_deployment(3);
            assert!(d.sim.run_to_quiescence_bounded(RUN_EVENT_BUDGET));
            system1_fingerprint(&d)
        };
        let o = drive(
            "synthetic",
            "synthetic failing check",
            bounds(50),
            || s1_steady_deployment(3),
            |d, s| d.sim.set_scheduler(s),
            |d| d.sim.run_to_quiescence_bounded(RUN_EVENT_BUDGET),
            // "Violation": any terminal state that differs from the FIFO
            // baseline. The very second schedule diverges, so the
            // replay-verification path is exercised for real — on a
            // schedule with a non-trivial branch-choice list.
            move |d, _| {
                if system1_fingerprint(d) == baseline {
                    Vec::new()
                } else {
                    vec!["synthetic: diverged from the FIFO baseline".into()]
                }
            },
            system1_fingerprint,
        );
        let cx = o
            .counterexample
            .expect("a non-FIFO schedule must diverge somewhere");
        assert!(!cx.schedule.0.is_empty(), "counterexample must branch");
        assert!(cx.replay_verified, "schedule {} must replay", cx.schedule);
    }
}
