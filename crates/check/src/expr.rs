//! Statement/expression structure over fn bodies — the third parsing
//! layer of the lint engine, sitting on top of [`crate::lex`] (tokens)
//! and [`crate::items`] (scopes).
//!
//! [`items`](crate::items) stops at item granularity: it knows *where*
//! a fn body is (`Scope::body` is a `[start, end)` token range) but not
//! what happens inside. This module parses that range into a statement
//! tree — `let` bindings, `if`/`while`/`loop`/`for`/`match` control
//! flow, `return`/`break`/`continue`, and flat expression statements —
//! precise enough for [`crate::cfg`] to lower into a control-flow graph
//! and for [`crate::flow`] to run dataflow over, while staying
//! deliberately shallow everywhere deeper structure would not change
//! the analyses:
//!
//! * Expression *interiors* are kept as flat token ranges. Taint
//!   transfer functions read ranges token-wise, so a nested
//!   `match`/closure inside a `let` initializer still contributes its
//!   reads and calls without being structurally parsed.
//! * Only statement-position control flow branches the CFG. An `if`
//!   buried in an initializer cannot skip a binding, so flattening it
//!   loses nothing the rules care about.
//!
//! The parser never fails: like [`lex`](crate::lex) and
//! [`items`](crate::items) it is total over arbitrary token streams,
//! degrading to flat `Expr` statements when structure is unrecognised.

use crate::lex::{Tok, TokKind};

/// A half-open token range `[start, end)` into the file's token stream.
pub type Range = (usize, usize);

/// One parsed statement. `range` always covers the whole statement
/// (including any nested blocks), so flat token scans over a statement
/// see everything inside it.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// What kind of statement, with structured sub-ranges.
    pub kind: StmtKind,
    /// Token range of the whole statement.
    pub range: Range,
}

/// A match arm: pattern range plus the arm body as statements (an
/// expression arm becomes a single [`StmtKind::Expr`] statement).
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Token range of the arm's pattern (up to, not including, `=>`).
    pub pat: Range,
    /// The arm body.
    pub body: Vec<Stmt>,
}

/// Statement kinds recognised at statement position.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `let pat[: ty] [= init] [else { .. }];`
    Let {
        /// Pattern range.
        pat: Range,
        /// Explicit type annotation range, if any.
        ty: Option<Range>,
        /// Initializer range (flat), if any.
        init: Option<Range>,
        /// `let .. else` diverging block, if any.
        else_block: Option<Vec<Stmt>>,
    },
    /// `if cond { .. } [else ..]` — `else if` chains nest as a
    /// single-statement `else_branch`.
    If {
        /// Condition range (covers `let pat = expr` for if-let).
        cond: Range,
        /// Then-block statements.
        then_branch: Vec<Stmt>,
        /// Else-block statements (a nested `If` for `else if`).
        else_branch: Option<Vec<Stmt>>,
    },
    /// `while cond { .. }` (covers while-let).
    While {
        /// Condition range.
        cond: Range,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `loop { .. }`
    Loop {
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for pat in iter { .. }`
    For {
        /// Loop pattern range.
        pat: Range,
        /// Iterated expression range.
        iter: Range,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Statement-position `match scrut { arms }`.
    Match {
        /// Scrutinee range.
        scrut: Range,
        /// The arms.
        arms: Vec<MatchArm>,
    },
    /// `return [value];`
    Return {
        /// Returned expression range, if any.
        value: Option<Range>,
    },
    /// `break [label] [value];`
    Break,
    /// `continue [label];`
    Continue,
    /// A bare `{ .. }` (or `unsafe { .. }`) block statement.
    Block(Vec<Stmt>),
    /// Anything else: a flat expression statement (assignment, call
    /// chain, macro invocation, tail expression, …).
    Expr {
        /// The whole flat range.
        range: Range,
    },
}

/// A parsed fn body.
#[derive(Debug, Clone)]
pub struct FnBody {
    /// Top-level statements of the body, in source order.
    pub stmts: Vec<Stmt>,
}

impl FnBody {
    /// Parse the `[lo, hi)` token range of a braced fn body's contents
    /// (the `Scope::body` range from [`crate::items`]). Total: never
    /// panics, never rejects input.
    pub fn parse(toks: &[Tok], lo: usize, hi: usize) -> Self {
        let hi = hi.min(toks.len());
        let lo = lo.min(hi);
        FnBody {
            stmts: parse_stmts(toks, lo, hi),
        }
    }

    /// Visit every statement in the tree, depth-first, in source order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        fn go<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                match &s.kind {
                    StmtKind::Let { else_block, .. } => {
                        if let Some(b) = else_block {
                            go(b, f);
                        }
                    }
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        go(then_branch, f);
                        if let Some(b) = else_branch {
                            go(b, f);
                        }
                    }
                    StmtKind::While { body, .. }
                    | StmtKind::Loop { body }
                    | StmtKind::For { body, .. } => go(body, f),
                    StmtKind::Match { arms, .. } => {
                        for a in arms {
                            go(&a.body, f);
                        }
                    }
                    StmtKind::Block(b) => go(b, f),
                    StmtKind::Return { .. }
                    | StmtKind::Break
                    | StmtKind::Continue
                    | StmtKind::Expr { .. } => {}
                }
            }
        }
        go(&self.stmts, f);
    }
}

/// True for tokens the statement parser should step over entirely.
fn is_skip(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Comment)
}

/// Next non-comment token index at or after `i`, bounded by `hi`.
fn nc(toks: &[Tok], mut i: usize, hi: usize) -> usize {
    while i < hi && is_skip(&toks[i]) {
        i += 1;
    }
    i
}

/// Index just past the block opened by the `{` at `open` (which must be
/// a `{`), bounded by `hi`. Returns `hi` when unbalanced.
pub fn close_brace(toks: &[Tok], open: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    hi
}

/// Scan from `i` for the first token at bracket-depth 0 satisfying
/// `stop`; returns its index (or `hi`). Tracks `(`/`[`/`{` uniformly.
fn scan_depth0(toks: &[Tok], i: usize, hi: usize, mut stop: impl FnMut(&Tok) -> bool) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut j = i;
    while j < hi {
        let t = &toks[j];
        if paren == 0 && bracket == 0 && brace == 0 && stop(t) {
            return j;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => {
                    if brace == 0 {
                        // Closing brace of an enclosing block: hard stop.
                        return j;
                    }
                    brace -= 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    hi
}

/// Find the `{` that opens the block of an `if`/`while`/`for`/`match`
/// header starting at `i`. Rust forbids bare struct literals in these
/// header positions, so the first depth-0 `{` opens the block.
fn header_block_open(toks: &[Tok], i: usize, hi: usize) -> usize {
    scan_depth0(toks, i, hi, |t| t.is_punct('{'))
}

/// End of a `;`-terminated statement starting at `i`: index of the `;`
/// at depth 0, or the enclosing `}` / `hi`.
fn stmt_semi(toks: &[Tok], i: usize, hi: usize) -> usize {
    scan_depth0(toks, i, hi, |t| t.is_punct(';'))
}

fn parse_stmts(toks: &[Tok], lo: usize, hi: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut i = nc(toks, lo, hi);
    while i < hi {
        let (stmt, next) = parse_stmt(toks, i, hi);
        // Guarantee progress on any input.
        let next = next.max(i + 1);
        out.push(stmt);
        i = nc(toks, next, hi);
    }
    out
}

/// Parse one statement starting at non-comment index `i`; returns the
/// statement and the index just past it.
fn parse_stmt(toks: &[Tok], i: usize, hi: usize) -> (Stmt, usize) {
    let t = &toks[i];
    if t.is_ident("let") {
        return parse_let(toks, i, hi);
    }
    if t.is_ident("if") {
        return parse_if(toks, i, hi);
    }
    if t.is_ident("while") {
        return parse_while(toks, i, hi);
    }
    if t.is_ident("loop") {
        return parse_loop(toks, i, hi);
    }
    if t.is_ident("for") {
        return parse_for(toks, i, hi);
    }
    if t.is_ident("match") {
        return parse_match(toks, i, hi);
    }
    if t.is_ident("return") {
        let end = stmt_semi(toks, i + 1, hi);
        let value = if nc(toks, i + 1, end) < end {
            Some((i + 1, end))
        } else {
            None
        };
        return (
            Stmt {
                kind: StmtKind::Return { value },
                range: (i, semi_incl(toks, end, hi)),
            },
            semi_incl(toks, end, hi),
        );
    }
    if t.is_ident("break") || t.is_ident("continue") {
        let kind = if t.is_ident("break") {
            StmtKind::Break
        } else {
            StmtKind::Continue
        };
        let end = stmt_semi(toks, i + 1, hi);
        let past = semi_incl(toks, end, hi);
        return (
            Stmt {
                kind,
                range: (i, past),
            },
            past,
        );
    }
    if t.is_punct('{') {
        let past = close_brace(toks, i, hi);
        let body = parse_stmts(toks, i + 1, past.saturating_sub(1).max(i + 1));
        return (
            Stmt {
                kind: StmtKind::Block(body),
                range: (i, past),
            },
            past,
        );
    }
    if t.is_ident("unsafe") {
        let open = nc(toks, i + 1, hi);
        if open < hi && toks[open].is_punct('{') {
            let past = close_brace(toks, open, hi);
            let body = parse_stmts(toks, open + 1, past.saturating_sub(1).max(open + 1));
            return (
                Stmt {
                    kind: StmtKind::Block(body),
                    range: (i, past),
                },
                past,
            );
        }
    }
    // Flat expression statement. Scan to `;` at depth 0. A statement
    // that *starts* with something block-terminated we did not
    // recognise (attribute'd nested items, nested fns, …) falls out of
    // the depth-0 scan correctly because its braces are balanced.
    let end = stmt_semi(toks, i, hi);
    let past = semi_incl(toks, end, hi);
    (
        Stmt {
            kind: StmtKind::Expr { range: (i, past) },
            range: (i, past),
        },
        past,
    )
}

/// If `end` points at a `;`, include it; otherwise return `end`.
fn semi_incl(toks: &[Tok], end: usize, hi: usize) -> usize {
    if end < hi && toks[end].is_punct(';') {
        end + 1
    } else {
        end
    }
}

fn parse_let(toks: &[Tok], i: usize, hi: usize) -> (Stmt, usize) {
    // let PAT [: TY] [= INIT [else { .. }]] ;
    let start = i;
    let pat_start = nc(toks, i + 1, hi);
    // Pattern runs to the first depth-0 `:` (type annotation), `=`
    // (initializer), or `;`. `::` path separators (lexed as two `:`
    // puncts) are stepped over; `==`/`=>` cannot appear at depth 0
    // inside a pattern, so a bare `=` check suffices.
    let pat_end = {
        let mut j = pat_start;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        let mut end = hi;
        while j < hi {
            let t = &toks[j];
            if paren == 0 && bracket == 0 && brace == 0 {
                if t.is_punct(';') || t.is_punct('=') || t.is_punct('}') {
                    end = j;
                    break;
                }
                if t.is_punct(':') {
                    if j + 1 < hi && toks[j + 1].is_punct(':') {
                        j += 2;
                        continue;
                    }
                    end = j;
                    break;
                }
            }
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                _ => {}
            }
            j += 1;
        }
        end
    };

    let mut ty = None;
    let mut j = pat_end;
    if j < hi && toks[j].is_punct(':') {
        // Type runs to `=` or `;` at depth 0.
        let ty_start = j + 1;
        let ty_end = scan_depth0(toks, ty_start, hi, |t| t.is_punct('=') || t.is_punct(';'));
        ty = Some((ty_start, ty_end));
        j = ty_end;
    }

    let mut init = None;
    let mut else_block = None;
    let mut past;
    if j < hi && toks[j].is_punct('=') {
        let init_start = j + 1;
        // Initializer runs to `;` at depth 0, or to a depth-0 `else`
        // (let-else).
        let init_end = scan_depth0(toks, init_start, hi, |t| {
            t.is_punct(';') || t.is_ident("else")
        });
        init = Some((init_start, init_end));
        if init_end < hi && toks[init_end].is_ident("else") {
            let open = nc(toks, init_end + 1, hi);
            if open < hi && toks[open].is_punct('{') {
                let block_past = close_brace(toks, open, hi);
                else_block = Some(parse_stmts(toks, open + 1, block_past.saturating_sub(1)));
                let after = nc(toks, block_past, hi);
                past = semi_incl(toks, after, hi);
            } else {
                past = semi_incl(toks, init_end, hi);
            }
        } else {
            past = semi_incl(toks, init_end, hi);
        }
    } else {
        let end = stmt_semi(toks, j, hi);
        past = semi_incl(toks, end, hi);
    }
    if past <= start {
        past = start + 1;
    }
    (
        Stmt {
            kind: StmtKind::Let {
                pat: (pat_start, pat_end),
                ty,
                init,
                else_block,
            },
            range: (start, past),
        },
        past,
    )
}

fn parse_block_body(toks: &[Tok], open: usize, hi: usize) -> (Vec<Stmt>, usize) {
    let past = close_brace(toks, open, hi);
    let inner_hi = past.saturating_sub(1).max(open + 1);
    (parse_stmts(toks, open + 1, inner_hi), past)
}

fn parse_if(toks: &[Tok], i: usize, hi: usize) -> (Stmt, usize) {
    let open = header_block_open(toks, i + 1, hi);
    if open >= hi || !toks[open].is_punct('{') {
        // Malformed — treat as flat.
        let end = stmt_semi(toks, i, hi);
        let past = semi_incl(toks, end, hi).max(i + 1);
        return (
            Stmt {
                kind: StmtKind::Expr { range: (i, past) },
                range: (i, past),
            },
            past,
        );
    }
    let cond = (i + 1, open);
    let (then_branch, mut past) = parse_block_body(toks, open, hi);
    let mut else_branch = None;
    let after = nc(toks, past, hi);
    if after < hi && toks[after].is_ident("else") {
        let next = nc(toks, after + 1, hi);
        if next < hi && toks[next].is_ident("if") {
            let (nested, p) = parse_if(toks, next, hi);
            past = p;
            else_branch = Some(vec![nested]);
        } else if next < hi && toks[next].is_punct('{') {
            let (body, p) = parse_block_body(toks, next, hi);
            past = p;
            else_branch = Some(body);
        }
    }
    (
        Stmt {
            kind: StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            range: (i, past),
        },
        past,
    )
}

fn parse_while(toks: &[Tok], i: usize, hi: usize) -> (Stmt, usize) {
    let open = header_block_open(toks, i + 1, hi);
    if open >= hi || !toks[open].is_punct('{') {
        let end = stmt_semi(toks, i, hi);
        let past = semi_incl(toks, end, hi).max(i + 1);
        return (
            Stmt {
                kind: StmtKind::Expr { range: (i, past) },
                range: (i, past),
            },
            past,
        );
    }
    let cond = (i + 1, open);
    let (body, past) = parse_block_body(toks, open, hi);
    (
        Stmt {
            kind: StmtKind::While { cond, body },
            range: (i, past),
        },
        past,
    )
}

fn parse_loop(toks: &[Tok], i: usize, hi: usize) -> (Stmt, usize) {
    let open = nc(toks, i + 1, hi);
    if open >= hi || !toks[open].is_punct('{') {
        let end = stmt_semi(toks, i, hi);
        let past = semi_incl(toks, end, hi).max(i + 1);
        return (
            Stmt {
                kind: StmtKind::Expr { range: (i, past) },
                range: (i, past),
            },
            past,
        );
    }
    let (body, past) = parse_block_body(toks, open, hi);
    (
        Stmt {
            kind: StmtKind::Loop { body },
            range: (i, past),
        },
        past,
    )
}

fn parse_for(toks: &[Tok], i: usize, hi: usize) -> (Stmt, usize) {
    // for PAT in ITER { .. }
    let pat_start = nc(toks, i + 1, hi);
    let in_kw = scan_depth0(toks, pat_start, hi, |t| t.is_ident("in") || t.is_punct('{'));
    if in_kw >= hi || !toks[in_kw].is_ident("in") {
        let end = stmt_semi(toks, i, hi);
        let past = semi_incl(toks, end, hi).max(i + 1);
        return (
            Stmt {
                kind: StmtKind::Expr { range: (i, past) },
                range: (i, past),
            },
            past,
        );
    }
    let open = header_block_open(toks, in_kw + 1, hi);
    if open >= hi || !toks[open].is_punct('{') {
        let end = stmt_semi(toks, i, hi);
        let past = semi_incl(toks, end, hi).max(i + 1);
        return (
            Stmt {
                kind: StmtKind::Expr { range: (i, past) },
                range: (i, past),
            },
            past,
        );
    }
    let (body, past) = parse_block_body(toks, open, hi);
    (
        Stmt {
            kind: StmtKind::For {
                pat: (pat_start, in_kw),
                iter: (in_kw + 1, open),
                body,
            },
            range: (i, past),
        },
        past,
    )
}

fn parse_match(toks: &[Tok], i: usize, hi: usize) -> (Stmt, usize) {
    let open = header_block_open(toks, i + 1, hi);
    if open >= hi || !toks[open].is_punct('{') {
        let end = stmt_semi(toks, i, hi);
        let past = semi_incl(toks, end, hi).max(i + 1);
        return (
            Stmt {
                kind: StmtKind::Expr { range: (i, past) },
                range: (i, past),
            },
            past,
        );
    }
    let scrut = (i + 1, open);
    let past = close_brace(toks, open, hi);
    let inner_hi = past.saturating_sub(1).max(open + 1);
    let mut arms = Vec::new();
    let mut j = nc(toks, open + 1, inner_hi);
    while j < inner_hi {
        // Pattern runs to `=>` at depth 0 (lexed as `=` `>`).
        let mut arrow;
        {
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut brace = 0i32;
            let mut k = j;
            arrow = inner_hi;
            while k < inner_hi {
                let t = &toks[k];
                if paren == 0
                    && bracket == 0
                    && brace == 0
                    && t.is_punct('=')
                    && k + 1 < inner_hi
                    && toks[k + 1].is_punct('>')
                {
                    arrow = k;
                    break;
                }
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        if arrow >= inner_hi {
            break;
        }
        let pat = (j, arrow);
        let body_start = nc(toks, arrow + 2, inner_hi);
        if body_start >= inner_hi {
            arms.push(MatchArm {
                pat,
                body: Vec::new(),
            });
            break;
        }
        let (body, body_past) = if toks[body_start].is_punct('{') {
            let p = close_brace(toks, body_start, inner_hi);
            (
                parse_stmts(
                    toks,
                    body_start + 1,
                    p.saturating_sub(1).max(body_start + 1),
                ),
                p,
            )
        } else {
            // Expression arm: runs to `,` at depth 0 or the match end.
            let end = scan_depth0(toks, body_start, inner_hi, |t| t.is_punct(','));
            (
                vec![Stmt {
                    kind: StmtKind::Expr {
                        range: (body_start, end),
                    },
                    range: (body_start, end),
                }],
                end,
            )
        };
        arms.push(MatchArm { pat, body });
        let mut k = nc(toks, body_past, inner_hi);
        if k < inner_hi && toks[k].is_punct(',') {
            k += 1;
        }
        let k = nc(toks, k, inner_hi);
        if k <= j {
            break;
        }
        j = k;
    }
    (
        Stmt {
            kind: StmtKind::Match { scrut, arms },
            range: (i, past),
        },
        past,
    )
}

/// Rust keywords and pattern noise words that can never be value
/// bindings.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

/// Extract the value bindings introduced by a pattern range: lowercase
/// idents that are not keywords, not path segments (`a::b`), and not
/// struct-pattern field *names* (`Foo { name: binding }` — the binding
/// follows the `:`). Returns `(name, token_index)` pairs.
pub fn pattern_bindings(toks: &[Tok], range: Range) -> Vec<(String, usize)> {
    let (lo, hi) = range;
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Ident || t.kind == TokKind::RawIdent {
            let name = t.text.as_str();
            let first = name.chars().next().unwrap_or('_');
            let bindable =
                (first.is_ascii_lowercase() || first == '_') && name != "_" && !is_keyword(name);
            if bindable {
                // Skip path segments: `a::b` or `::a`.
                let path_before =
                    i >= 2 && i - 2 >= lo && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
                let path_after =
                    i + 2 < hi && toks[i + 1].is_punct(':') && toks[i + 2].is_punct(':');
                // Skip struct-pattern field names: ident followed by a
                // single `:` (the binding is the next ident).
                let field_name = i + 1 < hi
                    && toks[i + 1].is_punct(':')
                    && !(i + 2 < hi && toks[i + 2].is_punct(':'));
                // Skip macro names: `ident!`.
                let macro_name = i + 1 < hi && toks[i + 1].is_punct('!');
                if !path_before && !path_after && !field_name && !macro_name {
                    out.push((t.text.clone(), i));
                }
            }
        }
        i += 1;
    }
    out
}

/// A call site found in a flat token range.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name: method name for `recv.name(..)`, the final path
    /// segment for `a::b::name(..)`, or a bare fn name for `name(..)`.
    pub name: String,
    /// Token index of the name.
    pub at: usize,
    /// For a method call, the token index of the receiver ident
    /// immediately before the `.` (e.g. `x` in `x.iter()` or the field
    /// `f` in `self.f.iter()`); `None` for path/bare calls.
    pub recv: Option<usize>,
    /// For a path call, the path segment before the final `::` (e.g.
    /// `HashMap` in `HashMap::new(..)`); `None` otherwise.
    pub path_qual: Option<String>,
    /// Token range of the parenthesised argument list *contents*.
    pub args: Range,
    /// Argument sub-ranges, split on depth-0 commas inside `args`.
    pub arg_ranges: Vec<Range>,
}

/// Find every call site in `[lo, hi)`: `name(..)` where `name` is an
/// ident directly followed by `(` (generic turbofish `name::<T>(..)` is
/// also recognised). Macro invocations (`name!(..)`) are excluded.
pub fn call_sites(toks: &[Tok], range: Range) -> Vec<CallSite> {
    let (lo, hi) = range;
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident || t.kind == TokKind::RawIdent) || is_keyword(&t.text) {
            i += 1;
            continue;
        }
        // Find the `(` that would make this a call: either directly
        // after the name, or after a `::<..>` turbofish.
        let mut j = i + 1;
        if j + 1 < hi && toks[j].is_punct(':') && toks[j + 1].is_punct(':') {
            let k = j + 2;
            if k < hi && toks[k].is_punct('<') {
                // Skip the turbofish generic list.
                let mut depth = 0i32;
                let mut m = k;
                while m < hi {
                    if toks[m].is_punct('<') {
                        depth += 1;
                    } else if toks[m].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                j = m + 1;
            } else {
                // Plain path continues; the final segment will be
                // visited on a later iteration.
                i += 1;
                continue;
            }
        }
        if j >= hi || !toks[j].is_punct('(') {
            i += 1;
            continue;
        }
        // Exclude macro calls: `name!(..)`.
        if i + 1 < hi && toks[i + 1].is_punct('!') {
            i += 1;
            continue;
        }
        // Receiver: `recv . name (` — recv is the ident before the `.`.
        let mut recv = None;
        let mut path_qual = None;
        if i >= 1 && toks[i - 1].is_punct('.') && i >= 2 {
            let r = i - 2;
            if toks[r].kind == TokKind::Ident || toks[r].kind == TokKind::RawIdent {
                recv = Some(r);
            }
        } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') && i >= 3 {
            let q = i - 3;
            if toks[q].kind == TokKind::Ident {
                path_qual = Some(toks[q].text.clone());
            } else if toks[q].is_punct('>') {
                // `Type::<..>::name(` or `<T as Trait>::name(` — record
                // no qualifier rather than misattribute.
            }
        }
        // Argument list contents.
        let close = {
            let mut depth = 0i32;
            let mut m = j;
            let mut c = hi;
            while m < hi {
                if toks[m].is_punct('(') {
                    depth += 1;
                } else if toks[m].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        c = m;
                        break;
                    }
                }
                m += 1;
            }
            c
        };
        let args = (j + 1, close.min(hi));
        let mut arg_ranges = Vec::new();
        {
            let (alo, ahi) = args;
            let mut start = alo;
            let mut k = alo;
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut brace = 0i32;
            let mut angle = 0i32;
            while k < ahi {
                let tk = &toks[k];
                match tk.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    "|" => {
                        // Closure params `|a, b|`: commas inside should
                        // not split. Approximate by toggling.
                        angle = 1 - angle;
                    }
                    "," if paren == 0 && bracket == 0 && brace == 0 && angle == 0 => {
                        if k > start {
                            arg_ranges.push((start, k));
                        }
                        start = k + 1;
                    }
                    _ => {}
                }
                k += 1;
            }
            if ahi > start {
                arg_ranges.push((start, ahi));
            }
        }
        out.push(CallSite {
            name: t.text.clone(),
            at: i,
            recv,
            path_qual,
            args,
            arg_ranges,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn body_of(src: &str) -> (Vec<Tok>, usize, usize) {
        let toks = lex(src);
        let open = toks.iter().position(|t| t.is_punct('{')).unwrap();
        let close = toks.len() - 1;
        (toks, open + 1, close)
    }

    #[test]
    fn parses_let_if_and_flat_statements() {
        let (toks, lo, hi) =
            body_of("fn f() { let x: u32 = g(1); if x > 2 { h(x); } else { k(); } x + 1 }");
        let body = FnBody::parse(&toks, lo, hi);
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(
            body.stmts[0].kind,
            StmtKind::Let {
                ty: Some(_),
                init: Some(_),
                ..
            }
        ));
        match &body.stmts[1].kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.as_ref().unwrap().len(), 1);
            }
            other => panic!("expected If, got {other:?}"),
        }
        assert!(matches!(body.stmts[2].kind, StmtKind::Expr { .. }));
    }

    #[test]
    fn parses_loops_match_and_let_else() {
        let src = "fn f() { for x in xs { g(x); } while a < b { a += 1; } loop { break; } \
                   match m { Some(v) => use_it(v), None => {} } \
                   let Some(y) = opt else { return; }; y }";
        let (toks, lo, hi) = body_of(src);
        let body = FnBody::parse(&toks, lo, hi);
        let kinds: Vec<&str> = body
            .stmts
            .iter()
            .map(|s| match &s.kind {
                StmtKind::For { .. } => "for",
                StmtKind::While { .. } => "while",
                StmtKind::Loop { .. } => "loop",
                StmtKind::Match { .. } => "match",
                StmtKind::Let { .. } => "let",
                StmtKind::Expr { .. } => "expr",
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(kinds, ["for", "while", "loop", "match", "let", "expr"]);
        match &body.stmts[3].kind {
            StmtKind::Match { arms, .. } => assert_eq!(arms.len(), 2),
            _ => unreachable!(),
        }
        match &body.stmts[4].kind {
            StmtKind::Let { else_block, .. } => {
                let eb = else_block.as_ref().expect("let-else block");
                assert!(matches!(eb[0].kind, StmtKind::Return { .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn pattern_bindings_skip_paths_fields_and_constructors() {
        let toks = lex("Some(Message { id: msg_id, owner }) | Other(x)");
        let binds = pattern_bindings(&toks, (0, toks.len()));
        let names: Vec<&str> = binds.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["msg_id", "owner", "x"]);
    }

    #[test]
    fn call_sites_capture_receiver_path_and_args() {
        let toks = lex("let v = map.iter().count(); HashMap::new(); free(a, b.c(d), e);");
        let calls = call_sites(&toks, (0, toks.len()));
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["iter", "count", "new", "free", "c"]);
        let iter = &calls[0];
        assert_eq!(toks[iter.recv.unwrap()].text, "map");
        let new = &calls[2];
        assert_eq!(new.path_qual.as_deref(), Some("HashMap"));
        let free = &calls[3];
        assert_eq!(free.arg_ranges.len(), 3);
    }

    #[test]
    fn parser_is_total_on_garbage() {
        let toks = lex("fn f() { ) } { let = ; match { => , } if else while ( }");
        let _ = FnBody::parse(&toks, 0, toks.len());
    }
}
