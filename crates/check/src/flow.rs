//! Worklist dataflow over per-fn CFGs with fn summaries propagated to
//! fixpoint through the per-crate call graph — the engine behind the
//! flow-aware lint rules (`determinism-taint`, `store-mutation-
//! discipline`, `no-ignored-store-errors`, and the re-expressed
//! `rng-fork-discipline`).
//!
//! ## Taint lattice
//!
//! A dataflow fact maps variable names to a bitmask of labels:
//!
//! * **Root labels** — the nondeterminism sources the rules hunt:
//!   [`L_WALL`] (wall-clock reads), [`L_HASH`] (hash-map/set iteration
//!   order), [`L_RAND`] (ambient randomness). Once a root label reaches
//!   an emission or scheduling sink, determinism is gone.
//! * **Parameter labels** — bit `PARAM_SHIFT + i` stands for "derived
//!   from the fn's `i`-th parameter". Running one dataflow pass per fn
//!   with parameters seeded by their own bit yields the fn's *summary*
//!   in a single pass: which root labels its return value carries, and
//!   which parameters flow to the return value or into a sink.
//!
//! Join is bitwise OR; transfer functions evaluate flat token ranges
//! (union of the labels of every known variable mentioned, plus fresh
//! source labels, plus callee-summary labels at call sites), so the
//! analysis is conservative about expression structure while staying
//! path-sensitive enough to follow `let` chains, loop-carried taint
//! (the worklist iterates back-edges to fixpoint), and helper fns
//! (summaries iterate through the crate's name-keyed call graph to
//! fixpoint, the same approximation `rng-fork-discipline` shipped with
//! in engine v2).
//!
//! ## Type classes
//!
//! Flow rules need *some* typing — `.iter()` on a `HashMap` taints,
//! `.iter()` on a `Vec` does not; `.remove(..)` on a `Mailbox` is a
//! durable-state mutation, `.remove(..)` on a cache is not. Instead of
//! type inference, the engine classifies names from declared evidence:
//! parameter and `let` type annotations, constructor calls
//! (`HashMap::new()`, `Mailbox::new(..)`), struct field declarations
//! (scanned per crate), generic bounds (`S: SegmentIo`), and `for`
//! bindings over classified collections. Unclassified names are
//! [`TypeClass::Other`] and never fire.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::Cfg;
use crate::expr::{call_sites, pattern_bindings, CallSite, FnBody, Range};
use crate::items::{ParsedFile, ScopeKind};
use crate::lex::{Tok, TokKind};

/// Label bit: value derived from a wall-clock read (`SystemTime`,
/// `Instant`).
pub const L_WALL: u32 = 1;
/// Label bit: value derived from hash-map/set iteration order.
pub const L_HASH: u32 = 1 << 1;
/// Label bit: value derived from ambient randomness (`thread_rng`).
pub const L_RAND: u32 = 1 << 2;
/// All root (source) labels.
pub const ROOT_MASK: u32 = L_WALL | L_HASH | L_RAND;
/// First parameter bit; parameter `i` owns bit `PARAM_SHIFT + i`.
pub const PARAM_SHIFT: u32 = 8;
/// Parameters beyond this many get no bit (their flows are dropped).
pub const MAX_PARAMS: usize = 24;

/// The label bit for parameter index `i`, or 0 when out of range.
pub fn param_bit(i: usize) -> u32 {
    if i < MAX_PARAMS {
        1 << (PARAM_SHIFT as usize + i)
    } else {
        0
    }
}

/// Human-readable names of the root labels present in `bits`.
pub fn root_names(bits: u32) -> Vec<&'static str> {
    let mut out = Vec::new();
    if bits & L_WALL != 0 {
        out.push("wall-clock");
    }
    if bits & L_HASH != 0 {
        out.push("hash-iteration-order");
    }
    if bits & L_RAND != 0 {
        out.push("ambient-randomness");
    }
    out
}

/// Declared-evidence type classes; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeClass {
    /// `HashMap`/`HashSet`: iteration order is nondeterministic.
    Hash,
    /// A `lems_core` `Mailbox` value: durable state.
    Mailbox,
    /// A map holding `Mailbox` values (the ledger itself).
    MailboxMap,
    /// The sanctioned durable-state API (`MailStore` impls,
    /// `StoreState`): calls through it are the discipline, not a
    /// violation.
    Store,
    /// A WAL segment backend (`SegmentIo` impls): its operations return
    /// `Result`s that must not be swallowed.
    StoreIo,
    /// A write-ahead log (`Wal`/`WalStore`): same fallible surface.
    Wal,
    /// Everything else: inert for every flow rule.
    Other,
}

/// Classify a type annotation's token range. `storeio_generics` holds
/// generic parameter names bounded by `SegmentIo` in the same file
/// (`impl<S: SegmentIo> …` makes a field `io: S` a [`TypeClass::
/// StoreIo`]).
pub fn classify_type(toks: &[Tok], range: Range, storeio_generics: &BTreeSet<String>) -> TypeClass {
    let (lo, hi) = range;
    let hi = hi.min(toks.len());
    let has = |name: &str| (lo..hi).any(|i| toks[i].is_ident(name));
    if has("MailStore") || has("StoreState") {
        return TypeClass::Store;
    }
    if has("Mailbox") {
        if has("BTreeMap") || has("HashMap") {
            return TypeClass::MailboxMap;
        }
        return TypeClass::Mailbox;
    }
    if has("HashMap") || has("HashSet") {
        return TypeClass::Hash;
    }
    if has("Wal") || has("WalStore") {
        return TypeClass::Wal;
    }
    if has("SegmentIo") || has("MemSegments") || has("FileSegments") {
        return TypeClass::StoreIo;
    }
    if (lo..hi)
        .any(|i| toks[i].kind == TokKind::Ident && storeio_generics.contains(toks[i].text.as_str()))
    {
        return TypeClass::StoreIo;
    }
    TypeClass::Other
}

/// Generic parameters bounded by `SegmentIo` anywhere in the file
/// (`impl<S: SegmentIo>`, `fn f<S: SegmentIo>`): their names classify
/// as [`TypeClass::StoreIo`] in the same file.
pub fn storeio_generics(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("SegmentIo")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].kind == TokKind::Ident
            && !toks[i - 2].text.is_empty()
            && toks[i - 2]
                .text
                .chars()
                .next()
                .is_some_and(char::is_uppercase)
        {
            out.insert(toks[i - 2].text.clone());
        }
    }
    out
}

/// Struct-field type classes scanned from `struct Name { field: Type }`
/// declarations. Keyed by field name; fields classing as `Other` are
/// omitted. The table is per-crate (callers merge files), which bounds
/// name-collision blast radius to one crate.
pub fn field_classes(toks: &[Tok], storeio: &BTreeSet<String>) -> BTreeMap<String, TypeClass> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        // struct NAME [<generics>] { fields } | ( .. ); | ;
        let mut j = i + 1;
        // Find the body `{` at angle-depth 0; `(`/`;` means tuple/unit.
        let mut angle = 0i32;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && j >= 1 && !toks[j - 1].is_punct('-') {
                angle -= 1;
            } else if angle <= 0 && (t.is_punct('(') || t.is_punct(';')) {
                break;
            } else if angle <= 0 && t.is_punct('{') {
                open = Some(j);
                break;
            } else if t.is_ident("where") {
                // `struct S<T> where …: bound { … }` — bounds may nest
                // arbitrarily; bail on this struct rather than misread.
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = crate::expr::close_brace(toks, open, toks.len());
        // Fields: `name : TYPE ,` at brace-depth 1.
        let mut k = open + 1;
        while k < close.saturating_sub(1) {
            let t = &toks[k];
            if (t.kind == TokKind::Ident || t.kind == TokKind::RawIdent)
                && k + 1 < close
                && toks[k + 1].is_punct(':')
                && !(k + 2 < close && toks[k + 2].is_punct(':'))
            {
                // Type runs to the `,` at depth 0 relative to the body.
                let ty_start = k + 2;
                let mut depth = 0i32;
                let mut angle = 0i32;
                let mut m = ty_start;
                while m < close - 1 {
                    let u = &toks[m];
                    if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                        depth += 1;
                    } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                        depth -= 1;
                    } else if u.is_punct('<') {
                        angle += 1;
                    } else if u.is_punct('>') && m >= 1 && !toks[m - 1].is_punct('-') {
                        angle -= 1;
                    } else if u.is_punct(',') && depth == 0 && angle == 0 {
                        break;
                    }
                    m += 1;
                }
                let class = classify_type(toks, (ty_start, m), storeio);
                if class != TypeClass::Other {
                    out.entry(toks[k].text.clone()).or_insert(class);
                }
                k = m;
            }
            k += 1;
        }
        i = close.max(i + 1);
    }
    out
}

/// One parameter: its binding name and class.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name.
    pub name: String,
    /// Declared-type class.
    pub class: TypeClass,
}

/// Parse a fn signature's parameter list (the `sig` token range from
/// [`crate::items`], i.e. everything after the fn name) into ordered
/// parameters.
pub fn params_of(toks: &[Tok], sig: Range, storeio: &BTreeSet<String>) -> Vec<Param> {
    let (lo, hi) = sig;
    let hi = hi.min(toks.len());
    // Find the parameter-list `(` at angle-depth 0 (generics may hold
    // `Fn(..)` bounds, which live at angle-depth ≥ 1).
    let mut angle = 0i32;
    let mut open = None;
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && i >= 1 && !toks[i - 1].is_punct('-') {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            open = Some(i);
            break;
        }
        i += 1;
    }
    let Some(open) = open else {
        return Vec::new();
    };
    // Matching close paren.
    let mut depth = 0i32;
    let mut close = hi;
    let mut j = open;
    while j < hi {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                close = j;
                break;
            }
        }
        j += 1;
    }
    // Split params on commas at all-depth 0 inside the parens.
    let mut params = Vec::new();
    let mut seg_start = open + 1;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut angle = 0i32;
    let mut k = open + 1;
    loop {
        let at_end = k >= close;
        let split = at_end
            || (paren == 0 && bracket == 0 && brace == 0 && angle == 0 && toks[k].is_punct(','));
        if split {
            if k > seg_start {
                params.extend(param_of_segment(toks, (seg_start, k), storeio));
            }
            seg_start = k + 1;
            if at_end {
                break;
            }
        } else {
            let t = &toks[k];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && k >= 1 && !toks[k - 1].is_punct('-') {
                angle -= 1;
            }
        }
        k += 1;
    }
    params
}

/// One `pattern: Type` parameter segment → its bindings with the
/// segment's class. A bare `self` receiver yields a `self` param of
/// class `Other` (field accesses go through the field table instead).
fn param_of_segment(toks: &[Tok], seg: Range, storeio: &BTreeSet<String>) -> Vec<Param> {
    let (lo, hi) = seg;
    // Split at the first depth-0 single `:`.
    let mut depth = 0i32;
    let mut colon = None;
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')')
            || t.is_punct(']')
            || t.is_punct('}')
            || (t.is_punct('>') && i >= 1 && !toks[i - 1].is_punct('-'))
        {
            depth -= 1;
        } else if t.is_punct(':') && depth == 0 {
            if i + 1 < hi && toks[i + 1].is_punct(':') {
                i += 2;
                continue;
            }
            colon = Some(i);
            break;
        }
        i += 1;
    }
    let Some(colon) = colon else {
        // Receiver (`self`, `&mut self`) or malformed: name it if it is
        // a self param, classless.
        if (lo..hi).any(|i| toks[i].is_ident("self")) {
            return vec![Param {
                name: "self".to_owned(),
                class: TypeClass::Other,
            }];
        }
        return Vec::new();
    };
    let class = classify_type(toks, (colon + 1, hi), storeio);
    pattern_bindings(toks, (lo, colon))
        .into_iter()
        .map(|(name, _)| Param { name, class })
        .collect()
}

/// Per-fn analysis context: everything the transfer functions need.
pub struct FnCtx<'a> {
    /// The file's token stream.
    pub toks: &'a [Tok],
    /// The fn's parsed body.
    pub body: &'a FnBody,
    /// The fn's CFG.
    pub cfg: &'a Cfg,
    /// Ordered parameters.
    pub params: &'a [Param],
    /// Local variable classes (params + `let` evidence), by name.
    pub classes: &'a BTreeMap<String, TypeClass>,
    /// Struct-field classes for the crate.
    pub fields: &'a BTreeMap<String, TypeClass>,
}

impl FnCtx<'_> {
    /// The class of a name: local evidence first, then field
    /// declarations.
    pub fn class_of(&self, name: &str) -> TypeClass {
        self.classes
            .get(name)
            .copied()
            .or_else(|| self.fields.get(name).copied())
            .unwrap_or(TypeClass::Other)
    }

    /// Class of a call's receiver token, if any.
    pub fn recv_class(&self, call: &CallSite) -> TypeClass {
        call.recv
            .map_or(TypeClass::Other, |r| self.class_of(&self.toks[r].text))
    }
}

/// Build the local class environment for one fn: parameter classes plus
/// `let` evidence (type annotations, constructor calls, bindings over
/// classified collections).
pub fn local_classes(
    toks: &[Tok],
    body: &FnBody,
    params: &[Param],
    fields: &BTreeMap<String, TypeClass>,
    storeio: &BTreeSet<String>,
) -> BTreeMap<String, TypeClass> {
    let mut env: BTreeMap<String, TypeClass> = params
        .iter()
        .filter(|p| p.class != TypeClass::Other)
        .map(|p| (p.name.clone(), p.class))
        .collect();
    // Two passes so a classified binding can classify a later one.
    for _ in 0..2 {
        body.walk(&mut |s| {
            use crate::expr::StmtKind;
            let (pat, ty, init, iterates) = match &s.kind {
                StmtKind::Let { pat, ty, init, .. } => (*pat, *ty, *init, false),
                StmtKind::For { pat, iter, .. } => (*pat, None, Some(*iter), true),
                _ => return,
            };
            let mut class = ty.map_or(TypeClass::Other, |t| classify_type(toks, t, storeio));
            if class == TypeClass::Other {
                if let Some(init) = init {
                    class = init_class(toks, init, &env, fields, iterates);
                }
            }
            if class != TypeClass::Other {
                for (name, _) in pattern_bindings(toks, pat) {
                    env.entry(name).or_insert(class);
                }
            }
        });
    }
    env
}

/// Infer a binding's class from its initializer (or `for` iterable):
/// constructor paths (`HashMap::new`, `Mailbox::new`), or projection
/// out of an already-classified collection.
fn init_class(
    toks: &[Tok],
    init: Range,
    env: &BTreeMap<String, TypeClass>,
    fields: &BTreeMap<String, TypeClass>,
    iterates: bool,
) -> TypeClass {
    let class_of = |name: &str| {
        env.get(name)
            .copied()
            .or_else(|| fields.get(name).copied())
            .unwrap_or(TypeClass::Other)
    };
    for call in call_sites(toks, init) {
        if let Some(q) = &call.path_qual {
            match (q.as_str(), call.name.as_str()) {
                ("HashMap" | "HashSet", "new" | "with_capacity" | "from") => {
                    return TypeClass::Hash
                }
                ("Mailbox", "new") => return TypeClass::Mailbox,
                ("Wal" | "WalStore", "open" | "new") => return TypeClass::Wal,
                ("FileSegments", "open") | ("MemSegments", "new") => return TypeClass::StoreIo,
                _ => {}
            }
        }
    }
    // Projection: iterating or indexing into a Mailbox-valued map
    // yields Mailbox bindings; iterating a Hash collection does not
    // *class* the binding (taint handles order-dependence instead).
    let mentions = |class: TypeClass| {
        let (lo, hi) = init;
        (lo..hi.min(toks.len())).any(|i| {
            (toks[i].kind == TokKind::Ident || toks[i].kind == TokKind::RawIdent)
                && class_of(&toks[i].text) == class
        })
    };
    if mentions(TypeClass::MailboxMap) {
        let projecting = iterates
            || call_sites(toks, init).iter().any(|c| {
                matches!(
                    c.name.as_str(),
                    "entry"
                        | "get_mut"
                        | "get"
                        | "or_insert"
                        | "or_insert_with"
                        | "or_default"
                        | "values_mut"
                        | "values"
                        | "iter_mut"
                        | "iter"
                )
            });
        if projecting {
            return TypeClass::Mailbox;
        }
    }
    TypeClass::Other
}

/// A fn summary: what flows out of (and through) a fn, iterated to
/// fixpoint across the crate's name-keyed call graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Root labels the return value can carry.
    pub ret_roots: u32,
    /// Bitmask of parameter indices whose taint flows to the return
    /// value.
    pub param_to_ret: u32,
    /// Bitmask of parameter indices whose taint flows into an emission
    /// sink inside this fn (or transitively through its callees).
    pub param_to_sink: u32,
}

/// Methods whose call on a [`TypeClass::Hash`] receiver yields
/// iteration-order-dependent values.
pub const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Configuration for a taint run: source idents and sink call names.
pub struct TaintConfig<'a> {
    /// Idents that inject [`L_WALL`] wherever they appear.
    pub wall_idents: &'a [&'a str],
    /// Idents that inject [`L_RAND`].
    pub rand_idents: &'a [&'a str],
    /// Call names that count as emission/scheduling sinks.
    pub sinks: &'a [&'a str],
}

/// One tainted-sink hit inside a fn.
#[derive(Debug, Clone)]
pub struct SinkHit {
    /// Token index of the sink call name.
    pub at: usize,
    /// The sink call name.
    pub sink: String,
    /// The labels that reached it (root bits plus param bits).
    pub bits: u32,
}

/// Result of one fn's taint pass.
#[derive(Debug, Clone, Default)]
pub struct FnFlow {
    /// The fn's summary for this round.
    pub summary: Summary,
    /// Sink calls reached by any taint (root or parameter).
    pub hits: Vec<SinkHit>,
}

/// Run the worklist taint analysis over one fn, given the current
/// summaries of the crate's other fns. Facts are `name → label bits`
/// maps per CFG node; join is pointwise OR; the worklist follows
/// `succs` (including loop back-edges) until fixpoint.
pub fn taint_fn(
    fcx: &FnCtx<'_>,
    cfg_summaries: &BTreeMap<String, Summary>,
    config: &TaintConfig<'_>,
) -> FnFlow {
    let n = fcx.cfg.nodes.len();
    let mut facts: Vec<BTreeMap<String, u32>> = vec![BTreeMap::new(); n];
    // Seed entry with parameter bits.
    let mut entry_fact = BTreeMap::new();
    for (i, p) in fcx.params.iter().enumerate() {
        let bit = param_bit(i);
        if bit != 0 {
            entry_fact.insert(p.name.clone(), bit);
        }
    }
    facts[fcx.cfg.entry] = entry_fact;

    // Every node is processed at least once (a node whose incoming fact
    // is empty still has binding effects to propagate); after that,
    // nodes re-enter the list only when their input fact grows.
    let mut work: Vec<usize> = (0..n).rev().collect();
    let mut rounds = 0usize;
    // Safety valve: labels are monotone so this terminates, but cap
    // rounds against pathological graphs all the same.
    let cap = 16 * n + 64;
    while let Some(node) = work.pop() {
        rounds += 1;
        if rounds > cap * 4 {
            break;
        }
        let out = transfer(fcx, cfg_summaries, config, node, &facts[node]);
        for &succ in &fcx.cfg.nodes[node].succs {
            if join_into(&mut facts, succ, &out) {
                work.push(succ);
            }
        }
    }

    // Summary + sink hits from the stabilized facts.
    let mut flow = FnFlow::default();
    for (idx, node) in fcx.cfg.nodes.iter().enumerate() {
        let fact = &facts[idx];
        // Return flows: nodes with an edge to Exit contribute the bits
        // of their range (coarse: `return e;`, tail exprs, and `?`
        // statements all count).
        if node.succs.contains(&fcx.cfg.exit) {
            if let Some(r) = node.range {
                let bits = eval_bits(fcx, cfg_summaries, config, r, fact, false);
                flow.summary.ret_roots |= bits & ROOT_MASK;
                flow.summary.param_to_ret |= (bits >> PARAM_SHIFT) << PARAM_SHIFT;
            }
        }
        // Sink hits.
        if let Some(r) = node.range {
            for call in call_sites(fcx.toks, r) {
                let is_sink = config.sinks.contains(&call.name.as_str());
                let callee_sink_params =
                    cfg_summaries.get(&call.name).map_or(0, |s| s.param_to_sink);
                if !is_sink && callee_sink_params == 0 {
                    continue;
                }
                for (ai, arg) in call.arg_ranges.iter().enumerate() {
                    let arg_is_sink =
                        is_sink || (ai < MAX_PARAMS && callee_sink_params & param_bit(ai) != 0);
                    if !arg_is_sink {
                        continue;
                    }
                    let bits = eval_bits(fcx, cfg_summaries, config, *arg, fact, false);
                    if bits == 0 {
                        continue;
                    }
                    flow.summary.param_to_sink |= (bits >> PARAM_SHIFT) << PARAM_SHIFT;
                    if bits & ROOT_MASK != 0 {
                        flow.hits.push(SinkHit {
                            at: call.at,
                            sink: call.name.clone(),
                            bits,
                        });
                    }
                }
            }
        }
    }
    // Normalize param masks back down to index bits.
    flow.summary.param_to_ret >>= PARAM_SHIFT;
    flow.summary.param_to_ret <<= PARAM_SHIFT;
    flow
}

/// Pointwise-OR `out` into `facts[succ]`; true when anything changed.
fn join_into(
    facts: &mut [BTreeMap<String, u32>],
    succ: usize,
    out: &BTreeMap<String, u32>,
) -> bool {
    let mut changed = false;
    for (k, &v) in out {
        let slot = facts[succ].entry(k.clone()).or_insert(0);
        if *slot | v != *slot {
            *slot |= v;
            changed = true;
        }
    }
    changed
}

/// Transfer function for one node: apply its binding/assignment effect
/// to the incoming fact.
fn transfer(
    fcx: &FnCtx<'_>,
    summaries: &BTreeMap<String, Summary>,
    config: &TaintConfig<'_>,
    node: usize,
    fact: &BTreeMap<String, u32>,
) -> BTreeMap<String, u32> {
    let mut out = fact.clone();
    let n = &fcx.cfg.nodes[node];
    if let (Some(bind), Some(value)) = (n.bind, n.value) {
        let bits = eval_bits(fcx, summaries, config, value, fact, n.iterates);
        for (name, _) in pattern_bindings(fcx.toks, bind) {
            out.insert(name, bits);
        }
        return out;
    }
    if let Some(bind) = n.bind {
        // `let x;` — declared, nothing known flows in yet.
        for (name, _) in pattern_bindings(fcx.toks, bind) {
            out.insert(name, 0);
        }
        return out;
    }
    // Plain range: recognise `x = rhs;` / `x op= rhs;` assignments.
    if let Some((lo, hi)) = n.range {
        let hi = hi.min(fcx.toks.len());
        let mut i = lo;
        while i < hi && fcx.toks[i].kind == TokKind::Comment {
            i += 1;
        }
        if i < hi && matches!(fcx.toks[i].kind, TokKind::Ident | TokKind::RawIdent) {
            let name = fcx.toks[i].text.clone();
            let mut j = i + 1;
            while j < hi && fcx.toks[j].kind == TokKind::Comment {
                j += 1;
            }
            // `x = rhs` (strong update) — `=` not followed by `=`.
            if j < hi && fcx.toks[j].is_punct('=') && !(j + 1 < hi && fcx.toks[j + 1].is_punct('='))
            {
                let bits = eval_bits(fcx, summaries, config, (j + 1, hi), fact, false);
                out.insert(name, bits);
                return out;
            }
            // `x += rhs` and friends (weak update).
            if j + 1 < hi
                && fcx.toks[j + 1].is_punct('=')
                && matches!(
                    fcx.toks[j].text.as_str(),
                    "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                )
            {
                let bits = eval_bits(fcx, summaries, config, (j + 2, hi), fact, false);
                *out.entry(name).or_insert(0) |= bits;
                return out;
            }
        }
    }
    out
}

/// Evaluate the label bits a flat range can carry: known-variable bits,
/// fresh source labels, and callee-summary contributions.
fn eval_bits(
    fcx: &FnCtx<'_>,
    summaries: &BTreeMap<String, Summary>,
    config: &TaintConfig<'_>,
    range: Range,
    fact: &BTreeMap<String, u32>,
    iterates: bool,
) -> u32 {
    let (lo, hi) = range;
    let hi = hi.min(fcx.toks.len());
    let mut bits = 0u32;
    for i in lo..hi {
        let t = &fcx.toks[i];
        if !matches!(t.kind, TokKind::Ident | TokKind::RawIdent) {
            continue;
        }
        let name = t.text.as_str();
        if let Some(&b) = fact.get(name) {
            bits |= b;
        }
        if config.wall_idents.contains(&name) {
            bits |= L_WALL;
        }
        if config.rand_idents.contains(&name) {
            bits |= L_RAND;
        }
        // A `for` iterable that mentions a hash-classed collection is
        // order-dependent regardless of which method produced it.
        if iterates && fcx.class_of(name) == TypeClass::Hash {
            bits |= L_HASH;
        }
    }
    for call in call_sites(fcx.toks, (lo, hi)) {
        if HASH_ITER_METHODS.contains(&call.name.as_str())
            && fcx.recv_class(&call) == TypeClass::Hash
        {
            bits |= L_HASH;
        }
        if let Some(s) = summaries.get(&call.name) {
            bits |= s.ret_roots;
            // Param-to-return flows are covered by the coarse ident
            // union above (the argument's variables are already in
            // `bits`); `ret_roots` adds the callee's own sources.
        }
    }
    bits
}

/// Generic fn-summary fixpoint over a name-keyed call graph: the set of
/// fn names that are `seed`-tainted directly or call (by name) a
/// tainted fn. This is the shared skeleton `rng-fork-discipline` runs
/// on; the richer label summaries above specialise it per-label.
pub fn summary_fixpoint<D>(
    fns: &[D],
    name: impl Fn(&D) -> &str,
    seed: impl Fn(&D) -> bool,
    calls: impl Fn(&D) -> Vec<String>,
) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = fns
        .iter()
        .filter(|f| seed(f))
        .map(|f| name(f).to_owned())
        .collect();
    loop {
        let before = tainted.len();
        for f in fns {
            if tainted.contains(name(f)) {
                continue;
            }
            if calls(f).iter().any(|c| tainted.contains(c)) {
                tainted.insert(name(f).to_owned());
            }
        }
        if tainted.len() == before {
            break;
        }
    }
    tainted
}

/// A fully-prepared fn for flow analysis (parsed body, CFG, classes).
pub struct FnUnit {
    /// Index of the source file in the caller's file list.
    pub file: usize,
    /// The fn's name.
    pub name: String,
    /// Whether the fn is in test code.
    pub is_test: bool,
    /// Body token range.
    pub body_range: Range,
    /// Parsed statement tree.
    pub body: FnBody,
    /// Lowered CFG.
    pub cfg: Cfg,
    /// Ordered parameters.
    pub params: Vec<Param>,
    /// Local class environment.
    pub classes: BTreeMap<String, TypeClass>,
}

/// Prepare every fn in a parsed file for flow analysis.
pub fn fn_units(
    file: usize,
    pf: &ParsedFile,
    fields: &BTreeMap<String, TypeClass>,
    storeio: &BTreeSet<String>,
) -> Vec<FnUnit> {
    let toks = &pf.tokens;
    let mut out = Vec::new();
    for s in &pf.scopes {
        if s.kind != ScopeKind::Fn {
            continue;
        }
        let body = FnBody::parse(toks, s.body.0, s.body.1);
        let cfg = Cfg::build(&body, toks);
        let params = params_of(toks, s.sig, storeio);
        let classes = local_classes(toks, &body, &params, fields, storeio);
        out.push(FnUnit {
            file,
            name: s.name.clone(),
            is_test: s.is_test,
            body_range: s.body,
            body,
            cfg,
            params,
            classes,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    const CONFIG: TaintConfig<'_> = TaintConfig {
        wall_idents: &["SystemTime", "Instant"],
        rand_idents: &["thread_rng"],
        sinks: &["send", "record"],
    };

    fn analyze(src: &str) -> (Vec<FnUnit>, Vec<Tok>) {
        let pf = ParsedFile::parse(src);
        let toks = pf.tokens.clone();
        let storeio = storeio_generics(&toks);
        let fields = field_classes(&toks, &storeio);
        (fn_units(0, &pf, &fields, &storeio), toks)
    }

    fn flow_of(
        units: &[FnUnit],
        toks: &[Tok],
        fields: &BTreeMap<String, TypeClass>,
    ) -> Vec<FnFlow> {
        let mut summaries: BTreeMap<String, Summary> = BTreeMap::new();
        // Fixpoint over summaries.
        loop {
            let mut changed = false;
            for u in units {
                let fcx = FnCtx {
                    toks,
                    body: &u.body,
                    cfg: &u.cfg,
                    params: &u.params,
                    classes: &u.classes,
                    fields,
                };
                let f = taint_fn(&fcx, &summaries, &CONFIG);
                let prev = summaries.get(&u.name).copied().unwrap_or_default();
                let merged = Summary {
                    ret_roots: prev.ret_roots | f.summary.ret_roots,
                    param_to_ret: prev.param_to_ret | f.summary.param_to_ret,
                    param_to_sink: prev.param_to_sink | f.summary.param_to_sink,
                };
                if merged != prev {
                    summaries.insert(u.name.clone(), merged);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        units
            .iter()
            .map(|u| {
                let fcx = FnCtx {
                    toks,
                    body: &u.body,
                    cfg: &u.cfg,
                    params: &u.params,
                    classes: &u.classes,
                    fields,
                };
                taint_fn(&fcx, &summaries, &CONFIG)
            })
            .collect()
    }

    #[test]
    fn wall_clock_taint_reaches_sink_through_let_chain() {
        let src = "fn f(ctx: &mut C) {\n\
                   let t = Instant::now();\n\
                   let d = t.elapsed();\n\
                   ctx.send(1, d);\n\
                   }\n";
        let (units, toks) = analyze(src);
        let flows = flow_of(&units, &toks, &BTreeMap::new());
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].hits.len(), 1);
        assert!(flows[0].hits[0].bits & L_WALL != 0);
    }

    #[test]
    fn hash_iteration_taints_and_keyed_access_does_not() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn leak(&self, ctx: &mut C) {\n\
                   let victim = self.m.iter().next();\n\
                   ctx.send(1, victim);\n\
                   }\n\
                   fn keyed(&self, ctx: &mut C) {\n\
                   let v = self.m.get(&1);\n\
                   ctx.send(1, v);\n\
                   }\n\
                   }\n";
        let (units, toks) = analyze(src);
        let storeio = BTreeSet::new();
        let fields = field_classes(&toks, &storeio);
        assert_eq!(fields.get("m"), Some(&TypeClass::Hash));
        let flows = flow_of(&units, &toks, &fields);
        let leak = units.iter().position(|u| u.name == "leak").unwrap();
        let keyed = units.iter().position(|u| u.name == "keyed").unwrap();
        assert_eq!(flows[leak].hits.len(), 1, "iteration order reaches send");
        assert!(flows[keyed].hits.is_empty(), "keyed access is clean");
    }

    #[test]
    fn for_loop_over_hash_taints_bindings() {
        let src = "fn f(m: HashMap<u32, u32>, ctx: &mut C) {\n\
                   for (k, v) in &m {\n\
                   ctx.send(k, v);\n\
                   }\n\
                   }\n";
        let (units, toks) = analyze(src);
        let flows = flow_of(&units, &toks, &BTreeMap::new());
        assert!(!flows[0].hits.is_empty());
        assert!(flows[0].hits[0].bits & L_HASH != 0);
    }

    #[test]
    fn taint_flows_through_helper_summaries() {
        let src = "fn stamp() -> u64 { Instant::now().as_micros() }\n\
                   fn wrap(x: u64) -> u64 { x }\n\
                   fn f(ctx: &mut C) {\n\
                   let t = wrap(stamp());\n\
                   ctx.record(t);\n\
                   }\n";
        let (units, toks) = analyze(src);
        let flows = flow_of(&units, &toks, &BTreeMap::new());
        let f = units.iter().position(|u| u.name == "f").unwrap();
        assert_eq!(flows[f].hits.len(), 1, "summary-laundered taint hits sink");
        assert!(flows[f].hits[0].bits & L_WALL != 0);
    }

    #[test]
    fn param_to_sink_propagates_to_callers() {
        let src = "fn emit(ctx: &mut C, v: u64) { ctx.send(0, v); }\n\
                   fn f(ctx: &mut C, m: HashSet<u64>) {\n\
                   let n = m.iter().count();\n\
                   emit(ctx, n);\n\
                   }\n";
        let (units, toks) = analyze(src);
        let flows = flow_of(&units, &toks, &BTreeMap::new());
        let f = units.iter().position(|u| u.name == "f").unwrap();
        assert!(
            !flows[f].hits.is_empty(),
            "tainted arg into a sink-forwarding callee is a hit"
        );
    }

    #[test]
    fn loop_carried_taint_reaches_fixpoint() {
        let src = "fn f(ctx: &mut C, m: HashMap<u32, u32>) {\n\
                   let mut acc = 0;\n\
                   for (_, v) in &m {\n\
                   acc += v;\n\
                   }\n\
                   ctx.send(0, acc);\n\
                   }\n";
        let (units, toks) = analyze(src);
        let flows = flow_of(&units, &toks, &BTreeMap::new());
        assert!(
            !flows[0].hits.is_empty(),
            "loop-carried accumulation taints"
        );
    }

    #[test]
    fn classify_and_params() {
        let toks = lex(
            "fn f(store: &mut dyn MailStore, mb: &mut Mailbox, m: BTreeMap<MailName, Mailbox>) {}",
        );
        let pf = ParsedFile::parse(
            "fn f(store: &mut dyn MailStore, mb: &mut Mailbox, m: BTreeMap<MailName, Mailbox>) {}",
        );
        let s = pf.scopes.iter().find(|s| s.kind == ScopeKind::Fn).unwrap();
        let params = params_of(&pf.tokens, s.sig, &BTreeSet::new());
        let classes: Vec<(String, TypeClass)> =
            params.into_iter().map(|p| (p.name, p.class)).collect();
        assert_eq!(
            classes,
            vec![
                ("store".to_owned(), TypeClass::Store),
                ("mb".to_owned(), TypeClass::Mailbox),
                ("m".to_owned(), TypeClass::MailboxMap),
            ]
        );
        drop(toks);
    }

    #[test]
    fn storeio_generic_bound_classifies_fields() {
        let src = "struct Wal<S: SegmentIo> { io: S, seq: u64 }";
        let toks = lex(src);
        let g = storeio_generics(&toks);
        assert!(g.contains("S"));
        let fields = field_classes(&toks, &g);
        assert_eq!(fields.get("io"), Some(&TypeClass::StoreIo));
        assert_eq!(fields.get("seq"), None);
    }

    #[test]
    fn summary_fixpoint_propagates_through_call_chain() {
        struct D {
            name: &'static str,
            seeded: bool,
            calls: Vec<String>,
        }
        let fns = vec![
            D {
                name: "root",
                seeded: true,
                calls: vec![],
            },
            D {
                name: "mid",
                seeded: false,
                calls: vec!["root".into()],
            },
            D {
                name: "leaf",
                seeded: false,
                calls: vec!["mid".into()],
            },
            D {
                name: "clean",
                seeded: false,
                calls: vec![],
            },
        ];
        let t = summary_fixpoint(&fns, |d| d.name, |d| d.seeded, |d| d.calls.clone());
        assert!(t.contains("root") && t.contains("mid") && t.contains("leaf"));
        assert!(!t.contains("clean"));
    }
}
