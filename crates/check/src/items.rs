//! A lightweight item parser over the [`lex`](crate::lex) token stream.
//!
//! The second layer of the lint engine: recovers the *shape* of a Rust
//! source file — module / fn / impl nesting, `#[cfg(test)]` scoping,
//! enum definitions with their variants, `type Msg = …;` protocol
//! declarations, `match` expressions with their arms, and the token
//! ranges that are *pattern* rather than expression position. Rules in
//! [`lint`](crate::lint) consume this instead of guessing from text:
//!
//! * scope-aware test exemptions (`#[cfg(test)]` on any enclosing item,
//!   however deeply nested, including `#[test]` functions);
//! * `# Panics`-documented functions (the rustdoc contract that makes a
//!   panic site vetted-by-review rather than a lint violation);
//! * the per-crate item graph behind the `rng-fork-discipline` taint
//!   pass (fn definitions, signatures, call sites);
//! * the enum/match inventory behind `event-match-exhaustive`.
//!
//! This is deliberately *not* a full Rust parser: it tracks exactly the
//! grammar the rules need and recovers from anything else by skipping a
//! token, so it can also digest the deliberately-broken negative
//! fixtures the tests feed it.

use crate::lex::{Tok, TokKind};

/// What kind of item a [`Scope`] represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeKind {
    /// The file root.
    File,
    /// A `mod name { … }` block.
    Mod,
    /// A function body.
    Fn,
    /// An `impl … { … }` block.
    Impl,
    /// A `trait … { … }` block (default method bodies live here).
    Trait,
}

/// One braced item scope.
#[derive(Clone, Debug)]
pub struct Scope {
    /// Index of the enclosing scope (the file root points to itself).
    pub parent: usize,
    /// Item kind.
    pub kind: ScopeKind,
    /// Item name (`fn`/`mod` name; for impls, the self-type name).
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// True when this scope or any ancestor carries `#[cfg(test)]` /
    /// `#[test]` — the scope-aware replacement for v1's line mask.
    pub is_test: bool,
    /// True for functions whose doc comment carries a `# Panics`
    /// section (inherited check: see [`ParsedFile::panics_documented_at`]).
    pub panics_documented: bool,
    /// Token range of a fn's signature: everything after the name
    /// (generics, params, return type, where clause), `[start, end)`.
    pub sig: (usize, usize),
    /// Token range of the braced body *contents*, `[start, end)`
    /// (exclusive of the braces themselves).
    pub body: (usize, usize),
}

/// One enum definition with its variants.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// True when defined under a test scope.
    pub is_test: bool,
    /// Variant names with their 1-based lines, in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// One arm of a [`MatchExpr`].
#[derive(Clone, Debug)]
pub struct Arm {
    /// 1-based line the pattern starts on.
    pub line: u32,
    /// Token range of the pattern (alternatives included, guard
    /// excluded), `[start, end)`.
    pub pat: (usize, usize),
    /// True when an `if` guard follows the pattern.
    pub guarded: bool,
    /// True for a top-level `_` or bare-binding pattern — the arm that
    /// silently swallows every variant not named elsewhere.
    pub catch_all: bool,
}

/// One `match` expression.
#[derive(Clone, Debug)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// Token index of the `match` keyword.
    pub tok: usize,
    /// Parsed arms in source order.
    pub arms: Vec<Arm>,
}

/// A fully parsed file: tokens plus recovered structure.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// The token stream (comments included).
    pub tokens: Vec<Tok>,
    /// All item scopes; index 0 is the file root.
    pub scopes: Vec<Scope>,
    /// Enum definitions, file order.
    pub enums: Vec<EnumDef>,
    /// Right-hand sides of non-test `type Msg = NAME;` declarations —
    /// the actor-protocol enums of this file.
    pub msg_types: Vec<String>,
    /// Every `match` expression, file order (nested matches appear as
    /// their own entries).
    pub matches: Vec<MatchExpr>,
    /// Token ranges in pattern or `use` position (match-arm patterns,
    /// `let`/`if let`/`while let` patterns, `use` trees) — positions a
    /// path occurrence does *not* count as a construction site.
    pub non_expr_ranges: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// Lexes and parses one source file.
    pub fn parse(src: &str) -> ParsedFile {
        let tokens = crate::lex::lex(src);
        let mut pf = ParsedFile {
            scopes: vec![Scope {
                parent: 0,
                kind: ScopeKind::File,
                name: String::new(),
                line: 1,
                is_test: false,
                panics_documented: false,
                sig: (0, 0),
                body: (0, tokens.len()),
            }],
            ..ParsedFile::default()
        };
        Parser {
            toks: &tokens,
            pf: &mut pf,
        }
        .items(0, tokens.len(), 0);
        pf.matches = scan_matches(&tokens);
        pf.non_expr_ranges = scan_non_expr_ranges(&tokens, &pf.matches);
        pf.tokens = tokens;
        pf
    }

    /// The innermost scope containing token `tok`.
    pub fn scope_of(&self, tok: usize) -> usize {
        let mut best = 0;
        for (i, s) in self.scopes.iter().enumerate() {
            if s.body.0 <= tok && tok < s.body.1 && s.body.0 >= self.scopes[best].body.0 {
                best = i;
            }
        }
        best
    }

    /// True when token `tok` sits under a `#[cfg(test)]` / `#[test]`
    /// scope (however deeply nested).
    pub fn is_test_at(&self, tok: usize) -> bool {
        self.scopes[self.scope_of(tok)].is_test
    }

    /// True when token `tok` sits inside a function whose doc comment
    /// documents a `# Panics` contract (directly or via an enclosing
    /// documented fn — a helper closure's panic is part of its owner's
    /// contract).
    pub fn panics_documented_at(&self, tok: usize) -> bool {
        let mut s = self.scope_of(tok);
        loop {
            let scope = &self.scopes[s];
            if scope.kind == ScopeKind::Fn && scope.panics_documented {
                return true;
            }
            if scope.parent == s {
                return false;
            }
            s = scope.parent;
        }
    }

    /// True when token `tok` falls in any pattern/`use` range.
    pub fn in_pattern(&self, tok: usize) -> bool {
        self.non_expr_ranges
            .iter()
            .any(|&(a, b)| a <= tok && tok < b)
    }
}

/// Pending per-item context gathered while walking a scope: doc
/// comments and attributes seen since the last item.
#[derive(Default)]
struct Pending {
    test: bool,
    panics_doc: bool,
}

struct Parser<'a> {
    toks: &'a [Tok],
    pf: &'a mut ParsedFile,
}

impl Parser<'_> {
    /// Parses the items in `[i, end)` under scope `parent`.
    #[allow(clippy::too_many_lines)]
    fn items(&mut self, mut i: usize, end: usize, parent: usize) {
        let mut pending = Pending::default();
        while i < end {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Comment => {
                    if t.is_doc_comment() && t.text.contains("# Panics") {
                        pending.panics_doc = true;
                    } else if !t.is_doc_comment() {
                        // A plain comment breaks a doc run.
                    }
                    i += 1;
                }
                TokKind::Punct if t.text == "#" => {
                    // Attribute: #[…] or #![…].
                    let mut j = i + 1;
                    if self.toks.get(j).is_some_and(|t| t.is_punct('!')) {
                        j += 1;
                    }
                    if self.toks.get(j).is_some_and(|t| t.is_punct('[')) {
                        let close = self.balanced(j, end, '[', ']');
                        if attr_is_test(&self.toks[j + 1..close.min(end)]) {
                            pending.test = true;
                        }
                        i = close.min(end).saturating_add(1);
                    } else {
                        i += 1;
                    }
                }
                TokKind::Ident => match t.text.as_str() {
                    "pub" => {
                        i += 1;
                        if self.toks.get(i).is_some_and(|t| t.is_punct('(')) {
                            i = self.balanced(i, end, '(', ')') + 1;
                        }
                    }
                    "unsafe" | "async" | "default" => i += 1,
                    "const" | "static" | "type" | "use" => {
                        // `const fn` falls through to the fn branch; the
                        // item forms skip to their terminating `;`.
                        if t.text == "const"
                            && self.toks.get(i + 1).is_some_and(|t| t.is_ident("fn"))
                        {
                            i += 1;
                        } else {
                            if t.text == "type" {
                                self.type_alias(i, end, parent);
                            }
                            i = self.skip_to_semi(i + 1, end);
                            pending = Pending::default();
                        }
                    }
                    "extern" => {
                        // `extern "C" fn` prefixes a fn; `extern crate …;`
                        // and foreign blocks are skipped whole.
                        let mut j = i + 1;
                        if self.toks.get(j).is_some_and(|t| t.kind == TokKind::StrLit) {
                            j += 1;
                        }
                        if self.toks.get(j).is_some_and(|t| t.is_ident("fn")) {
                            i = j;
                        } else {
                            i = self.skip_item_tail(j, end);
                            pending = Pending::default();
                        }
                    }
                    "mod" => {
                        i = self.module(i, end, parent, &pending);
                        pending = Pending::default();
                    }
                    "fn" => {
                        i = self.function(i, end, parent, &pending);
                        pending = Pending::default();
                    }
                    "impl" | "trait" => {
                        i = self.impl_or_trait(i, end, parent, &pending);
                        pending = Pending::default();
                    }
                    "enum" => {
                        i = self.enum_def(i, end, parent, &pending);
                        pending = Pending::default();
                    }
                    "struct" | "union" | "macro_rules" => {
                        i = self.skip_item_tail(i + 1, end);
                        pending = Pending::default();
                    }
                    _ => {
                        // Statement/expression token inside a body — not
                        // an item opener. Skip it (bare blocks get walked
                        // inline, which is fine: nested items are still
                        // found, and nothing else in here reads shape).
                        i += 1;
                        pending = Pending::default();
                    }
                },
                _ => {
                    i += 1;
                    pending = Pending::default();
                }
            }
        }
    }

    /// Index of the closing delimiter matching the opener at `open`
    /// (which must hold `open_c`), or `end` when unterminated.
    fn balanced(&self, open: usize, end: usize, open_c: char, close_c: char) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct(open_c) {
                depth += 1;
            } else if t.is_punct(close_c) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end
    }

    /// First top-level `;` after `i` (tracking all three delimiter
    /// kinds), or `end`.
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Skips an item that ends at either a top-level `;` or a balanced
    /// `{…}` (structs, foreign blocks, `macro_rules!`).
    fn skip_item_tail(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            let t = &self.toks[i];
            if t.is_punct(';') {
                return i + 1;
            }
            if t.is_punct('{') {
                return self.balanced(i, end, '{', '}') + 1;
            }
            if t.is_punct('(') || t.is_punct('[') {
                // Tuple-struct fields / array types: skip whole group.
                let close = if t.is_punct('(') {
                    self.balanced(i, end, '(', ')')
                } else {
                    self.balanced(i, end, '[', ']')
                };
                i = close + 1;
            } else {
                i += 1;
            }
        }
        end
    }

    /// Skips a `<…>` generics group starting at `i` (must hold `<`),
    /// shift-aware (`>>` closes two) and arrow-aware (`->` inside
    /// `Fn() -> T` bounds does not close).
    fn skip_generics(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = i > 0 && self.toks[i - 1].is_punct('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            i += 1;
        }
        end
    }

    fn module(&mut self, kw: usize, end: usize, parent: usize, pending: &Pending) -> usize {
        let line = self.toks[kw].line;
        let name = self
            .toks
            .get(kw + 1)
            .filter(|t| t.kind == TokKind::Ident || t.kind == TokKind::RawIdent)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let mut i = kw + 2;
        while i < end && !(self.toks[i].is_punct('{') || self.toks[i].is_punct(';')) {
            i += 1;
        }
        if i >= end || self.toks[i].is_punct(';') {
            return (i + 1).min(end);
        }
        let close = self.balanced(i, end, '{', '}');
        let scope = self.push_scope(
            parent,
            ScopeKind::Mod,
            name,
            line,
            pending,
            (0, 0),
            (i + 1, close),
        );
        self.items(i + 1, close, scope);
        close + 1
    }

    fn function(&mut self, kw: usize, end: usize, parent: usize, pending: &Pending) -> usize {
        let line = self.toks[kw].line;
        let name = self
            .toks
            .get(kw + 1)
            .filter(|t| t.kind == TokKind::Ident || t.kind == TokKind::RawIdent)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let sig_start = kw + 2;
        let mut i = sig_start;
        if self.toks.get(i).is_some_and(|t| t.is_punct('<')) {
            i = self.skip_generics(i, end);
        }
        if self.toks.get(i).is_some_and(|t| t.is_punct('(')) {
            i = self.balanced(i, end, '(', ')') + 1;
        }
        // Return type / where clause: scan to the body `{` or a `;`
        // (trait method declaration), skipping `->` and generic groups.
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                i = self.skip_generics(i, end);
            } else {
                i += 1;
            }
        }
        if i >= end || self.toks[i].is_punct(';') {
            return (i + 1).min(end);
        }
        let close = self.balanced(i, end, '{', '}');
        let scope = self.push_scope(
            parent,
            ScopeKind::Fn,
            name,
            line,
            pending,
            (sig_start, i),
            (i + 1, close),
        );
        self.items(i + 1, close, scope);
        close + 1
    }

    fn impl_or_trait(&mut self, kw: usize, end: usize, parent: usize, pending: &Pending) -> usize {
        let kind = if self.toks[kw].is_ident("impl") {
            ScopeKind::Impl
        } else {
            ScopeKind::Trait
        };
        let line = self.toks[kw].line;
        let mut i = kw + 1;
        if self.toks.get(i).is_some_and(|t| t.is_punct('<')) {
            i = self.skip_generics(i, end);
        }
        // Header up to the body; the self-type name is the first ident
        // after `for` when present, else the first ident of the header.
        let mut name = String::new();
        let mut after_for = false;
        let mut named_after_for = false;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_ident("for") {
                after_for = true;
            } else if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("where") {
                if after_for && !named_after_for {
                    name.clone_from(&t.text);
                    named_after_for = true;
                } else if name.is_empty() {
                    name.clone_from(&t.text);
                }
            }
            if t.is_punct('<') {
                i = self.skip_generics(i, end);
            } else {
                i += 1;
            }
        }
        if i >= end || self.toks[i].is_punct(';') {
            return (i + 1).min(end);
        }
        let close = self.balanced(i, end, '{', '}');
        let scope = self.push_scope(parent, kind, name, line, pending, (0, 0), (i + 1, close));
        self.items(i + 1, close, scope);
        close + 1
    }

    fn enum_def(&mut self, kw: usize, end: usize, parent: usize, pending: &Pending) -> usize {
        let line = self.toks[kw].line;
        let name = self
            .toks
            .get(kw + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let mut i = kw + 2;
        while i < end && !self.toks[i].is_punct('{') {
            if self.toks[i].is_punct('<') {
                i = self.skip_generics(i, end);
            } else if self.toks[i].is_punct(';') {
                return i + 1;
            } else {
                i += 1;
            }
        }
        if i >= end {
            return end;
        }
        let close = self.balanced(i, end, '{', '}');
        let mut variants = Vec::new();
        let mut j = i + 1;
        while j < close {
            let t = &self.toks[j];
            match t.kind {
                TokKind::Punct if t.text == "#" => {
                    // Variant attribute.
                    let mut k = j + 1;
                    if self.toks.get(k).is_some_and(|t| t.is_punct('[')) {
                        k = self.balanced(k, close, '[', ']');
                    }
                    j = k + 1;
                }
                TokKind::Ident => {
                    variants.push((t.text.clone(), t.line));
                    // Skip payload + discriminant to the next comma.
                    j += 1;
                    let mut depth = 0i64;
                    while j < close {
                        let t = &self.toks[j];
                        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                            depth -= 1;
                        } else if t.is_punct(',') && depth == 0 {
                            j += 1;
                            break;
                        }
                        j += 1;
                    }
                }
                _ => j += 1,
            }
        }
        let is_test = pending.test || self.pf.scopes[parent].is_test;
        self.pf.enums.push(EnumDef {
            name,
            line,
            is_test,
            variants,
        });
        close + 1
    }

    /// Records `type Msg = NAME;` declared inside an impl (the actor
    /// protocol declaration), non-test scopes only.
    fn type_alias(&mut self, kw: usize, end: usize, parent: usize) {
        if self.pf.scopes[parent].kind != ScopeKind::Impl || self.pf.scopes[parent].is_test {
            return;
        }
        let is_msg = self.toks.get(kw + 1).is_some_and(|t| t.is_ident("Msg"));
        let eq = self.toks.get(kw + 2).is_some_and(|t| t.is_punct('='));
        if is_msg && eq {
            if let Some(t) = self.toks.get(kw + 3).filter(|t| t.kind == TokKind::Ident) {
                let _ = end;
                self.pf.msg_types.push(t.text.clone());
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_scope(
        &mut self,
        parent: usize,
        kind: ScopeKind,
        name: String,
        line: u32,
        pending: &Pending,
        sig: (usize, usize),
        body: (usize, usize),
    ) -> usize {
        self.pf.scopes.push(Scope {
            parent,
            kind,
            name,
            line,
            is_test: pending.test || self.pf.scopes[parent].is_test,
            panics_documented: pending.panics_doc,
            sig,
            body,
        });
        self.pf.scopes.len() - 1
    }
}

/// True when the attribute tokens mark test-only code: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]`, ….
fn attr_is_test(attr: &[Tok]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    idents == ["test"] || (idents.contains(&"cfg") && idents.contains(&"test"))
}

/// Finds and parses every `match` expression in the token stream.
fn scan_matches(toks: &[Tok]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("match") {
            if let Some(m) = parse_match(toks, i) {
                out.push(m);
            }
        }
    }
    out
}

/// Parses the `match` whose keyword sits at `kw`.
fn parse_match(toks: &[Tok], kw: usize) -> Option<MatchExpr> {
    // Scrutinee: to the first `{` at delimiter depth 0.
    let mut i = kw + 1;
    let mut depth = 0i64;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            break;
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let open = i;
    let close = {
        let mut depth = 0i64;
        let mut j = open;
        loop {
            if j >= toks.len() {
                break toks.len();
            }
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break j;
                }
            }
            j += 1;
        }
    };

    let mut arms = Vec::new();
    let mut j = open + 1;
    while j < close {
        if toks[j].kind == TokKind::Comment {
            j += 1;
            continue;
        }
        // Pattern: through the `=>` at depth 0; an `if` guard ends the
        // pattern early.
        let pat_start = j;
        let mut pat_end = j;
        let mut guarded = false;
        let mut depth = 0i64;
        let mut found_arrow = false;
        while j < close {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_ident("if") && !guarded {
                guarded = true;
                pat_end = j;
            } else if depth == 0
                && t.is_punct('=')
                && toks.get(j + 1).is_some_and(|n| n.is_punct('>'))
            {
                if !guarded {
                    pat_end = j;
                }
                j += 2;
                found_arrow = true;
                break;
            }
            j += 1;
        }
        if !found_arrow {
            break;
        }
        arms.push(Arm {
            line: toks[pat_start].line,
            pat: (pat_start, pat_end),
            guarded,
            catch_all: pattern_is_catch_all(&toks[pat_start..pat_end]),
        });
        // Body: a balanced block, or an expression to the `,` at depth 0.
        if toks.get(j).is_some_and(|t| t.is_punct('{')) {
            let mut depth = 0i64;
            while j < close {
                if toks[j].is_punct('{') || toks[j].is_punct('(') || toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct('}') || toks[j].is_punct(')') || toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        } else {
            let mut depth = 0i64;
            while j < close {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    break;
                }
                j += 1;
            }
        }
        if toks.get(j).is_some_and(|t| t.is_punct(',')) {
            j += 1;
        }
    }
    Some(MatchExpr {
        line: toks[kw].line,
        tok: kw,
        arms,
    })
}

/// True when the pattern tokens form a top-level catch-all: `_`, a bare
/// binding (`other`), or either with `ref`/`mut` qualifiers.
fn pattern_is_catch_all(pat: &[Tok]) -> bool {
    let meaningful: Vec<&Tok> = pat
        .iter()
        .filter(|t| t.kind != TokKind::Comment && !t.is_ident("ref") && !t.is_ident("mut"))
        .collect();
    match meaningful.as_slice() {
        [t] => t.kind == TokKind::Ident,
        _ => false,
    }
}

/// Token ranges that are pattern or `use` position: match-arm patterns,
/// `let` patterns (covers `if let` / `while let` / `let … else`), and
/// `use` trees.
fn scan_non_expr_ranges(toks: &[Tok], matches: &[MatchExpr]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = matches
        .iter()
        .flat_map(|m| m.arms.iter().map(|a| a.pat))
        .collect();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("let") {
            // Pattern runs to the `=` at depth 0 (or `;`/`{` for a
            // `let x;` declaration / malformed input).
            let start = i + 1;
            let mut j = start;
            let mut depth = 0i64;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0
                    && (t.is_punct(';')
                        || (t.is_punct('=') && !toks.get(j + 1).is_some_and(|n| n.is_punct('='))))
                {
                    break;
                }
                j += 1;
            }
            out.push((start, j));
            i = j + 1;
        } else if t.is_ident("use") {
            let start = i + 1;
            let mut j = start;
            while j < toks.len() && !toks[j].is_punct(';') {
                j += 1;
            }
            out.push((start, j));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_named<'a>(pf: &'a ParsedFile, name: &str) -> &'a Scope {
        pf.scopes
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no scope named {name}"))
    }

    fn tok_at_line(pf: &ParsedFile, line: u32) -> usize {
        pf.tokens
            .iter()
            .position(|t| t.line == line && t.kind != TokKind::Comment)
            .expect("line has tokens")
    }

    #[test]
    fn nesting_and_names() {
        let pf = ParsedFile::parse(concat!(
            "mod outer {\n",
            "    mod inner {\n",
            "        fn deep() { helper(); }\n",
            "    }\n",
            "    impl Actor for HostActor {\n",
            "        fn on_message(&mut self) {}\n",
            "    }\n",
            "}\n",
        ));
        assert_eq!(scope_named(&pf, "outer").kind, ScopeKind::Mod);
        let inner = scope_named(&pf, "inner");
        assert_eq!(pf.scopes[inner.parent].name, "outer");
        let deep = scope_named(&pf, "deep");
        assert_eq!(pf.scopes[deep.parent].name, "inner");
        let imp = scope_named(&pf, "HostActor");
        assert_eq!(imp.kind, ScopeKind::Impl);
        let method = scope_named(&pf, "on_message");
        assert_eq!(pf.scopes[method.parent].name, "HostActor");
    }

    #[test]
    fn cfg_test_inherits_through_nested_mods() {
        // v1's line mask lost track when test mods nested; the scope
        // tree carries the flag all the way down.
        let pf = ParsedFile::parse(concat!(
            "fn lib() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    mod deeper {\n",
            "        fn helper() {}\n",
            "    }\n",
            "    #[test]\n",
            "    fn t() {}\n",
            "}\n",
            "fn lib2() {}\n",
        ));
        assert!(!scope_named(&pf, "lib").is_test);
        assert!(scope_named(&pf, "tests").is_test);
        assert!(scope_named(&pf, "deeper").is_test);
        assert!(scope_named(&pf, "helper").is_test);
        assert!(scope_named(&pf, "t").is_test);
        assert!(
            !scope_named(&pf, "lib2").is_test,
            "mask must end with the mod"
        );
    }

    #[test]
    fn test_attribute_on_single_fn() {
        let pf = ParsedFile::parse("#[test]\nfn t() { boom(); }\nfn lib() {}\n");
        assert!(scope_named(&pf, "t").is_test);
        assert!(!scope_named(&pf, "lib").is_test);
    }

    #[test]
    fn cfg_attrs_that_are_not_test_do_not_mask() {
        let pf = ParsedFile::parse("#[cfg(feature = \"extra\")]\nfn gated() {}\n");
        assert!(!scope_named(&pf, "gated").is_test);
        let pf = ParsedFile::parse("#[cfg(any(test, feature = \"x\"))]\nfn gated() {}\n");
        assert!(scope_named(&pf, "gated").is_test);
    }

    #[test]
    fn panics_doc_detected_and_inherited() {
        let pf = ParsedFile::parse(concat!(
            "/// Does a thing.\n",
            "///\n",
            "/// # Panics\n",
            "///\n",
            "/// Panics if the input is empty.\n",
            "pub fn documented(xs: &[u32]) -> u32 {\n",
            "    fn helper() {}\n",
            "    xs[0]\n",
            "}\n",
            "pub fn undocumented() {}\n",
        ));
        let doc = scope_named(&pf, "documented");
        assert!(doc.panics_documented);
        assert!(!scope_named(&pf, "undocumented").panics_documented);
        // A token inside the helper still counts as documented: the
        // helper is part of the documented fn's body.
        let helper = scope_named(&pf, "helper");
        assert!(pf.panics_documented_at(helper.body.0.saturating_sub(1)));
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let pf = ParsedFile::parse(concat!(
            "/// Protocol.\n",
            "#[derive(Clone, Debug)]\n",
            "pub enum MailMsg {\n",
            "    /// Unit.\n",
            "    Ping,\n",
            "    #[allow(dead_code)]\n",
            "    Tuple(u32, String),\n",
            "    Struct { a: u32, b: Vec<u8> },\n",
            "    WithDiscriminant = 4,\n",
            "}\n",
        ));
        assert_eq!(pf.enums.len(), 1);
        let e = &pf.enums[0];
        assert_eq!(e.name, "MailMsg");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Ping", "Tuple", "Struct", "WithDiscriminant"]);
    }

    #[test]
    fn msg_type_declarations_resolved() {
        let pf = ParsedFile::parse(concat!(
            "impl Actor for HostActor {\n",
            "    type Msg = MailMsg;\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    impl Actor for Fake { type Msg = FakeMsg; }\n",
            "}\n",
        ));
        assert_eq!(pf.msg_types, vec!["MailMsg"], "test impls do not count");
    }

    #[test]
    fn match_arms_patterns_guards_and_catch_all() {
        let pf = ParsedFile::parse(concat!(
            "fn f(m: MailMsg) {\n",
            "    match m {\n",
            "        MailMsg::Ping => reply(),\n",
            "        MailMsg::Tuple(a, b) if a > 0 => consume(a, b),\n",
            "        MailMsg::Struct { a, .. } => {\n",
            "            nested(a);\n",
            "        }\n",
            "        _ => {}\n",
            "    }\n",
            "}\n",
        ));
        assert_eq!(pf.matches.len(), 1);
        let m = &pf.matches[0];
        assert_eq!(m.arms.len(), 4);
        assert!(!m.arms[0].catch_all);
        assert!(m.arms[1].guarded);
        assert!(
            !m.arms[2].catch_all,
            "struct pattern with .. is not a catch-all"
        );
        assert!(m.arms[3].catch_all);
    }

    #[test]
    fn bare_binding_arm_is_catch_all() {
        let pf = ParsedFile::parse("fn f(x: E) { match x { E::A => {}, other => use_it(other) } }");
        let m = &pf.matches[0];
        assert!(!m.arms[0].catch_all);
        assert!(m.arms[1].catch_all);
    }

    #[test]
    fn nested_matches_are_separate_entries() {
        let pf = ParsedFile::parse(concat!(
            "fn f(a: E, b: F) {\n",
            "    match a {\n",
            "        E::X => match b {\n",
            "            F::Y => {}\n",
            "            _ => {}\n",
            "        },\n",
            "        _ => {}\n",
            "    }\n",
            "}\n",
        ));
        assert_eq!(pf.matches.len(), 2);
        let outer = &pf.matches[0];
        let inner = &pf.matches[1];
        assert_eq!(outer.arms.len(), 2);
        assert_eq!(inner.arms.len(), 2);
    }

    #[test]
    fn let_and_use_ranges_are_non_expression() {
        let src =
            "use crate::E;\nfn f(v: Option<E>) {\n    if let Some(E::A) = v { go(E::B); }\n}\n";
        let pf = ParsedFile::parse(src);
        // E::A sits in a let pattern; E::B is expression position.
        let a = pf
            .tokens
            .iter()
            .position(|t| t.is_ident("A"))
            .expect("A token");
        let b = pf
            .tokens
            .iter()
            .position(|t| t.is_ident("B"))
            .expect("B token");
        assert!(pf.in_pattern(a));
        assert!(!pf.in_pattern(b));
        let use_e = pf.tokens.iter().position(|t| t.is_ident("E")).expect("E");
        assert!(pf.in_pattern(use_e), "use tree is not a construction site");
    }

    #[test]
    fn scope_of_finds_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        deep();\n    }\n}\n";
        let pf = ParsedFile::parse(src);
        let deep_tok = tok_at_line(&pf, 3);
        assert_eq!(pf.scopes[pf.scope_of(deep_tok)].name, "inner");
    }

    #[test]
    fn struct_and_const_items_are_skipped_cleanly() {
        let pf = ParsedFile::parse(concat!(
            "pub struct S { pub x: u32 }\n",
            "struct T(u32);\n",
            "const N: usize = 4;\n",
            "static NAMES: [&str; 2] = [\"a\", \"b\"];\n",
            "type Alias = Vec<u32>;\n",
            "fn after() {}\n",
        ));
        assert!(pf.scopes.iter().any(|s| s.name == "after"));
    }

    #[test]
    fn generics_with_arrows_and_shifts() {
        let pf = ParsedFile::parse(
            "fn apply<F: Fn(u32) -> Vec<Vec<u32>>>(f: F) -> u32 { f(1)[0][0] }\nfn next() {}\n",
        );
        assert!(pf.scopes.iter().any(|s| s.name == "apply"));
        assert!(pf.scopes.iter().any(|s| s.name == "next"));
    }
}
