//! A hand-rolled Rust lexer producing a line-annotated token stream.
//!
//! This is the first layer of the lint engine: instead of blanking
//! comments and strings out of the raw text and needle-matching what
//! remains (the v1 scanner), every rule now runs over real tokens with
//! source positions. The lexer handles the parts of Rust's lexical
//! grammar that matter for never mis-classifying code as text (or the
//! reverse):
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), kept as [`TokKind::Comment`] tokens so the item
//!   parser can attach doc text to items;
//! * string literals with escapes, raw strings `r"…"` / `r#"…"#` with
//!   any number of hashes, byte strings `b"…"` and raw byte strings
//!   `br#"…"#`;
//! * char literals vs lifetimes (`'a'` is a literal, `'a` is a
//!   lifetime, `b'x'` is a byte literal, `'\''` is an escaped quote);
//! * raw identifiers (`r#match`), lexed as [`TokKind::RawIdent`] so a
//!   `r#fn` never looks like the `fn` keyword;
//! * numbers, including float/method-call disambiguation (`x.0.cmp`
//!   lexes `0` as an integer because `.cmp` follows, while `1.5` stays
//!   one float token).
//!
//! The lexer never fails: anything unrecognised becomes a one-character
//! [`TokKind::Punct`] token. That makes it safe to run over fixture
//! snippets that would not compile — exactly what the negative-case
//! lint tests feed it.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `fn`, `match`).
    Ident,
    /// A raw identifier (`r#match`); [`Tok::text`] keeps the `r#` prefix.
    RawIdent,
    /// A lifetime or loop label (`'a`, `'static`) — no closing quote.
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// Any string literal: plain, raw, byte, or raw-byte.
    StrLit,
    /// A numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// A single punctuation character (`.`, `:`, `{`, …). Multi-char
    /// operators arrive as consecutive tokens (`::` is two `:`).
    Punct,
    /// A comment, line or block; [`Tok::text`] keeps the full text so
    /// doc comments (`///`, `//!`, `/**`, `/*!`) stay inspectable.
    Comment,
}

/// One lexeme with its 1-based start line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// The lexeme class.
    pub kind: TokKind,
    /// The lexeme text, exactly as written (including quotes/prefixes).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True for an identifier token with exactly this text. Raw
    /// identifiers never match: `r#fn` is not the `fn` keyword.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this token is a doc comment (outer `///`/`/**` or
    /// inner `//!`/`/*!`).
    pub fn is_doc_comment(&self) -> bool {
        self.kind == TokKind::Comment
            && (self.text.starts_with("///")
                || self.text.starts_with("//!")
                || self.text.starts_with("/**")
                || self.text.starts_with("/*!"))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream (whitespace dropped, comments kept).
///
/// Never fails; see the module docs for the recovery policy.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        b: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    b: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.b.get(self.i + k).copied()
    }

    /// Advances one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, String::new()),
                'r' | 'b' => match self.string_prefix() {
                    // r"…", r#"…"#, b"…", br"…", b'…', r#ident
                    Some(Prefix::RawStr(hashes)) => self.raw_string(line, hashes),
                    Some(Prefix::ByteStr) => {
                        self.bump(); // `b`
                        self.string(line, String::from("b"));
                    }
                    Some(Prefix::ByteChar) => {
                        self.bump(); // `b`
                        self.char_literal(line, true);
                    }
                    Some(Prefix::RawIdent) => self.raw_ident(line),
                    None => self.ident(line),
                },
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                '\'' => self.quote(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Comment, text, line);
    }

    /// A plain (possibly byte-) string starting at the opening quote;
    /// `text` carries any already-consumed prefix (`b`).
    fn string(&mut self, line: u32, mut text: String) {
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::StrLit, text, line);
    }

    /// What an `r`/`b` at the cursor actually starts, if not a plain
    /// identifier.
    fn string_prefix(&self) -> Option<Prefix> {
        match self.peek(0) {
            Some('r') => {
                // r"…" or r#…: count hashes, then decide string vs ident.
                let mut hashes = 0;
                while self.peek(1 + hashes) == Some('#') {
                    hashes += 1;
                }
                match self.peek(1 + hashes) {
                    Some('"') => Some(Prefix::RawStr(hashes)),
                    Some(c) if hashes == 1 && is_ident_start(c) => Some(Prefix::RawIdent),
                    _ => None,
                }
            }
            Some('b') => match self.peek(1) {
                Some('"') => Some(Prefix::ByteStr),
                Some('\'') => Some(Prefix::ByteChar),
                Some('r') => {
                    let mut hashes = 0;
                    while self.peek(2 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    match self.peek(2 + hashes) {
                        // br"…" / br#"…"# — consume the `b` here, the
                        // raw-string path handles the rest.
                        Some('"') => Some(Prefix::RawStr(hashes)),
                        _ => None,
                    }
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Raw (byte) string: cursor on `r` or `b`; consumes through the
    /// closing quote + hashes.
    fn raw_string(&mut self, line: u32, hashes: usize) {
        let mut text = String::new();
        // Prefix chars up to and including the opening quote.
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                break;
            }
        }
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    text.push('#');
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::StrLit, text, line);
    }

    fn raw_ident(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('r')); // r
        text.push(self.bump().unwrap_or('#')); // #
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::RawIdent, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                // Digits, hex digits, suffixes (`u64`), exponents.
                let at_exponent = (c == 'e' || c == 'E') && !text.starts_with("0x");
                text.push(c);
                self.bump();
                if at_exponent && matches!(self.peek(0), Some('+' | '-')) {
                    if let Some(sign) = self.bump() {
                        text.push(sign);
                    }
                }
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` is one float; `x.0.cmp()` keeps `.cmp` a method
                // call because `c` after the dot is not a digit.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::NumLit, text, line);
    }

    /// A `'`: char literal or lifetime.
    fn quote(&mut self, line: u32) {
        if self.peek(1) == Some('\\') || (self.peek(2) == Some('\'') && self.peek(1) != Some('\''))
        {
            self.char_literal(line, false);
        } else {
            // Lifetime / label: consume the quote plus the identifier.
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Lifetime, text, line);
        }
    }

    /// Char literal with the cursor on the opening `'`.
    fn char_literal(&mut self, line: u32, byte: bool) {
        let mut text = if byte {
            String::from("b'")
        } else {
            String::from("'")
        };
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                break;
            }
        }
        self.push(TokKind::CharLit, text, line);
    }
}

enum Prefix {
    RawStr(usize),
    ByteStr,
    ByteChar,
    RawIdent,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn foo() {\n    bar.baz();\n}\n");
        let foo = toks.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 1);
        let baz = toks.iter().find(|t| t.is_ident("baz")).unwrap();
        assert_eq!(baz.line, 2);
        assert!(toks.iter().any(|t| t.is_punct('{')));
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn strings_hide_their_contents() {
        let texts = code_texts("let s = \".unwrap() panic!\";");
        assert!(texts.iter().any(|t| t == "\".unwrap() panic!\""));
        assert!(!texts.iter().any(|t| t == "unwrap" || t == "panic"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = lex(r#"let s = "a\"b\\"; x.unwrap();"#);
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::StrLit).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let a = r\"x\"; let b = r#\"contains \"quotes\" and panic!\"#; c.unwrap();";
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::StrLit).count(), 2);
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn byte_strings_and_raw_byte_strings() {
        let toks = lex("let a = b\"bytes\"; let b = br#\"raw panic!\"#;");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::StrLit).count(), 2);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner .unwrap() */ still comment */ real()");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
            1
        );
        assert!(toks.iter().any(|t| t.is_ident("real")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let toks = lex("/// outer doc\n//! inner doc\n// plain\n/** block doc */\nfn f() {}\n");
        let docs: Vec<bool> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Comment)
            .map(Tok::is_doc_comment)
            .collect();
        assert_eq!(docs, vec![true, true, false, true]);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let u = '\\u{41}'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            3
        );
    }

    #[test]
    fn byte_char_literals() {
        let toks = lex("let c = b'x'; let e = b'\\''; y.unwrap();");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            2
        );
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn static_lifetime_and_labels() {
        let toks = lex("fn f() -> &'static str { 'outer: loop { break 'outer; } }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn raw_identifiers_are_not_keywords() {
        let toks = lex("let r#fn = 3; fn real() {}");
        assert_eq!(
            toks.iter().filter(|t| t.is_ident("fn")).count(),
            1,
            "only the real `fn` keyword is an Ident"
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::RawIdent && t.text == "r#fn"));
    }

    #[test]
    fn numbers_and_tuple_field_access() {
        let ks = kinds("let x = 1.5 + 0x1f; a.0.partial_cmp(&b.0);");
        assert!(ks.contains(&(TokKind::NumLit, "1.5".into())));
        assert!(ks.contains(&(TokKind::NumLit, "0x1f".into())));
        // `a.0.partial_cmp` keeps the method name a separate ident.
        assert!(ks.contains(&(TokKind::Ident, "partial_cmp".into())));
        assert!(ks.contains(&(TokKind::NumLit, "0".into())));
    }

    #[test]
    fn exponent_floats() {
        let ks = kinds("let x = 1e-5; let y = 2.5E+10; let z = 7e3;");
        assert!(ks.contains(&(TokKind::NumLit, "1e-5".into())));
        assert!(ks.contains(&(TokKind::NumLit, "2.5E+10".into())));
        assert!(ks.contains(&(TokKind::NumLit, "7e3".into())));
    }

    #[test]
    fn tokens_split_across_lines_keep_positions() {
        // The v1 scanner matched needles per line and missed calls split
        // by rustfmt; the token stream sees them regardless of layout.
        let toks = lex("x\n    .unwrap\n    ();\n");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn lone_r_and_b_are_plain_idents() {
        let toks = lex("let r = 1; let b = r + 2; br();");
        assert!(toks.iter().any(|t| t.is_ident("r")));
        assert!(toks.iter().any(|t| t.is_ident("b")));
        assert!(toks.iter().any(|t| t.is_ident("br")));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        for src in ["\"unterminated", "r#\"raw", "/* open", "'", "b'"] {
            let _ = lex(src); // must terminate without panicking
        }
    }
}
