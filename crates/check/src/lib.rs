//! # lems-check — correctness tooling for the lems workspace
//!
//! Two analysis layers over the deterministic mail simulator:
//!
//! * [`lint`] — a dependency-free static analysis engine over
//!   `crates/*/src`: a hand-rolled Rust lexer ([`lex`]) and item parser
//!   ([`items`]) feed scope-aware rules that enforce the workspace's
//!   determinism and robustness invariants — no `unwrap`/`expect`/
//!   `panic!` in non-test library code (with a vetted, versioned
//!   allowlist), no wall-clock or ambient randomness inside sim-driven
//!   crates, no hash-ordered collections in actor decision paths — plus
//!   semantic lints built on a third, flow-aware layer: a statement/
//!   expression parser ([`expr`]), per-fn control-flow graphs ([`cfg`]),
//!   and a worklist dataflow engine with fn summaries ([`flow`]). The
//!   flow rules are `determinism-taint` (nondeterminism sources must not
//!   reach emission or scheduling sinks), `store-mutation-discipline`
//!   (durable state only moves through `MailStore`),
//!   `no-ignored-store-errors` (store/WAL `Result`s must be consumed),
//!   `rng-fork-discipline` (every RNG draw descends from the seeded
//!   fork tree), and `event-match-exhaustive` (protocol-enum variants
//!   vs actor `match` arms). Reports render as text, schema-versioned
//!   JSON ([`report`]), or GitHub error annotations.
//! * [`audit`] — a [`TraceAuditor`](audit::TraceAuditor) that consumes
//!   [`lems_sim::trace`] event streams and asserts the engine's
//!   conservation laws (every send terminates in exactly one deliver or
//!   drop; crash/recover events alternate per actor), plus domain-level
//!   ledger checks for System-1 deployments (mailbox deposits balance
//!   retrievals, GetMail under injected failures never strands delivered
//!   mail).
//! * [`scenarios`] — reproducible deployment scenarios replayed by the
//!   `lems-check -- audit` subcommand and by integration tests.
//! * [`explore`] — a small-scope schedule model checker: exhaustively
//!   enumerates same-instant event interleavings of tiny System-1 and
//!   System-2 deployments (via [`lems_sim::sched`]), auditing every
//!   terminal trace and reporting failing schedules as replayable
//!   branch-choice lists.
//!
//! Run from the workspace root:
//!
//! ```sh
//! cargo run -p lems-check -- lint
//! cargo run -p lems-check -- audit
//! cargo run --release -p lems-check -- explore
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cfg;
pub mod explore;
pub mod expr;
pub mod flow;
pub mod items;
pub mod lex;
pub mod lint;
pub mod report;
pub mod scenarios;
