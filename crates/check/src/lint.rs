//! Static lint pass over the workspace sources.
//!
//! The scanner is deliberately dependency-light: it tokenises each file
//! just enough to blank out comments, strings, and char literals (so doc
//! examples and log text never trip a rule), tracks `#[cfg(test)]` blocks
//! (test code may unwrap freely), and then matches per-rule needles
//! against what remains.
//!
//! ## Rules
//!
//! * **`no-panic`** — non-test library code must not contain `.unwrap()`,
//!   `.expect(`, `panic!`, `unreachable!`, `todo!`, or `unimplemented!`.
//!   A crashed simulation loses a whole experiment; fallible lookups
//!   return `Result` (see `lems_net::NetError`). `assert!`-family guards
//!   are allowed: they document invariants rather than handle input.
//!   Binary entry points (`src/main.rs`, `src/bin/**`) and the
//!   `lems-bench` experiment-driver crate are exempt: fail-fast on setup
//!   errors is correct behaviour for a command-line tool.
//! * **`no-wall-clock`** — crates that run *inside* the simulation
//!   (`sim`, `syntax`, `locindep`, `mst`) must not read `SystemTime`,
//!   `Instant`, or `thread_rng`: all time comes from `sim::time` and all
//!   randomness from the seeded `sim::rng`, otherwise replays diverge.
//! * **`no-hash-collections`** — actor decision paths (files named
//!   `actors.rs`) must use ordered collections (`BTreeMap`/`BTreeSet`):
//!   hash-order iteration is nondeterministic across runs and platforms.
//! * **`no-partial-cmp-sort`** — sorting through
//!   `partial_cmp(..).unwrap()` (or any `.sort*` + `partial_cmp` combo)
//!   panics on NaN and invites `unwrap_or(Ordering::Equal)` hacks that
//!   silently destroy total order. Use `f64::total_cmp` or a plain `Ord`
//!   key instead. Unlike the rules above this one also applies to test
//!   code: a NaN-panicking comparator is as flaky in a test as anywhere.
//! * **`no-unbounded-run`** — outside the `sim` crate itself, library
//!   and test code must drive simulations with
//!   `run_to_quiescence_bounded(budget)` rather than the unbounded
//!   `run_to_quiescence()`: a retry loop that never converges (the exact
//!   bug class the schedule explorer hunts) must fail a bounded run, not
//!   hang the process. Also applies to test code.
//! * **`no-ambient-parallelism`** — sim-driven crates must not reach for
//!   `rayon`, `par_iter`, `thread::spawn`, or `available_parallelism`
//!   without a vetted allowlist entry: thread fan-out inside simulated
//!   code is only deterministic when the merge step is explicitly
//!   order-independent, so every such call site gets audited (the
//!   `assign` scaled solver's evaluation fan-out is the vetted example).
//!
//! Vetted exceptions live in `lint-allow.txt` at the workspace root; see
//! [`Allowlist`] for the format. Exceptions that no longer match any
//! source line are *stale* and fail the pass — the list cannot rot.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifier: no panicking constructs in non-test library code.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule identifier: no wall-clock or ambient randomness in sim-driven code.
pub const RULE_NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule identifier: no hash-ordered collections in actor decision paths.
pub const RULE_NO_HASH: &str = "no-hash-collections";
/// Rule identifier: no sorting through `partial_cmp` (use `total_cmp`/`Ord`).
pub const RULE_NO_PARTIAL_CMP_SORT: &str = "no-partial-cmp-sort";
/// Rule identifier: no unbounded `run_to_quiescence()` outside the sim crate.
pub const RULE_NO_UNBOUNDED_RUN: &str = "no-unbounded-run";
/// Rule identifier: no unaudited thread fan-out in sim-driven crates.
pub const RULE_NO_AMBIENT_PAR: &str = "no-ambient-parallelism";

/// Crates whose code runs under the deterministic simulation clock.
const SIM_DRIVEN_CRATES: &[&str] = &["sim", "syntax", "locindep", "mst"];

/// Needles for the `no-panic` rule.
const PANICKY: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (`RULE_*` constant).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// Vetted exceptions, loaded from `lint-allow.txt`.
///
/// Format, one exception per line:
///
/// ```text
/// # comment
/// <rule> <path-suffix> <substring of the offending line>
/// ```
///
/// A violation is waived when the rule matches, the violation's path ends
/// with `<path-suffix>`, and the raw source line contains the substring.
/// Entries that never match anything are reported so the list cannot rot.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Clone, Debug)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    needle: String,
    used: std::cell::Cell<u32>,
}

impl Allowlist {
    /// An empty allowlist (everything reported).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses the allowlist format; unparseable lines are errors.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (rule, path, needle) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(n)) if !n.trim().is_empty() => {
                    (r.to_owned(), p.to_owned(), n.trim().to_owned())
                }
                _ => {
                    return Err(format!(
                        "lint-allow.txt:{}: expected `<rule> <path-suffix> <needle>`",
                        i + 1
                    ))
                }
            };
            entries.push(AllowEntry {
                rule,
                path_suffix: path,
                needle,
                used: std::cell::Cell::new(0),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Loads `lint-allow.txt` from `root`; a missing file is an empty list.
    pub fn load(root: &Path) -> Result<Self, String> {
        match fs::read_to_string(root.join("lint-allow.txt")) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(format!("reading lint-allow.txt: {e}")),
        }
    }

    /// Number of exceptions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no exceptions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn waives(&self, v: &Violation, raw_line: &str) -> bool {
        self.entries.iter().any(|e| {
            e.rule == v.rule
                && v.path.ends_with(&e.path_suffix)
                && raw_line.contains(&e.needle)
                && {
                    e.used.set(e.used.get() + 1);
                    true
                }
        })
    }

    /// Entries that waived nothing in the last run (stale exceptions).
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| e.used.get() == 0)
            .map(|e| format!("{} {} {}", e.rule, e.path_suffix, e.needle))
            .collect()
    }
}

/// Outcome of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing. These fail the pass: a
    /// stale exception means the vetted code is gone and the waiver now
    /// silently covers whatever lands on that line next.
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the run found nothing to report — no violations *and*
    /// no stale allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }
}

/// Blanks comments, string literals, and char literals while preserving
/// every newline (so line numbers survive). Lifetimes (`'a`) are kept.
fn strip_code(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = |k: usize| b.get(i + k).copied();
        match st {
            St::Code => {
                if c == '/' && next(1) == Some('/') {
                    st = St::Line;
                    out.push(' ');
                } else if c == '/' && next(1) == Some('*') {
                    st = St::Block(1);
                    out.push(' ');
                } else if c == '"' {
                    st = St::Str;
                    out.push(' ');
                } else if c == 'r' && (next(1) == Some('"') || next(1) == Some('#')) {
                    // Possible raw string r"..." / r#"..."#.
                    let mut hashes = 0;
                    while next(1 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if next(1 + hashes) == Some('"') {
                        st = St::RawStr(hashes);
                        for _ in 0..=hashes {
                            out.push(' ');
                            i += 1;
                        }
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x' or '\x…'.
                    if next(1) == Some('\\') || (next(2) == Some('\'') && next(1) != Some('\'')) {
                        st = St::Char;
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                } else {
                    out.push(c);
                }
            }
            St::Line => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Block(d) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '/' && next(1) == Some('*') {
                    st = St::Block(d + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                } else if c == '*' && next(1) == Some('/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    if next(1).is_some() {
                        out.push(if next(1) == Some('\n') { '\n' } else { ' ' });
                        i += 1;
                    }
                } else if c == '"' {
                    st = St::Code;
                    out.push(' ');
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let closed = (0..hashes).all(|k| next(1 + k) == Some('#'));
                    if closed {
                        for _ in 0..hashes {
                            out.push(' ');
                            i += 1;
                        }
                        out.push(' ');
                        st = St::Code;
                    } else {
                        out.push(' ');
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            St::Char => {
                if c == '\\' {
                    out.push(' ');
                    if next(1).is_some() {
                        out.push(' ');
                        i += 1;
                    }
                } else if c == '\'' {
                    st = St::Code;
                    out.push(' ');
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
        }
        i += 1;
    }
    out
}

/// Marks lines that belong to `#[cfg(test)]` blocks (true = test code).
fn test_line_mask(stripped_lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; stripped_lines.len()];
    let mut i = 0;
    while i < stripped_lines.len() {
        if stripped_lines[i].contains("#[cfg(test)]") {
            // Skip from here through the end of the next braced block.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < stripped_lines.len() {
                mask[j] = true;
                for ch in stripped_lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// True if `hay` contains `needle` at an identifier boundary: when the
/// needle starts with an identifier char (macros like `panic!`, names
/// like `thread_rng`), the preceding char must not be one, so
/// `prefix_panic!` or `my_thread_rng` never match. Method needles like
/// `.unwrap()` start with `.`, which is its own boundary.
fn contains_token(hay: &str, needle: &str) -> bool {
    let ident_start = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let boundary = !ident_start
            || abs == 0
            || !hay[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

fn crate_of(rel_path: &str) -> Option<&str> {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
}

/// Scans one file's contents; `rel_path` is workspace-relative with
/// forward slashes (e.g. `crates/sim/src/actor.rs`).
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let stripped = strip_code(source);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let raw_lines: Vec<&str> = source.lines().collect();
    let mask = test_line_mask(&stripped_lines);

    let krate = crate_of(rel_path).unwrap_or("");
    let sim_driven = SIM_DRIVEN_CRATES.contains(&krate);
    let is_actor_file = rel_path.ends_with("/actors.rs");
    // Binaries and the experiment-driver crate may fail fast.
    let panic_exempt =
        krate == "bench" || rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs");

    let mut out = Vec::new();
    let mut push = |rule: &'static str, ln: usize| {
        out.push(Violation {
            path: rel_path.to_owned(),
            line: ln + 1,
            rule,
            excerpt: raw_lines
                .get(ln)
                .map(|l| l.trim().to_owned())
                .unwrap_or_default(),
        });
    };

    for (ln, line) in stripped_lines.iter().enumerate() {
        // Rules that govern test code too: a NaN-panicking comparator or
        // an unbounded simulation drive is as hazardous in a test as in
        // the library, so these fire before the `#[cfg(test)]` mask.
        if line.contains(".sort")
            && contains_token(line, "partial_cmp")
            && !line.contains("fn partial_cmp")
        {
            push(RULE_NO_PARTIAL_CMP_SORT, ln);
        }
        if krate != "sim" && contains_token(line, "run_to_quiescence()") {
            push(RULE_NO_UNBOUNDED_RUN, ln);
        }
        if mask[ln] {
            continue;
        }
        if !panic_exempt && PANICKY.iter().any(|n| contains_token(line, n)) {
            push(RULE_NO_PANIC, ln);
        }
        if sim_driven
            && ["SystemTime", "Instant", "thread_rng"]
                .iter()
                .any(|n| contains_token(line, n))
        {
            push(RULE_NO_WALL_CLOCK, ln);
        }
        if is_actor_file
            && ["HashMap", "HashSet"]
                .iter()
                .any(|n| contains_token(line, n))
        {
            push(RULE_NO_HASH, ln);
        }
        if sim_driven
            && [
                "rayon",
                "par_iter",
                "into_par_iter",
                "thread::spawn",
                "available_parallelism",
            ]
            .iter()
            .any(|n| contains_token(line, n))
        {
            push(RULE_NO_AMBIENT_PAR, ln);
        }
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src` tree under `root`, applying `allow`.
///
/// # Errors
///
/// Returns I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut report = LintReport::default();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for file in files {
            let source = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            let raw_lines: Vec<&str> = source.lines().collect();
            for v in scan_source(&rel, &source) {
                let raw = raw_lines.get(v.line - 1).copied().unwrap_or("");
                if !allow.waives(&v, raw) {
                    report.violations.push(v);
                }
            }
        }
    }
    report.stale_allows = allow.unused();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unwrap_and_panic_in_lib_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn g() {\n    panic!(\"boom\");\n}\n";
        let vs = scan_source("crates/core/src/lib.rs", src);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].rule, RULE_NO_PANIC);
        assert_eq!(vs[0].line, 2);
        assert_eq!(vs[1].line, 5);
    }

    #[test]
    fn expect_and_todo_and_unreachable_fire() {
        let src = "fn f() {\n    let _ = std::env::var(\"X\").expect(\"set\");\n    todo!()\n}\nfn h() { unreachable!() }\n";
        let vs = scan_source("crates/net/src/x.rs", src);
        let lines: Vec<usize> = vs.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3, 5]);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0) + x.unwrap_or_default() + x.unwrap_or_else(|| 1)\n}\n";
        assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn comments_strings_and_doc_examples_are_ignored() {
        let src = concat!(
            "//! Doc: call `.unwrap()` freely in examples.\n",
            "/// ```\n",
            "/// let x = maybe().unwrap();\n",
            "/// ```\n",
            "fn f() {\n",
            "    // panic!(\"not real\")\n",
            "    let s = \".unwrap() panic! SystemTime\";\n",
            "    let c = '\\'';\n",
            "    let _ = (s, c); /* .expect( */\n",
            "}\n",
        );
        assert!(scan_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = concat!(
            "pub fn lib() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() {\n",
            "        Some(1).unwrap();\n",
            "        panic!(\"fine in tests\");\n",
            "    }\n",
            "}\n",
        );
        assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn code_after_a_test_block_is_still_linted() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests { fn t() { Some(1).unwrap(); } }\n",
            "pub fn lib(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let vs = scan_source("crates/core/src/lib.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn wall_clock_fires_only_in_sim_driven_crates() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    let r = rand::thread_rng();\n    let _ = (t, r);\n}\n";
        let in_sim = scan_source("crates/syntax/src/x.rs", src);
        assert_eq!(in_sim.len(), 2);
        assert!(in_sim.iter().all(|v| v.rule == RULE_NO_WALL_CLOCK));
        // The eval crate post-processes results outside the simulation.
        assert!(scan_source("crates/eval/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_collections_fire_only_in_actor_files() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        let vs = scan_source("crates/syntax/src/actors.rs", src);
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.rule == RULE_NO_HASH));
        assert!(scan_source("crates/syntax/src/assign.rs", src).is_empty());
    }

    #[test]
    fn binaries_and_bench_drivers_are_panic_exempt() {
        let src = "fn main() { run().expect(\"setup\"); }\n";
        assert!(scan_source("crates/bench/src/cache_exp.rs", src).is_empty());
        assert!(scan_source("crates/check/src/main.rs", src).is_empty());
        assert!(scan_source("crates/bench/src/bin/repro-all.rs", src).is_empty());
        // ...but the wall-clock rule still applies to sim-driven binaries.
        let clock = "fn main() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(scan_source("crates/sim/src/bin/x.rs", clock).len(), 1);
    }

    #[test]
    fn partial_cmp_sort_fires_even_in_test_code() {
        let src = concat!(
            "fn f(mut v: Vec<f64>) {\n",
            "    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(mut v: Vec<(f64, u32)>) {\n",
            "        v.sort_by_key(|x| x.1);\n",
            "        v.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());\n",
            "    }\n",
            "}\n",
        );
        let vs: Vec<_> = scan_source("crates/eval/src/x.rs", src)
            .into_iter()
            .filter(|v| v.rule == RULE_NO_PARTIAL_CMP_SORT)
            .collect();
        let lines: Vec<usize> = vs.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 8]);
    }

    #[test]
    fn total_cmp_sorts_and_partial_cmp_impls_do_not_fire() {
        let src = concat!(
            "fn f(mut v: Vec<f64>) {\n",
            "    v.sort_by(f64::total_cmp);\n",
            "    v.sort_by(|a, b| a.total_cmp(b));\n",
            "}\n",
            "impl PartialOrd for W {\n",
            "    fn partial_cmp(&self, o: &W) -> Option<Ordering> { self.0.partial_cmp(&o.0) }\n",
            "}\n",
        );
        assert!(scan_source("crates/eval/src/x.rs", src)
            .iter()
            .all(|v| v.rule != RULE_NO_PARTIAL_CMP_SORT));
    }

    #[test]
    fn unbounded_run_fires_outside_sim_crate_including_tests() {
        let src = concat!(
            "pub fn drive(sim: &mut S) {\n",
            "    sim.run_to_quiescence();\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(sim: &mut S) {\n",
            "        sim.run_to_quiescence();\n",
            "        assert!(sim.run_to_quiescence_bounded(1_000));\n",
            "    }\n",
            "}\n",
        );
        let vs: Vec<_> = scan_source("crates/syntax/src/x.rs", src)
            .into_iter()
            .filter(|v| v.rule == RULE_NO_UNBOUNDED_RUN)
            .collect();
        let lines: Vec<usize> = vs.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 7]);
        // The sim crate defines (and may call) the unbounded variant.
        assert!(scan_source("crates/sim/src/x.rs", src)
            .iter()
            .all(|v| v.rule != RULE_NO_UNBOUNDED_RUN));
    }

    #[test]
    fn ambient_parallelism_fires_only_in_sim_driven_crates() {
        let src = concat!(
            "use rayon::prelude::*;\n",
            "fn f(v: &[u32]) -> Vec<u32> {\n",
            "    let h = std::thread::spawn(|| 1);\n",
            "    let _ = (h, std::thread::available_parallelism());\n",
            "    v.par_iter().map(|&x| x + 1).collect()\n",
            "}\n",
        );
        let vs = scan_source("crates/syntax/src/x.rs", src);
        assert_eq!(vs.len(), 4);
        assert!(vs.iter().all(|v| v.rule == RULE_NO_AMBIENT_PAR));
        // Non-sim-driven crates (net, bench, check) fan out freely.
        assert!(scan_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn token_boundaries_respected() {
        let src = "fn f() { my_thread_rng(); not_a_panic!simulated(); }\n";
        assert!(scan_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "fn f() -> &'static str { r#\"contains .unwrap() and panic!\"# }\n";
        assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allowlist_waives_and_reports_stale_entries() {
        let allow = Allowlist::parse(
            "# vetted\nno-panic crates/core/src/lib.rs expect(\"generated names\nno-panic crates/net/src/never.rs nothing here\n",
        )
        .unwrap();
        let v = Violation {
            path: "crates/core/src/lib.rs".into(),
            line: 1,
            rule: RULE_NO_PANIC,
            excerpt: String::new(),
        };
        assert!(allow.waives(
            &v,
            "let x = name.parse().expect(\"generated names are valid\");"
        ));
        assert!(!allow.waives(&v, "let x = other.unwrap();"));
        assert_eq!(allow.unused().len(), 1);
    }

    #[test]
    fn stale_allowlist_entries_fail_the_pass() {
        let clean = LintReport::default();
        assert!(clean.is_clean());
        let stale = LintReport {
            stale_allows: vec!["no-panic crates/net/src/never.rs nothing".into()],
            ..LintReport::default()
        };
        assert!(!stale.is_clean());
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("no-panic onlytwo").is_err());
        assert!(Allowlist::parse("").unwrap().is_empty());
    }

    #[test]
    fn lint_workspace_on_this_repo_smoke() {
        // The real tree must scan without I/O errors; cleanliness is
        // asserted by the CI invocation, not here (tests must not depend
        // on the allowlist's current contents).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root, &Allowlist::empty()).unwrap();
        assert!(report.files_scanned > 30);
    }
}
