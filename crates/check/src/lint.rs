//! Scope-aware, flow-aware static lint pass over the workspace sources
//! (engine v3).
//!
//! The engine has three layers, all dependency-free (the build is
//! offline): [`crate::lex`] turns each file into a token stream with
//! line spans — raw strings, nested block comments, char-vs-lifetime,
//! `r#` idents all handled — [`crate::items`] recovers the item
//! shape on top of it: module/fn/impl nesting, `#[cfg(test)]`
//! inheritance, `# Panics` doc contracts, enum definitions, `type Msg`
//! protocol declarations, and `match` arms — and, new in v3, a flow
//! layer: [`crate::expr`] parses fn bodies into statement trees,
//! [`crate::cfg`] lowers them to per-fn control-flow graphs, and
//! [`crate::flow`] runs a worklist taint analysis over them with fn
//! summaries iterated to fixpoint through each crate's call graph.
//! Rules run over tokens, scopes, and dataflow facts instead of
//! needle-matching blanked text, which kills the v1 false-negative
//! classes (needles split across lines, test masks lost across nested
//! `mod` blocks), the v1 false positives (needles inside identifiers or
//! literals), and the v2 blind spot of taint that crosses statements or
//! helper fns.
//!
//! ## Rules
//!
//! * **`no-panic`** — non-test library code must not contain
//!   `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, or
//!   `unimplemented!`. A crashed simulation loses a whole experiment;
//!   fallible lookups return `Result` (see `lems_net::NetError`).
//!   `assert!`-family guards are allowed: they document invariants
//!   rather than handle input. Two exemptions: binary entry points
//!   (`src/main.rs`, `src/bin/**`) and the `lems-bench` driver crate
//!   may fail fast; and a panic site inside a function whose doc
//!   comment carries a `# Panics` section is vetted by that documented
//!   contract (the inverse of `clippy::missing_panics_doc`).
//! * **`no-wall-clock`** (v3) — crates that run *inside* the simulation
//!   (`sim`, `syntax`, `locindep`, `mst`) must not read `SystemTime`,
//!   `Instant`, or `thread_rng`: all time comes from `sim::time` and
//!   all randomness from the seeded `sim::rng`, or replays diverge.
//!   Since v3 this is the syntactic backstop behind `determinism-taint`.
//! * **`no-hash-collections`** (v3) — actor decision paths (files named
//!   `actors.rs`) must use ordered collections (`BTreeMap`/`BTreeSet`):
//!   hash-order iteration is nondeterministic across runs/platforms.
//!   Since v3 this is the syntactic backstop behind `determinism-taint`,
//!   which follows actual iteration-order taint in every sim-driven
//!   file, not just `actors.rs`.
//! * **`no-partial-cmp-sort`** — a `.sort*(…)` call whose comparator
//!   mentions `partial_cmp` panics on NaN or invites
//!   `unwrap_or(Ordering::Equal)` hacks that destroy total order; use
//!   `f64::total_cmp` or an `Ord` key. Applies to test code too, and —
//!   new in v2 — across line breaks inside the call.
//! * **`no-unbounded-run`** — outside the `sim` crate, drive
//!   simulations with `run_to_quiescence_bounded(budget)`, never the
//!   unbounded `run_to_quiescence()`. Applies to test code too.
//! * **`no-ambient-parallelism`** — sim-driven crates must not reach
//!   for `rayon`, `par_iter`, `thread::spawn`, or
//!   `available_parallelism` without a vetted allowlist entry.
//! * **`rng-fork-discipline`** — (semantic, v2) every RNG in a
//!   sim-driven crate must descend from the deployment's seeded fork
//!   tree. A taint pass over the per-crate item graph flags bare
//!   `SimRng::seed(…)` roots in non-test code that are not immediately
//!   `.fork(label)`-chained, and — by iterating fn summaries (does this
//!   fn return a bare root?) to fixpoint — call sites of helpers that
//!   launder such roots through a return value. `sim/src/rng.rs` itself
//!   is the trusted module and exempt.
//! * **`event-match-exhaustive`** — (semantic, v2) for every protocol
//!   enum named by a non-test `type Msg = E;` actor impl, the handler
//!   file's non-test `match`es over `E` must name every variant: a
//!   catch-all arm silently swallowing unnamed variants is exactly how
//!   a new event kind gets dropped on the floor. Variants never
//!   constructed anywhere in the scanned sources are flagged as dead.
//!   Intentionally ignored variants are spelled `E::A { .. } | … => {}`
//!   so the ignore list is visible and compiler-checked.
//! * **`determinism-taint`** — (flow, v3 engine) in non-test code of
//!   sim-driven crates, no value derived from a nondeterminism source —
//!   wall-clock reads, `HashMap`/`HashSet` iteration order, ambient
//!   randomness — may reach an emission or scheduling sink (`send`,
//!   `record`, `set_timer`, RNG `fork`, …). The taint analysis follows
//!   `let` chains, loop-carried accumulation, and helper-fn summaries,
//!   so laundering through a wrapper fn does not hide the flow. The
//!   trusted `sim/src/rng.rs` module is exempt.
//! * **`store-mutation-discipline`** — (flow, v3 engine) durable
//!   mailbox/ledger state may only be mutated inside
//!   `lems_core::{store,mailbox}`; everywhere else, a mutating call on
//!   a `Mailbox`-classed value (or a `Mailbox`-valued map, or a bare
//!   `Mailbox::new`) bypasses the `MailStore` trait — exactly the
//!   invariant the WAL recovery proofs assume.
//! * **`no-ignored-store-errors`** — (flow, v3 engine) a `Result` from
//!   a WAL/segment operation (`append`, `sync`, `create`, `read`, …)
//!   that is dropped as a bare statement, `let _ =`-discarded, or
//!   `.ok()`-swallowed in non-test code is a violation: a swallowed
//!   store error silently diverges the durable state from the log.
//!
//! Vetted exceptions live in `lint-allow.txt` at the workspace root;
//! see [`Allowlist`] for the `rule@version` entry format. Entries that
//! no longer match any source line — or that pin an outdated rule
//! version — are *stale* and fail the pass, so the list cannot rot.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::expr::{call_sites, Stmt, StmtKind};
use crate::flow::{self, FnCtx, FnUnit, Summary, TaintConfig, TypeClass, ROOT_MASK};
use crate::items::{ParsedFile, ScopeKind};
use crate::lex::{Tok, TokKind};

/// Rule identifier: no panicking constructs in non-test library code.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule identifier: no wall-clock or ambient randomness in sim-driven code.
pub const RULE_NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule identifier: no hash-ordered collections in actor decision paths.
pub const RULE_NO_HASH: &str = "no-hash-collections";
/// Rule identifier: no sorting through `partial_cmp` (use `total_cmp`/`Ord`).
pub const RULE_NO_PARTIAL_CMP_SORT: &str = "no-partial-cmp-sort";
/// Rule identifier: no unbounded `run_to_quiescence()` outside the sim crate.
pub const RULE_NO_UNBOUNDED_RUN: &str = "no-unbounded-run";
/// Rule identifier: no unaudited thread fan-out in sim-driven crates.
pub const RULE_NO_AMBIENT_PAR: &str = "no-ambient-parallelism";
/// Rule identifier: RNG draws must descend from the seeded fork tree.
pub const RULE_RNG_FORK: &str = "rng-fork-discipline";
/// Rule identifier: protocol-enum matches must name every variant.
pub const RULE_EVENT_MATCH: &str = "event-match-exhaustive";
/// Rule identifier: nondeterminism sources must not reach emission sinks.
pub const RULE_DETERMINISM_TAINT: &str = "determinism-taint";
/// Rule identifier: durable state mutates only through `MailStore`.
pub const RULE_STORE_MUTATION: &str = "store-mutation-discipline";
/// Rule identifier: store/WAL `Result`s must be consumed.
pub const RULE_IGNORED_STORE_ERR: &str = "no-ignored-store-errors";

/// Every rule id with its current version. Allowlist entries pin a
/// version (`rule@version`); when a rule's analysis changes enough that
/// old waivers need re-vetting, its version bumps here and the stale
/// entries fail the pass until re-audited.
pub fn rule_versions() -> &'static [(&'static str, u32)] {
    &[
        (RULE_NO_PANIC, 2),
        (RULE_NO_WALL_CLOCK, 3),
        (RULE_NO_HASH, 3),
        (RULE_NO_PARTIAL_CMP_SORT, 2),
        (RULE_NO_UNBOUNDED_RUN, 2),
        (RULE_NO_AMBIENT_PAR, 2),
        (RULE_RNG_FORK, 1),
        (RULE_EVENT_MATCH, 1),
        (RULE_DETERMINISM_TAINT, 1),
        (RULE_STORE_MUTATION, 1),
        (RULE_IGNORED_STORE_ERR, 1),
    ]
}

fn version_of(rule: &str) -> u32 {
    rule_versions()
        .iter()
        .find(|&&(r, _)| r == rule)
        .map_or(0, |&(_, v)| v)
}

/// Crates whose code runs under the deterministic simulation clock.
const SIM_DRIVEN_CRATES: &[&str] = &["sim", "syntax", "locindep", "mst"];

/// The trusted RNG module: defines the seeded fork tree itself.
const RNG_MODULE: &str = "crates/sim/src/rng.rs";

/// The trusted profiler module: its wall-clock side channel (`Wall`) is
/// the one deliberate `Instant` in the sim crate, and by construction it
/// never flows into simulation state or exported bytes —
/// `tests/prof_digest.rs` pins that trace digests are identical with
/// profiling on and off.
const PROF_MODULE: &str = "crates/sim/src/prof.rs";

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The rule that fired (`RULE_*` constant).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Rule-specific explanation of why this site was flagged.
    pub note: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}",
            self.path, self.line, self.rule, self.excerpt, self.note
        )
    }
}

/// Vetted exceptions, loaded from `lint-allow.txt`.
///
/// Format, one exception per line:
///
/// ```text
/// # comment
/// <rule>@<version> <path-suffix> <substring of the offending line>
/// ```
///
/// A violation is waived when all four match: the rule id, the entry's
/// pinned version equals the rule's *current* version, the violation's
/// path ends with `<path-suffix>`, and the raw source line contains the
/// substring. Entries that never waive anything — including entries
/// pinning an outdated rule version — are *stale* and fail the pass.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Clone, Debug)]
struct AllowEntry {
    rule: String,
    version: u32,
    path_suffix: String,
    needle: String,
    used: std::cell::Cell<u32>,
}

impl Allowlist {
    /// An empty allowlist (everything reported).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses the allowlist format; unparseable lines are errors.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line when an entry is
    /// malformed, names an unknown rule, or omits the `@version` pin.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (rule_field, path, needle) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(n)) if !n.trim().is_empty() => {
                    (r.to_owned(), p.to_owned(), n.trim().to_owned())
                }
                _ => {
                    return Err(format!(
                        "lint-allow.txt:{}: expected `<rule>@<version> <path-suffix> <needle>`",
                        i + 1
                    ))
                }
            };
            let Some((rule, ver)) = rule_field.split_once('@') else {
                return Err(format!(
                    "lint-allow.txt:{}: entry must pin a rule version (`{rule_field}@N`)",
                    i + 1
                ));
            };
            let Ok(version) = ver.parse::<u32>() else {
                return Err(format!(
                    "lint-allow.txt:{}: bad version `{ver}` in `{rule_field}`",
                    i + 1
                ));
            };
            if !rule_versions().iter().any(|&(r, _)| r == rule) {
                return Err(format!("lint-allow.txt:{}: unknown rule `{rule}`", i + 1));
            }
            entries.push(AllowEntry {
                rule: rule.to_owned(),
                version,
                path_suffix: path,
                needle,
                used: std::cell::Cell::new(0),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Loads `lint-allow.txt` from `root`; a missing file is an empty list.
    ///
    /// # Errors
    ///
    /// Returns a message on unreadable files or malformed entries.
    pub fn load(root: &Path) -> Result<Self, String> {
        match fs::read_to_string(root.join("lint-allow.txt")) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(format!("reading lint-allow.txt: {e}")),
        }
    }

    /// Number of exceptions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no exceptions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn waives(&self, v: &Violation, raw_line: &str) -> bool {
        self.entries.iter().any(|e| {
            e.rule == v.rule
                && e.version == version_of(v.rule)
                && v.path.ends_with(&e.path_suffix)
                && raw_line.contains(&e.needle)
                && {
                    e.used.set(e.used.get() + 1);
                    true
                }
        })
    }

    /// Entries that waived nothing in the last run (stale exceptions —
    /// vetted code gone, or the entry pins an outdated rule version).
    /// An entry pinning an outdated version says so, naming the current
    /// version to re-vet against.
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| e.used.get() == 0)
            .map(|e| {
                let cur = version_of(&e.rule);
                let hint = if e.version == cur {
                    String::new()
                } else {
                    format!(" (rule is now at v{cur}; re-vet and re-pin)")
                };
                format!(
                    "{}@{} {} {}{hint}",
                    e.rule, e.version, e.path_suffix, e.needle
                )
            })
            .collect()
    }
}

/// Wall-time and coverage of one rule pass, for the `--json` report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleTiming {
    /// The rule id.
    pub rule: &'static str,
    /// Wall time of the pass, microseconds.
    pub wall_us: u64,
    /// Files the pass actually looked at (rules scoped to sim-driven
    /// crates or actor files scan fewer than the whole workspace).
    pub files_scanned: usize,
}

/// Outcome of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing. These fail the pass: a
    /// stale exception means the vetted code is gone and the waiver now
    /// silently covers whatever lands on that line next.
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Per-rule wall time + coverage, in `rule_versions()` order.
    pub timings: Vec<RuleTiming>,
}

impl LintReport {
    /// True when the run found nothing to report — no violations *and*
    /// no stale allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }
}

fn crate_of(rel_path: &str) -> Option<&str> {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
}

/// One file prepared for analysis.
struct Ctx {
    rel: String,
    krate: String,
    sim_driven: bool,
    actor_file: bool,
    panic_exempt: bool,
    pf: ParsedFile,
    lines: Vec<String>,
}

impl Ctx {
    fn new(rel: &str, source: &str) -> Ctx {
        let krate = crate_of(rel).unwrap_or("").to_owned();
        Ctx {
            sim_driven: SIM_DRIVEN_CRATES.contains(&krate.as_str()),
            actor_file: rel.ends_with("/actors.rs"),
            panic_exempt: krate == "bench"
                || rel.contains("/src/bin/")
                || rel.ends_with("/src/main.rs"),
            pf: ParsedFile::parse(source),
            lines: source.lines().map(str::to_owned).collect(),
            rel: rel.to_owned(),
            krate,
        }
    }

    fn violation(&self, rule: &'static str, line: u32, note: String) -> Violation {
        Violation {
            path: self.rel.clone(),
            line,
            rule,
            excerpt: self
                .lines
                .get(line.saturating_sub(1) as usize)
                .map(|l| l.trim().to_owned())
                .unwrap_or_default(),
            note,
        }
    }
}

/// Next non-comment token index after `i`.
fn nc_next(toks: &[Tok], i: usize) -> Option<usize> {
    toks.iter()
        .enumerate()
        .skip(i + 1)
        .find(|(_, t)| t.kind != TokKind::Comment)
        .map(|(j, _)| j)
}

/// Previous non-comment token index before `i`.
fn nc_prev(toks: &[Tok], i: usize) -> Option<usize> {
    toks[..i].iter().rposition(|t| t.kind != TokKind::Comment)
}

/// Index of the `)` matching the `(` at `open`, or `toks.len()`.
fn close_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// True when `toks[i]` begins the path `a::b`; returns the index of `b`.
fn path2(toks: &[Tok], i: usize, a: &str, b: &str) -> Option<usize> {
    if !toks[i].is_ident(a) {
        return None;
    }
    let c1 = nc_next(toks, i)?;
    let c2 = nc_next(toks, c1)?;
    let name = nc_next(toks, c2)?;
    (toks[c1].is_punct(':') && toks[c2].is_punct(':') && toks[name].is_ident(b)).then_some(name)
}

/// `no-partial-cmp-sort`: applies to test code too — a NaN-panicking
/// comparator is as hazardous in a test as in the library.
fn partial_cmp_rule(ctx: &Ctx) -> Vec<Violation> {
    let toks = &ctx.pf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !t.text.starts_with("sort") {
            continue;
        }
        let prev_dot = nc_prev(toks, i).is_some_and(|j| toks[j].is_punct('.'));
        let Some(open) = nc_next(toks, i).filter(|&j| toks[j].is_punct('(')) else {
            continue;
        };
        if !prev_dot {
            continue;
        }
        let close = close_paren(toks, open);
        if toks[open..close].iter().any(|a| a.is_ident("partial_cmp")) {
            out.push(
                ctx.violation(
                    RULE_NO_PARTIAL_CMP_SORT,
                    t.line,
                    "sort comparator built on partial_cmp: panics on NaN or silently breaks \
                 total order; use total_cmp or an Ord key"
                        .to_owned(),
                ),
            );
        }
    }
    out
}

/// `no-unbounded-run`: applies to test code too — an unbounded drive
/// hangs a test run just as hard.
fn unbounded_run_rule(ctx: &Ctx) -> Vec<Violation> {
    if ctx.krate == "sim" {
        return Vec::new();
    }
    let toks = &ctx.pf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("run_to_quiescence")
            && nc_next(toks, i).is_some_and(|j| toks[j].is_punct('('))
        {
            out.push(
                ctx.violation(
                    RULE_NO_UNBOUNDED_RUN,
                    t.line,
                    "unbounded simulation drive: use run_to_quiescence_bounded(budget) so \
                 non-converging retry loops fail instead of hanging"
                        .to_owned(),
                ),
            );
        }
    }
    out
}

/// `no-panic`: panic sites in non-test, non-exempt library code.
fn no_panic_rule(ctx: &Ctx) -> Vec<Violation> {
    if ctx.panic_exempt {
        return Vec::new();
    }
    let toks = &ctx.pf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.pf.is_test_at(i) {
            continue;
        }
        let next_is = |c: char| nc_next(toks, i).is_some_and(|j| toks[j].is_punct(c));
        let prev_is = |c: char| nc_prev(toks, i).is_some_and(|j| toks[j].is_punct(c));
        let bang_macro = ["panic", "unreachable", "todo", "unimplemented"]
            .contains(&t.text.as_str())
            && next_is('!');
        let method =
            ["unwrap", "expect"].contains(&t.text.as_str()) && prev_is('.') && next_is('(');
        if (bang_macro || method) && !ctx.pf.panics_documented_at(i) {
            out.push(
                ctx.violation(
                    RULE_NO_PANIC,
                    t.line,
                    "panic site in non-test library code with no `# Panics` doc contract \
                 on the enclosing fn"
                        .to_owned(),
                ),
            );
        }
    }
    out
}

/// `no-wall-clock` (v3): the syntactic backstop behind
/// `determinism-taint` — any mention of a wall-clock/ambient-randomness
/// source in non-test sim-driven code, flow or no flow.
fn wall_clock_rule(ctx: &Ctx) -> Vec<Violation> {
    if !ctx.sim_driven || ctx.rel.ends_with(PROF_MODULE) {
        return Vec::new();
    }
    let toks = &ctx.pf.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && ["SystemTime", "Instant", "thread_rng"].contains(&t.text.as_str())
            && !ctx.pf.is_test_at(i)
        {
            out.push(
                ctx.violation(
                    RULE_NO_WALL_CLOCK,
                    t.line,
                    "wall-clock/ambient-randomness source in a sim-driven crate: time comes \
                 from sim::time, randomness from the seeded sim::rng"
                        .to_owned(),
                ),
            );
        }
    }
    out
}

/// `no-hash-collections` (v3): the syntactic backstop for actor files;
/// `determinism-taint` follows actual iteration-order flow everywhere
/// else.
fn hash_rule(ctx: &Ctx) -> Vec<Violation> {
    if !ctx.actor_file {
        return Vec::new();
    }
    let toks = &ctx.pf.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && ["HashMap", "HashSet"].contains(&t.text.as_str())
            && !ctx.pf.is_test_at(i)
        {
            out.push(
                ctx.violation(
                    RULE_NO_HASH,
                    t.line,
                    "hash-ordered collection in an actor decision path: iteration order is \
                 nondeterministic; use BTreeMap/BTreeSet"
                        .to_owned(),
                ),
            );
        }
    }
    out
}

/// `no-ambient-parallelism`: unaudited thread fan-out in sim-driven
/// non-test code.
fn ambient_par_rule(ctx: &Ctx) -> Vec<Violation> {
    if !ctx.sim_driven {
        return Vec::new();
    }
    let toks = &ctx.pf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.pf.is_test_at(i) {
            continue;
        }
        let par_ident = [
            "rayon",
            "par_iter",
            "into_par_iter",
            "available_parallelism",
        ]
        .contains(&t.text.as_str());
        let thread_spawn = path2(toks, i, "thread", "spawn").is_some();
        if par_ident || thread_spawn {
            out.push(
                ctx.violation(
                    RULE_NO_AMBIENT_PAR,
                    t.line,
                    "unaudited thread fan-out in a sim-driven crate: parallel merges must \
                 be vetted order-independent (see lint-allow.txt)"
                        .to_owned(),
                ),
            );
        }
    }
    out
}

/// `rng-fork-discipline`: the taint pass over each sim-driven crate's
/// item graph. See the module docs for the rule statement.
fn rng_rule(ctxs: &[Ctx]) -> Vec<Violation> {
    /// Per-crate summary of a non-test fn whose signature returns `SimRng`.
    struct FnInfo {
        file: usize,
        name: String,
        body: (usize, usize),
    }
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, c) in ctxs.iter().enumerate() {
        if c.sim_driven && !c.rel.ends_with(RNG_MODULE) && c.rel.starts_with("crates/") {
            by_crate.entry(&c.krate).or_default().push(i);
        }
    }

    let mut out = Vec::new();
    for files in by_crate.values() {
        // Direct sites: bare `SimRng::seed(…)` not `.fork(…)`-chained.
        // (tok index per file, and whether the site is in test code.)
        let mut bare_sites: Vec<(usize, usize)> = Vec::new();
        for &fi in files {
            let toks = &ctxs[fi].pf.tokens;
            for i in 0..toks.len() {
                let Some(seed) = path2(toks, i, "SimRng", "seed") else {
                    continue;
                };
                let Some(open) = nc_next(toks, seed).filter(|&j| toks[j].is_punct('(')) else {
                    continue;
                };
                let close = close_paren(toks, open);
                let chained = nc_next(toks, close)
                    .filter(|&j| toks[j].is_punct('.'))
                    .and_then(|j| nc_next(toks, j))
                    .is_some_and(|j| toks[j].is_ident("fork"));
                if !chained {
                    bare_sites.push((fi, i));
                }
            }
        }
        for &(fi, i) in &bare_sites {
            if !ctxs[fi].pf.is_test_at(i) {
                out.push(
                    ctxs[fi].violation(
                        RULE_RNG_FORK,
                        ctxs[fi].pf.tokens[i].line,
                        "fresh RNG root: SimRng::seed(..) without .fork(label) does not descend \
                     from the deployment's seeded fork tree, so replays diverge"
                            .to_owned(),
                    ),
                );
            }
        }

        // Fn summaries: which non-test fns return a bare root? Seeded by
        // fns whose body holds a bare site; propagated through calls to
        // other bare-root-returning fns, to fixpoint.
        let mut fns: Vec<FnInfo> = Vec::new();
        for &fi in files {
            for s in &ctxs[fi].pf.scopes {
                if s.kind == ScopeKind::Fn && !s.is_test && returns_simrng(&ctxs[fi].pf, s.sig) {
                    fns.push(FnInfo {
                        file: fi,
                        name: s.name.clone(),
                        body: s.body,
                    });
                }
            }
        }
        // Seed: fns whose body holds a bare site; propagate through the
        // crate's name-keyed call graph to fixpoint on the shared flow
        // framework (the same skeleton `determinism-taint` runs on).
        let bare_fns = flow::summary_fixpoint(
            &fns,
            |f| f.name.as_str(),
            |f| {
                bare_sites
                    .iter()
                    .any(|&(fi, i)| fi == f.file && f.body.0 <= i && i < f.body.1)
            },
            |f| {
                call_sites(&ctxs[f.file].pf.tokens, f.body)
                    .into_iter()
                    .map(|c| c.name)
                    .collect()
            },
        );

        // Call sites of bare-root-returning fns, outside test code.
        for &fi in files {
            let toks = &ctxs[fi].pf.tokens;
            for i in 0..toks.len() {
                let Some(name) = call_of(toks, i) else {
                    continue;
                };
                if bare_fns.contains(name) && !ctxs[fi].pf.is_test_at(i) {
                    out.push(ctxs[fi].violation(
                        RULE_RNG_FORK,
                        toks[i].line,
                        format!(
                            "`{name}` returns an unforked RNG root (taint traced to a bare \
                             SimRng::seed site); draws through it sit outside the fork tree"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// When `toks[i]` is the callee ident of a call (`name(` not preceded
/// by `fn`), returns the name.
fn call_of(toks: &[Tok], i: usize) -> Option<&str> {
    if toks[i].kind != TokKind::Ident {
        return None;
    }
    let open = nc_next(toks, i)?;
    if !toks[open].is_punct('(') {
        return None;
    }
    if nc_prev(toks, i).is_some_and(|j| toks[j].is_ident("fn")) {
        return None;
    }
    Some(&toks[i].text)
}

/// True when a fn signature's return type mentions `SimRng`.
fn returns_simrng(pf: &ParsedFile, sig: (usize, usize)) -> bool {
    let toks = &pf.tokens;
    let mut arrow = None;
    for i in sig.0..sig.1.min(toks.len()) {
        if toks[i].is_punct('-') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
            arrow = Some(i + 2);
            break;
        }
    }
    arrow.is_some_and(|start| {
        toks[start..sig.1.min(toks.len())]
            .iter()
            .any(|t| t.is_ident("SimRng"))
    })
}

/// `event-match-exhaustive`: protocol-enum variants vs handler `match`
/// arms, plus dead-variant detection. See the module docs.
fn event_rule(ctxs: &[Ctx]) -> Vec<Violation> {
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, c) in ctxs.iter().enumerate() {
        if c.rel.starts_with("crates/") {
            by_crate.entry(&c.krate).or_default().push(i);
        }
    }

    let mut out = Vec::new();
    for files in by_crate.values() {
        // Non-test enum definitions of this crate, by name.
        let mut enums: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for &fi in files {
            for (ei, e) in ctxs[fi].pf.enums.iter().enumerate() {
                if !e.is_test {
                    enums.entry(&e.name).or_insert((fi, ei));
                }
            }
        }

        let mut dead_checked: BTreeSet<&str> = BTreeSet::new();
        for &fi in files {
            let declared: BTreeSet<&str> =
                ctxs[fi].pf.msg_types.iter().map(String::as_str).collect();
            for tname in declared {
                let Some(&(ef, ei)) = enums.get(tname) else {
                    continue; // struct protocol (e.g. an envelope type)
                };
                let variants = &ctxs[ef].pf.enums[ei].variants;

                // Handler matches: non-test matches in the declaring
                // file whose arms name `T::…` paths.
                for m in &ctxs[fi].pf.matches {
                    if ctxs[fi].pf.is_test_at(m.tok) {
                        continue;
                    }
                    let toks = &ctxs[fi].pf.tokens;
                    let mut named: BTreeSet<&str> = BTreeSet::new();
                    let mut catch_all_line = None;
                    for arm in &m.arms {
                        if arm.catch_all && catch_all_line.is_none() {
                            catch_all_line = Some(arm.line);
                        }
                        for i in arm.pat.0..arm.pat.1 {
                            for (vname, _) in variants {
                                if path2(toks, i, tname, vname).is_some() {
                                    named.insert(vname);
                                }
                            }
                        }
                    }
                    if named.is_empty() {
                        continue; // not a match over this enum
                    }
                    let missing: Vec<&str> = variants
                        .iter()
                        .map(|(v, _)| v.as_str())
                        .filter(|v| !named.contains(v))
                        .collect();
                    if missing.is_empty() {
                        continue;
                    }
                    let list = missing.join(", ");
                    if let Some(line) = catch_all_line {
                        out.push(ctxs[fi].violation(
                            RULE_EVENT_MATCH,
                            line,
                            format!(
                                "match on {tname} swallows variants through this catch-all \
                                 arm: {list}; name them explicitly (`{tname}::X {{ .. }} | \
                                 … => {{}}`) so new event kinds cannot vanish silently"
                            ),
                        ));
                    } else {
                        out.push(ctxs[fi].violation(
                            RULE_EVENT_MATCH,
                            m.line,
                            format!("match on {tname} does not handle: {list}"),
                        ));
                    }
                }

                // Dead variants: never constructed in expression position
                // anywhere in the scanned set (crate-crossing drivers
                // included).
                if dead_checked.insert(tname) {
                    for (vname, vline) in variants {
                        let constructed = ctxs.iter().any(|c| {
                            let toks = &c.pf.tokens;
                            (0..toks.len()).any(|i| {
                                path2(toks, i, tname, vname).is_some_and(|vi| !c.pf.in_pattern(vi))
                            })
                        });
                        if !constructed {
                            out.push(ctxs[ef].violation(
                                RULE_EVENT_MATCH,
                                *vline,
                                format!(
                                    "dead variant: {tname}::{vname} is never constructed in \
                                     the scanned sources — no actor can ever receive it"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Taint configuration for `determinism-taint`: the workspace's
/// nondeterminism sources and its emission/scheduling sinks.
const TAINT_CONFIG: TaintConfig<'static> = TaintConfig {
    wall_idents: &["SystemTime", "Instant"],
    rand_idents: &["thread_rng"],
    sinks: &[
        "send",
        "send_self",
        "send_at",
        "set_timer",
        "inject",
        "schedule_crash",
        "schedule_recover",
        "record",
        "open_keyed",
        "fork",
    ],
};

/// Files allowed to mutate durable mailbox/ledger state directly: the
/// module that *defines* the discipline.
const STORE_TRUSTED: &[&str] = &["crates/core/src/store.rs", "crates/core/src/mailbox.rs"];

/// Mutating methods on a `Mailbox` value.
const MAILBOX_MUTATORS: &[&str] = &[
    "deposit",
    "drain",
    "remove",
    "expire_older_than",
    "restore_ledger",
];

/// Mutating methods on a `Mailbox`-valued map (the ledger itself).
const MAP_MUTATORS: &[&str] = &[
    "insert",
    "remove",
    "entry",
    "clear",
    "get_mut",
    "values_mut",
    "retain",
];

/// WAL/segment operations whose `Result` must be consumed.
const FALLIBLE_STORE_OPS: &[&str] = &[
    "create",
    "append",
    "sync",
    "truncate",
    "delete",
    "read",
    "replay",
    "read_segment",
    "reopen",
];

/// Shared flow-layer preparation: every fn parsed, lowered to a CFG,
/// and class-annotated, plus per-crate struct-field class tables (with
/// `core`'s fields visible from every crate, since `StoreState` and
/// `Mailbox` cross crate boundaries).
struct FlowPrep {
    units: Vec<FnUnit>,
    fields: BTreeMap<String, BTreeMap<String, TypeClass>>,
}

impl FlowPrep {
    fn build(ctxs: &[Ctx]) -> FlowPrep {
        let mut fields: BTreeMap<String, BTreeMap<String, TypeClass>> = BTreeMap::new();
        let mut storeio_by_file: Vec<BTreeSet<String>> = Vec::with_capacity(ctxs.len());
        for ctx in ctxs {
            let sg = flow::storeio_generics(&ctx.pf.tokens);
            if ctx.rel.starts_with("crates/") {
                let table = flow::field_classes(&ctx.pf.tokens, &sg);
                let slot = fields.entry(ctx.krate.clone()).or_default();
                for (k, v) in table {
                    slot.entry(k).or_insert(v);
                }
            }
            storeio_by_file.push(sg);
        }
        let core: Vec<(String, TypeClass)> = fields
            .get("core")
            .map(|t| t.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default();
        for ctx in ctxs {
            fields.entry(ctx.krate.clone()).or_default();
        }
        for (krate, table) in &mut fields {
            if krate != "core" {
                for (k, v) in &core {
                    table.entry(k.clone()).or_insert(*v);
                }
            }
        }
        let mut units = Vec::new();
        for (i, ctx) in ctxs.iter().enumerate() {
            if !ctx.rel.starts_with("crates/") {
                continue;
            }
            if let Some(table) = fields.get(&ctx.krate) {
                units.extend(flow::fn_units(i, &ctx.pf, table, &storeio_by_file[i]));
            }
        }
        FlowPrep { units, fields }
    }

    fn fcx<'a>(&'a self, ctxs: &'a [Ctx], u: &'a FnUnit) -> Option<FnCtx<'a>> {
        let c = &ctxs[u.file];
        let fields = self.fields.get(&c.krate)?;
        Some(FnCtx {
            toks: &c.pf.tokens,
            body: &u.body,
            cfg: &u.cfg,
            params: &u.params,
            classes: &u.classes,
            fields,
        })
    }
}

/// `determinism-taint`: worklist taint from nondeterminism sources to
/// emission/scheduling sinks, with helper-fn summaries per crate.
fn determinism_rule(ctxs: &[Ctx], prep: &FlowPrep) -> Vec<Violation> {
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (ui, u) in prep.units.iter().enumerate() {
        let c = &ctxs[u.file];
        if c.sim_driven
            && !c.rel.ends_with(RNG_MODULE)
            && !c.rel.ends_with(PROF_MODULE)
            && !u.is_test
        {
            by_crate.entry(&c.krate).or_default().push(ui);
        }
    }
    let mut out = Vec::new();
    for uis in by_crate.values() {
        // Iterate fn summaries to fixpoint through the crate's call
        // graph, so taint laundered through helpers still lands.
        let mut summaries: BTreeMap<String, Summary> = BTreeMap::new();
        loop {
            let mut changed = false;
            for &ui in uis {
                let u = &prep.units[ui];
                let Some(fcx) = prep.fcx(ctxs, u) else {
                    continue;
                };
                let f = flow::taint_fn(&fcx, &summaries, &TAINT_CONFIG);
                let prev = summaries.get(&u.name).copied().unwrap_or_default();
                let merged = Summary {
                    ret_roots: prev.ret_roots | f.summary.ret_roots,
                    param_to_ret: prev.param_to_ret | f.summary.param_to_ret,
                    param_to_sink: prev.param_to_sink | f.summary.param_to_sink,
                };
                if merged != prev {
                    summaries.insert(u.name.clone(), merged);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for &ui in uis {
            let u = &prep.units[ui];
            let Some(fcx) = prep.fcx(ctxs, u) else {
                continue;
            };
            let toks = &ctxs[u.file].pf.tokens;
            let mut seen = BTreeSet::new();
            for hit in flow::taint_fn(&fcx, &summaries, &TAINT_CONFIG).hits {
                if !seen.insert(hit.at) {
                    continue;
                }
                let roots = flow::root_names(hit.bits & ROOT_MASK).join(", ");
                out.push(ctxs[u.file].violation(
                    RULE_DETERMINISM_TAINT,
                    toks[hit.at].line,
                    format!(
                        "nondeterministic value ({roots}) flows into `{}`: anything emitted \
                         or scheduled must derive from sim time, the seeded RNG, or ordered \
                         collections, or replays diverge",
                        hit.sink
                    ),
                ));
            }
        }
    }
    out
}

/// `store-mutation-discipline`: direct durable-state mutation outside
/// the trusted `lems_core::{store,mailbox}` modules.
fn store_mutation_rule(ctxs: &[Ctx], prep: &FlowPrep) -> Vec<Violation> {
    let mut out = Vec::new();
    for u in &prep.units {
        if u.is_test {
            continue;
        }
        let c = &ctxs[u.file];
        if !c.rel.starts_with("crates/") || STORE_TRUSTED.iter().any(|t| c.rel.ends_with(t)) {
            continue;
        }
        let Some(fields) = prep.fields.get(&c.krate) else {
            continue;
        };
        let toks = &c.pf.tokens;
        let class_of = |name: &str| {
            u.classes
                .get(name)
                .copied()
                .or_else(|| fields.get(name).copied())
                .unwrap_or(TypeClass::Other)
        };
        for call in call_sites(toks, u.body_range) {
            let recv_class = call
                .recv
                .map_or(TypeClass::Other, |r| class_of(&toks[r].text));
            let name = call.name.as_str();
            if MAILBOX_MUTATORS.contains(&name) && recv_class == TypeClass::Mailbox {
                out.push(c.violation(
                    RULE_STORE_MUTATION,
                    toks[call.at].line,
                    format!(
                        "direct Mailbox mutation (`.{name}`) outside lems_core::{{store,\
                         mailbox}}: durable state must move through MailStore methods or \
                         crash recovery diverges from the Ideal model"
                    ),
                ));
            } else if MAP_MUTATORS.contains(&name) && recv_class == TypeClass::MailboxMap {
                out.push(c.violation(
                    RULE_STORE_MUTATION,
                    toks[call.at].line,
                    format!(
                        "direct ledger mutation (`.{name}` on a Mailbox map) outside \
                         lems_core::{{store,mailbox}}: route the operation through MailStore"
                    ),
                ));
            } else if name == "new" && call.path_qual.as_deref() == Some("Mailbox") {
                out.push(
                    c.violation(
                        RULE_STORE_MUTATION,
                        toks[call.at].line,
                        "Mailbox::new outside lems_core::{store,mailbox}: mailboxes are created \
                     by the store on first deposit, never ad hoc"
                            .to_owned(),
                    ),
                );
            }
        }
    }
    out
}

/// True when no unclosed bracket opens between `lo` and `at` — i.e. the
/// token at `at` sits at the statement's own nesting depth, not inside
/// another call's argument list.
fn at_depth0(toks: &[Tok], lo: usize, at: usize) -> bool {
    let mut depth = 0i32;
    for t in toks.iter().take(at).skip(lo) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        }
    }
    depth == 0
}

/// `no-ignored-store-errors`: a WAL/segment `Result` dropped, `let _ =`
/// discarded, or `.ok()`-swallowed in non-test code.
fn ignored_store_errors_rule(ctxs: &[Ctx], prep: &FlowPrep) -> Vec<Violation> {
    let mut out = Vec::new();
    for u in &prep.units {
        if u.is_test {
            continue;
        }
        let c = &ctxs[u.file];
        if !c.rel.starts_with("crates/") {
            continue;
        }
        let Some(fields) = prep.fields.get(&c.krate) else {
            continue;
        };
        let toks = &c.pf.tokens;
        let class_of = |name: &str| {
            u.classes
                .get(name)
                .copied()
                .or_else(|| fields.get(name).copied())
                .unwrap_or(TypeClass::Other)
        };
        let mut stmts: Vec<&Stmt> = Vec::new();
        u.body.walk(&mut |s| stmts.push(s));
        for call in call_sites(toks, u.body_range) {
            let name = call.name.as_str();
            let recv_class = call
                .recv
                .map_or(TypeClass::Other, |r| class_of(&toks[r].text));
            let is_method_op = FALLIBLE_STORE_OPS.contains(&name)
                && matches!(recv_class, TypeClass::StoreIo | TypeClass::Wal);
            let is_path_op = (name == "open"
                && matches!(
                    call.path_qual.as_deref(),
                    Some("Wal" | "WalStore" | "FileSegments")
                ))
                || name == "replay_segment";
            if !is_method_op && !is_path_op {
                continue;
            }
            let close = call.args.1; // index of the call's `)`
            match nc_next(toks, close) {
                Some(j) if toks[j].is_punct('?') => continue, // propagated
                Some(j) if toks[j].is_punct('.') => {
                    // Chained. `.ok()` with nothing after it converts
                    // the Result to an Option and drops the error.
                    let swallowed = nc_next(toks, j)
                        .filter(|&m| toks[m].is_ident("ok"))
                        .and_then(|m| nc_next(toks, m))
                        .filter(|&p| toks[p].is_punct('('))
                        .map(|p| close_paren(toks, p))
                        .is_some_and(|ocl| {
                            !nc_next(toks, ocl)
                                .is_some_and(|p| toks[p].is_punct('.') || toks[p].is_punct('?'))
                        });
                    if swallowed {
                        out.push(c.violation(
                            RULE_IGNORED_STORE_ERR,
                            toks[call.at].line,
                            format!(
                                "`.ok()` swallows the StoreError from `{name}`: a store \
                                 failure must surface (propagate with `?` or count it via \
                                 io_errors), not vanish into an Option"
                            ),
                        ));
                    }
                    continue;
                }
                _ => {}
            }
            // Not chained, not propagated: flag the two discard shapes.
            let Some(stmt) = stmts
                .iter()
                .filter(|s| s.range.0 <= call.at && call.at < s.range.1)
                .min_by_key(|s| s.range.1 - s.range.0)
            else {
                continue;
            };
            match &stmt.kind {
                StmtKind::Let {
                    pat,
                    init: Some(init),
                    ..
                } => {
                    let wildcard = pat.1 == pat.0 + 1 && toks[pat.0].is_ident("_");
                    if wildcard && at_depth0(toks, init.0, call.at) {
                        out.push(c.violation(
                            RULE_IGNORED_STORE_ERR,
                            toks[call.at].line,
                            format!(
                                "`let _ =` discards the Result of `{name}`: handle or \
                                 propagate the StoreError — a silently failed store op \
                                 diverges durable state from the log"
                            ),
                        ));
                    }
                }
                StmtKind::Expr { range } => {
                    let ends_semi =
                        range.1 >= 1 && range.1 <= toks.len() && toks[range.1 - 1].is_punct(';');
                    if ends_semi && at_depth0(toks, range.0, call.at) {
                        out.push(c.violation(
                            RULE_IGNORED_STORE_ERR,
                            toks[call.at].line,
                            format!(
                                "Result of `{name}` dropped as a bare statement: handle or \
                                 propagate the StoreError — a silently failed store op \
                                 diverges durable state from the log"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Analyses a set of sources together (cross-file rules see the whole
/// set). Each entry is `(workspace-relative path, source text)`.
pub fn analyze_sources(files: &[(&str, &str)]) -> Vec<Violation> {
    analyze_sources_timed(files).0
}

/// Microseconds elapsed since `t0`, saturating.
fn elapsed_us(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// [`analyze_sources`] plus per-rule wall-time/coverage counters, in
/// [`rule_versions`] order. The flow-layer preparation (statement
/// parsing, CFG lowering, class tables) is charged to the first flow
/// rule, `determinism-taint`.
pub fn analyze_sources_timed(files: &[(&str, &str)]) -> (Vec<Violation>, Vec<RuleTiming>) {
    use std::time::Instant;
    let ctxs: Vec<Ctx> = files.iter().map(|&(rel, src)| Ctx::new(rel, src)).collect();
    let n_all = ctxs.len();
    let n_crates = ctxs.iter().filter(|c| c.rel.starts_with("crates/")).count();
    let n_sim = ctxs.iter().filter(|c| c.sim_driven).count();
    let n_actor = ctxs.iter().filter(|c| c.actor_file).count();
    let n_taint = ctxs
        .iter()
        .filter(|c| c.sim_driven && !c.rel.ends_with(RNG_MODULE) && !c.rel.ends_with(PROF_MODULE))
        .count();

    let mut out: Vec<Violation> = Vec::new();
    let mut timings: Vec<RuleTiming> = Vec::new();
    let pass = |rule: &'static str,
                files_scanned: usize,
                out: &mut Vec<Violation>,
                timings: &mut Vec<RuleTiming>,
                f: &dyn Fn(&[Ctx]) -> Vec<Violation>| {
        let t0 = Instant::now();
        let vs = f(&ctxs);
        timings.push(RuleTiming {
            rule,
            wall_us: elapsed_us(t0),
            files_scanned,
        });
        out.extend(vs);
    };

    let per_file = |f: fn(&Ctx) -> Vec<Violation>| {
        move |cs: &[Ctx]| cs.iter().flat_map(f).collect::<Vec<Violation>>()
    };
    pass(
        RULE_NO_PANIC,
        n_all,
        &mut out,
        &mut timings,
        &per_file(no_panic_rule),
    );
    pass(
        RULE_NO_WALL_CLOCK,
        n_sim,
        &mut out,
        &mut timings,
        &per_file(wall_clock_rule),
    );
    pass(
        RULE_NO_HASH,
        n_actor,
        &mut out,
        &mut timings,
        &per_file(hash_rule),
    );
    pass(
        RULE_NO_PARTIAL_CMP_SORT,
        n_all,
        &mut out,
        &mut timings,
        &per_file(partial_cmp_rule),
    );
    pass(
        RULE_NO_UNBOUNDED_RUN,
        n_all,
        &mut out,
        &mut timings,
        &per_file(unbounded_run_rule),
    );
    pass(
        RULE_NO_AMBIENT_PAR,
        n_sim,
        &mut out,
        &mut timings,
        &per_file(ambient_par_rule),
    );
    pass(RULE_RNG_FORK, n_taint, &mut out, &mut timings, &rng_rule);
    pass(
        RULE_EVENT_MATCH,
        n_crates,
        &mut out,
        &mut timings,
        &event_rule,
    );

    // Flow rules share one prep; its cost lands on determinism-taint.
    let t0 = Instant::now();
    let prep = FlowPrep::build(&ctxs);
    let vs = determinism_rule(&ctxs, &prep);
    timings.push(RuleTiming {
        rule: RULE_DETERMINISM_TAINT,
        wall_us: elapsed_us(t0),
        files_scanned: n_taint,
    });
    out.extend(vs);

    let t0 = Instant::now();
    let vs = store_mutation_rule(&ctxs, &prep);
    timings.push(RuleTiming {
        rule: RULE_STORE_MUTATION,
        wall_us: elapsed_us(t0),
        files_scanned: n_crates,
    });
    out.extend(vs);

    let t0 = Instant::now();
    let vs = ignored_store_errors_rule(&ctxs, &prep);
    timings.push(RuleTiming {
        rule: RULE_IGNORED_STORE_ERR,
        wall_us: elapsed_us(t0),
        files_scanned: n_crates,
    });
    out.extend(vs);

    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    (out, timings)
}

/// Scans one file's contents; `rel_path` is workspace-relative with
/// forward slashes (e.g. `crates/sim/src/actor.rs`). Cross-file rules
/// run with just this file in view.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    analyze_sources(&[(rel_path, source)])
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src` tree under `root`, applying `allow`.
///
/// # Errors
///
/// Returns I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut sources: Vec<(String, String)> = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push((rel, text));
        }
    }

    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(r, s)| (r.as_str(), s.as_str()))
        .collect();
    let (violations, timings) = analyze_sources_timed(&refs);
    let mut report = LintReport {
        files_scanned: sources.len(),
        timings,
        ..LintReport::default()
    };
    for v in violations {
        let raw = sources
            .iter()
            .find(|(r, _)| *r == v.path)
            .and_then(|(_, s)| s.lines().nth(v.line.saturating_sub(1) as usize))
            .unwrap_or("");
        if !allow.waives(&v, raw) {
            report.violations.push(v);
        }
    }
    report.stale_allows = allow.unused();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unwrap_and_panic_in_lib_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn g() {\n    panic!(\"boom\");\n}\n";
        let vs = scan_source("crates/core/src/lib.rs", src);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].rule, RULE_NO_PANIC);
        assert_eq!(vs[0].line, 2);
        assert_eq!(vs[1].line, 5);
    }

    #[test]
    fn expect_and_todo_and_unreachable_fire() {
        let src = "fn f() {\n    let _ = std::env::var(\"X\").expect(\"set\");\n    todo!()\n}\nfn h() { unreachable!() }\n";
        let vs = scan_source("crates/net/src/x.rs", src);
        let lines: Vec<u32> = vs.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3, 5]);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0) + x.unwrap_or_default() + x.unwrap_or_else(|| 1)\n}\n";
        assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn comments_strings_and_doc_examples_are_ignored() {
        let src = concat!(
            "//! Doc: call `.unwrap()` freely in examples.\n",
            "/// ```\n",
            "/// let x = maybe().unwrap();\n",
            "/// ```\n",
            "fn f() {\n",
            "    // panic!(\"not real\")\n",
            "    let s = \".unwrap() panic! SystemTime\";\n",
            "    let c = '\\'';\n",
            "    let _ = (s, c); /* .expect( */\n",
            "}\n",
        );
        assert!(scan_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = concat!(
            "pub fn lib() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() {\n",
            "        Some(1).unwrap();\n",
            "        panic!(\"fine in tests\");\n",
            "    }\n",
            "}\n",
        );
        assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn code_after_a_test_block_is_still_linted() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests { fn t() { Some(1).unwrap(); } }\n",
            "pub fn lib(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let vs = scan_source("crates/core/src/lib.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn nested_test_mods_stay_exempt_but_siblings_do_not() {
        // The v1 line mask lost track of nesting like this; the scope
        // tree carries #[cfg(test)] down arbitrarily deep.
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    mod inner {\n",
            "        mod deeper {\n",
            "            fn helper() { Some(1).unwrap(); }\n",
            "        }\n",
            "    }\n",
            "}\n",
            "pub fn lib(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let vs = scan_source("crates/core/src/lib.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 9);
    }

    #[test]
    fn panics_doc_contract_exempts_the_documented_fn() {
        let src = concat!(
            "/// Looks up a bound name.\n",
            "///\n",
            "/// # Panics\n",
            "///\n",
            "/// Panics when `name` was never registered.\n",
            "pub fn lookup(m: &Map, name: &str) -> u32 {\n",
            "    *m.get(name).expect(\"unknown name\")\n",
            "}\n",
            "pub fn bare(m: &Map, name: &str) -> u32 {\n",
            "    *m.get(name).expect(\"unknown name\")\n",
            "}\n",
        );
        let vs = scan_source("crates/core/src/lib.rs", src);
        assert_eq!(vs.len(), 1, "only the undocumented fn fires");
        assert_eq!(vs[0].line, 10);
    }

    #[test]
    fn wall_clock_fires_only_in_sim_driven_crates() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    let r = rand::thread_rng();\n    let _ = (t, r);\n}\n";
        let in_sim = scan_source("crates/syntax/src/x.rs", src);
        assert_eq!(in_sim.len(), 2);
        assert!(in_sim.iter().all(|v| v.rule == RULE_NO_WALL_CLOCK));
        // The eval crate post-processes results outside the simulation.
        assert!(scan_source("crates/eval/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_collections_fire_only_in_actor_files() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        let vs = scan_source("crates/syntax/src/actors.rs", src);
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.rule == RULE_NO_HASH));
        assert!(scan_source("crates/syntax/src/assign.rs", src).is_empty());
    }

    #[test]
    fn binaries_and_bench_drivers_are_panic_exempt() {
        let src = "fn main() { run().expect(\"setup\"); }\n";
        assert!(scan_source("crates/bench/src/cache_exp.rs", src).is_empty());
        assert!(scan_source("crates/check/src/main.rs", src).is_empty());
        assert!(scan_source("crates/bench/src/bin/repro-all.rs", src).is_empty());
        // ...but the wall-clock rule still applies to sim-driven binaries.
        let clock = "fn main() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(scan_source("crates/sim/src/bin/x.rs", clock).len(), 1);
    }

    #[test]
    fn partial_cmp_sort_fires_even_in_test_code() {
        let src = concat!(
            "fn f(mut v: Vec<f64>) {\n",
            "    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(mut v: Vec<(f64, u32)>) {\n",
            "        v.sort_by_key(|x| x.1);\n",
            "        v.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());\n",
            "    }\n",
            "}\n",
        );
        let vs: Vec<_> = scan_source("crates/eval/src/x.rs", src)
            .into_iter()
            .filter(|v| v.rule == RULE_NO_PARTIAL_CMP_SORT)
            .collect();
        let lines: Vec<u32> = vs.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 8]);
    }

    #[test]
    fn partial_cmp_sort_caught_across_line_breaks() {
        // v1 matched needle-per-line and missed exactly this layout.
        let src = concat!(
            "fn f(mut v: Vec<f64>) {\n",
            "    v.sort_by(|a, b| {\n",
            "        a.partial_cmp(b)\n",
            "            .unwrap_or(std::cmp::Ordering::Equal)\n",
            "    });\n",
            "}\n",
        );
        let vs: Vec<_> = scan_source("crates/eval/src/x.rs", src)
            .into_iter()
            .filter(|v| v.rule == RULE_NO_PARTIAL_CMP_SORT)
            .collect();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 2, "reported at the .sort_by call");
    }

    #[test]
    fn total_cmp_sorts_and_partial_cmp_impls_do_not_fire() {
        let src = concat!(
            "fn f(mut v: Vec<f64>) {\n",
            "    v.sort_by(f64::total_cmp);\n",
            "    v.sort_by(|a, b| a.total_cmp(b));\n",
            "}\n",
            "impl PartialOrd for W {\n",
            "    fn partial_cmp(&self, o: &W) -> Option<Ordering> { self.0.partial_cmp(&o.0) }\n",
            "}\n",
        );
        assert!(scan_source("crates/eval/src/x.rs", src)
            .iter()
            .all(|v| v.rule != RULE_NO_PARTIAL_CMP_SORT));
    }

    #[test]
    fn unbounded_run_fires_outside_sim_crate_including_tests() {
        let src = concat!(
            "pub fn drive(sim: &mut S) {\n",
            "    sim.run_to_quiescence();\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(sim: &mut S) {\n",
            "        sim.run_to_quiescence();\n",
            "        assert!(sim.run_to_quiescence_bounded(1_000));\n",
            "    }\n",
            "}\n",
        );
        let vs: Vec<_> = scan_source("crates/syntax/src/x.rs", src)
            .into_iter()
            .filter(|v| v.rule == RULE_NO_UNBOUNDED_RUN)
            .collect();
        let lines: Vec<u32> = vs.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 7]);
        // The sim crate defines (and may call) the unbounded variant.
        assert!(scan_source("crates/sim/src/x.rs", src)
            .iter()
            .all(|v| v.rule != RULE_NO_UNBOUNDED_RUN));
    }

    #[test]
    fn ambient_parallelism_fires_only_in_sim_driven_crates() {
        let src = concat!(
            "use rayon::prelude::*;\n",
            "fn f(v: &[u32]) -> Vec<u32> {\n",
            "    let h = std::thread::spawn(|| 1);\n",
            "    let _ = (h, std::thread::available_parallelism());\n",
            "    v.par_iter().map(|&x| x + 1).collect()\n",
            "}\n",
        );
        let vs = scan_source("crates/syntax/src/x.rs", src);
        assert_eq!(vs.len(), 4);
        assert!(vs.iter().all(|v| v.rule == RULE_NO_AMBIENT_PAR));
        // Non-sim-driven crates (net, bench, check) fan out freely.
        assert!(scan_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn token_boundaries_respected() {
        let src = "fn f() { my_thread_rng(); not_a_panic!simulated(); }\n";
        assert!(scan_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "fn f() -> &'static str { r#\"contains .unwrap() and panic!\"# }\n";
        assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    }

    // --- rng-fork-discipline ---

    #[test]
    fn bare_seed_site_fires_in_sim_driven_lib_code() {
        let src = concat!(
            "use lems_sim::rng::SimRng;\n",
            "pub fn jitter(seed: u64) -> u64 {\n",
            "    let mut rng = SimRng::seed(seed);\n",
            "    rng.range(0, 10)\n",
            "}\n",
        );
        let vs = scan_source("crates/syntax/src/x.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_RNG_FORK);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn forked_root_and_test_seeds_are_fine() {
        let src = concat!(
            "use lems_sim::rng::SimRng;\n",
            "pub fn build(seed: u64) -> SimRng {\n",
            "    SimRng::seed(seed).fork(\"deploy\")\n",
            "}\n",
            "pub fn build_split(seed: u64) -> SimRng {\n",
            "    SimRng::seed(seed)\n",
            "        .fork(\"deploy\")\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let _ = super::SimRng::seed(7); }\n",
            "}\n",
        );
        assert!(scan_source("crates/syntax/src/x.rs", src).is_empty());
    }

    #[test]
    fn seed_outside_sim_driven_crates_is_fine() {
        let src = "pub fn f() -> SimRng { SimRng::seed(1) }\n";
        assert!(scan_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn taint_propagates_through_root_returning_helpers() {
        let src = concat!(
            "use lems_sim::rng::SimRng;\n",
            "fn fresh() -> SimRng {\n",
            "    SimRng::seed(42)\n",
            "}\n",
            "pub fn shuffle_order(xs: &mut Vec<u32>) {\n",
            "    let mut rng = fresh();\n",
            "    rng.shuffle(xs);\n",
            "}\n",
        );
        let vs = scan_source("crates/locindep/src/x.rs", src);
        assert_eq!(vs.len(), 2, "the bare root and the laundering call site");
        assert!(vs.iter().all(|v| v.rule == RULE_RNG_FORK));
        let lines: Vec<u32> = vs.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![3, 6]);
        assert!(vs[1].note.contains("fresh"));
    }

    #[test]
    fn rng_module_itself_is_exempt() {
        let src = "pub fn reseed() -> SimRng { SimRng::seed(0) }\n";
        assert!(scan_source("crates/sim/src/rng.rs", src).is_empty());
    }

    #[test]
    fn prof_module_wall_side_channel_is_exempt() {
        // The profiler's wall-clock side channel is the one sanctioned
        // `Instant` in the sim crate; the same source anywhere else in a
        // sim-driven crate still fires.
        let src = "pub fn tick() { let _ = std::time::Instant::now(); }\n";
        assert!(scan_source("crates/sim/src/prof.rs", src).is_empty());
        let vs = scan_source("crates/sim/src/kernel.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_NO_WALL_CLOCK);
    }

    // --- event-match-exhaustive ---

    const PROTO: &str = concat!(
        "pub enum MailMsg {\n",
        "    Submit { body: u32 },\n",
        "    SubmitAck,\n",
        "    Notify,\n",
        "}\n",
        "fn traffic(n: &mut Node) {\n",
        "    n.send(MailMsg::Submit { body: 1 });\n",
        "    n.send(MailMsg::SubmitAck);\n",
        "    n.send(MailMsg::Notify);\n",
        "}\n",
    );

    #[test]
    fn wildcard_swallowed_variant_is_flagged() {
        let src = format!(
            "{PROTO}impl Actor for Host {{\n    type Msg = MailMsg;\n    fn on_message(&mut self, m: MailMsg) {{\n        match m {{\n            MailMsg::Submit {{ .. }} => {{}}\n            MailMsg::SubmitAck => {{}}\n            _ => {{}}\n        }}\n    }}\n}}\n"
        );
        let vs = scan_source("crates/syntax/src/actors.rs", &src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_EVENT_MATCH);
        assert!(
            vs[0].note.contains("Notify"),
            "note names the swallowed variant"
        );
        assert_eq!(vs[0].line, 17, "reported at the catch-all arm");
    }

    #[test]
    fn explicit_ignore_arms_lint_clean() {
        let src = format!(
            "{PROTO}impl Actor for Host {{\n    type Msg = MailMsg;\n    fn on_message(&mut self, m: MailMsg) {{\n        match m {{\n            MailMsg::Submit {{ .. }} => {{}}\n            MailMsg::SubmitAck | MailMsg::Notify => {{}}\n        }}\n    }}\n}}\n"
        );
        assert!(scan_source("crates/syntax/src/actors.rs", &src).is_empty());
    }

    #[test]
    fn unhandled_variant_without_catch_all_is_flagged() {
        let src = format!(
            "{PROTO}impl Actor for Host {{\n    type Msg = MailMsg;\n    fn on_message(&mut self, m: MailMsg) {{\n        match m {{\n            MailMsg::Submit {{ .. }} => {{}}\n            MailMsg::SubmitAck => {{}}\n        }}\n    }}\n}}\n"
        );
        let vs = scan_source("crates/syntax/src/actors.rs", &src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].note.contains("does not handle"));
        assert!(vs[0].note.contains("Notify"));
    }

    #[test]
    fn dead_variant_is_flagged_at_its_definition() {
        // Notify is handled but nothing ever constructs it.
        let src = concat!(
            "pub enum MailMsg {\n",
            "    Submit,\n",
            "    Notify,\n",
            "}\n",
            "fn traffic(n: &mut Node) { n.send(MailMsg::Submit); }\n",
            "impl Actor for Host {\n",
            "    type Msg = MailMsg;\n",
            "    fn on_message(&mut self, m: MailMsg) {\n",
            "        match m { MailMsg::Submit => {}, MailMsg::Notify => {} }\n",
            "    }\n",
            "}\n",
        );
        let vs = scan_source("crates/syntax/src/actors.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_EVENT_MATCH);
        assert_eq!(vs[0].line, 3);
        assert!(vs[0].note.contains("dead variant"));
    }

    #[test]
    fn test_scope_matches_and_plain_enums_are_ignored() {
        // A wildcard match in a test mod, and a match over an enum that
        // is not a `type Msg` protocol, are both out of scope.
        let src = concat!(
            "pub enum Color { Red, Green }\n",
            "pub fn pick(c: Color) -> u32 { match c { Color::Red => 1, _ => 2 } }\n",
            "pub enum MailMsg { Submit }\n",
            "fn traffic(n: &mut N) { n.send(MailMsg::Submit); }\n",
            "impl Actor for Host {\n",
            "    type Msg = MailMsg;\n",
            "    fn on_message(&mut self, m: MailMsg) { match m { MailMsg::Submit => {} } }\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(m: super::MailMsg) { match m { _ => {} } }\n",
            "}\n",
        );
        assert!(scan_source("crates/syntax/src/actors.rs", src).is_empty());
    }

    // --- allowlist v2 ---

    #[test]
    fn allowlist_waives_and_reports_stale_entries() {
        let allow = Allowlist::parse(
            "# vetted\nno-panic@2 crates/core/src/lib.rs expect(\"generated names\nno-panic@2 crates/net/src/never.rs nothing here\n",
        )
        .unwrap();
        let v = Violation {
            path: "crates/core/src/lib.rs".into(),
            line: 1,
            rule: RULE_NO_PANIC,
            excerpt: String::new(),
            note: String::new(),
        };
        assert!(allow.waives(
            &v,
            "let x = name.parse().expect(\"generated names are valid\");"
        ));
        assert!(!allow.waives(&v, "let x = other.unwrap();"));
        assert_eq!(allow.unused().len(), 1);
    }

    #[test]
    fn version_mismatched_entries_never_waive_and_go_stale() {
        let allow = Allowlist::parse("no-panic@1 crates/core/src/lib.rs .expect(\"x\")\n").unwrap();
        let v = Violation {
            path: "crates/core/src/lib.rs".into(),
            line: 1,
            rule: RULE_NO_PANIC,
            excerpt: String::new(),
            note: String::new(),
        };
        assert!(
            !allow.waives(&v, "m.get(k).expect(\"x\")"),
            "v1-pinned entry must not waive a v2 finding"
        );
        assert_eq!(
            allow.unused(),
            vec![
                "no-panic@1 crates/core/src/lib.rs .expect(\"x\") \
                 (rule is now at v2; re-vet and re-pin)"
            ],
            "stale message names the current version to re-pin against"
        );
    }

    #[test]
    fn stale_allowlist_entries_fail_the_pass() {
        let clean = LintReport::default();
        assert!(clean.is_clean());
        let stale = LintReport {
            stale_allows: vec!["no-panic@2 crates/net/src/never.rs nothing".into()],
            ..LintReport::default()
        };
        assert!(!stale.is_clean());
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("no-panic onlytwo").is_err());
        assert!(
            Allowlist::parse("no-panic crates/x/src/lib.rs needle").is_err(),
            "version pin is mandatory"
        );
        assert!(
            Allowlist::parse("no-panik@2 crates/x/src/lib.rs needle").is_err(),
            "unknown rules are typos, not waivers"
        );
        assert!(Allowlist::parse("").unwrap().is_empty());
    }

    #[test]
    fn lint_workspace_on_this_repo_smoke() {
        // The real tree must scan without I/O errors; cleanliness is
        // asserted by the CI invocation, not here (tests must not depend
        // on the allowlist's current contents).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root, &Allowlist::empty()).unwrap();
        assert!(report.files_scanned > 30);
    }

    // ---- determinism-taint negative fixtures -------------------------

    fn taint_findings(rel: &str, src: &str) -> Vec<Violation> {
        scan_source(rel, src)
            .into_iter()
            .filter(|v| v.rule == RULE_DETERMINISM_TAINT)
            .collect()
    }

    #[test]
    fn wall_clock_taint_through_helper_fn_reaches_send() {
        // The syntactic no-wall-clock backstop flags the Instant site;
        // the taint rule must ALSO catch the flow into the sink, two
        // fns away, where the backstop sees nothing.
        let src = concat!(
            "fn stamp() -> u64 {\n",
            "    let t = std::time::Instant::now();\n",
            "    t.elapsed().as_nanos() as u64\n",
            "}\n",
            "impl Host {\n",
            "    fn beat(&mut self, ctx: &mut Ctx) {\n",
            "        let v = stamp();\n",
            "        self.send(ctx, v);\n",
            "    }\n",
            "}\n",
        );
        let vs = taint_findings("crates/mst/src/x.rs", src);
        assert_eq!(vs.len(), 1, "taint flows through the helper summary");
        assert_eq!(vs[0].line, 8);
        assert!(vs[0].note.contains("wall-clock"));
    }

    #[test]
    fn laundering_through_identity_wrapper_still_fires() {
        let src = concat!(
            "fn launder(x: u64) -> u64 {\n",
            "    x\n",
            "}\n",
            "impl Host {\n",
            "    fn beat(&mut self, ctx: &mut Ctx) {\n",
            "        let t = std::time::Instant::now().elapsed().as_nanos() as u64;\n",
            "        let v = launder(t);\n",
            "        self.send(ctx, v);\n",
            "    }\n",
            "}\n",
        );
        let vs = taint_findings("crates/syntax/src/x.rs", src);
        assert_eq!(vs.len(), 1, "param-to-ret summary defeats laundering");
        assert_eq!(vs[0].line, 8);
    }

    #[test]
    fn hash_iteration_order_taints_scheduled_values() {
        let src = concat!(
            "use std::collections::HashMap;\n",
            "impl Host {\n",
            "    fn fanout(&mut self, ctx: &mut Ctx) {\n",
            "        let peers: HashMap<u64, u64> = HashMap::new();\n",
            "        for (p, w) in peers.iter() {\n",
            "            self.send(ctx, *p, *w);\n",
            "        }\n",
            "    }\n",
            "}\n",
        );
        let vs = taint_findings("crates/locindep/src/x.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 6);
        assert!(vs[0].note.contains("hash-iteration-order"));
    }

    #[test]
    fn untainted_and_keyed_flows_stay_clean() {
        // Ordered iteration, keyed hash access, and sim-time values are
        // all legitimate inputs to a sink.
        let src = concat!(
            "use std::collections::{BTreeMap, HashMap};\n",
            "impl Host {\n",
            "    fn fanout(&mut self, ctx: &mut Ctx, now: SimTime) {\n",
            "        let peers: BTreeMap<u64, u64> = BTreeMap::new();\n",
            "        for (p, w) in peers.iter() {\n",
            "            self.send(ctx, *p, *w);\n",
            "        }\n",
            "        let cache: HashMap<u64, u64> = HashMap::new();\n",
            "        if let Some(v) = cache.get(&7) {\n",
            "            self.send_at(ctx, now, *v);\n",
            "        }\n",
            "    }\n",
            "}\n",
        );
        assert!(taint_findings("crates/mst/src/x.rs", src).is_empty());
    }

    #[test]
    fn taint_rule_skips_test_code_and_non_sim_crates() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(h: &mut Host, ctx: &mut Ctx) {\n",
            "        let t = std::time::Instant::now().elapsed().as_nanos() as u64;\n",
            "        h.send(ctx, t);\n",
            "    }\n",
            "}\n",
        );
        assert!(taint_findings("crates/syntax/src/x.rs", src).is_empty());
        let lib_src = concat!(
            "fn emit(h: &mut Host, ctx: &mut Ctx) {\n",
            "    let t = std::time::Instant::now().elapsed().as_nanos() as u64;\n",
            "    h.send(ctx, t);\n",
            "}\n",
        );
        // The eval crate post-processes results outside the simulation.
        assert!(taint_findings("crates/eval/src/x.rs", lib_src).is_empty());
    }

    // ---- store-mutation-discipline negative fixtures -----------------

    fn store_findings(rel: &str, src: &str) -> Vec<Violation> {
        scan_source(rel, src)
            .into_iter()
            .filter(|v| v.rule == RULE_STORE_MUTATION)
            .collect()
    }

    #[test]
    fn mailbox_mutation_behind_free_fn_is_flagged() {
        // Hiding the mutation in a helper that takes `&mut Mailbox`
        // does not launder it: the param class follows the type.
        let src = concat!(
            "use lems_core::mailbox::Mailbox;\n",
            "fn purge(mb: &mut Mailbox, id: MessageId) {\n",
            "    mb.remove(id);\n",
            "}\n",
        );
        let vs = store_findings("crates/syntax/src/x.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn mailbox_map_mutation_and_ad_hoc_construction_are_flagged() {
        let src = concat!(
            "use std::collections::BTreeMap;\n",
            "fn seed(boxes: &mut BTreeMap<MailName, Mailbox>, owner: MailName) {\n",
            "    boxes.entry(owner.clone()).or_insert_with(|| Mailbox::new(owner));\n",
            "}\n",
        );
        let vs = store_findings("crates/store/src/x.rs", src);
        assert_eq!(vs.len(), 2, "both the map entry and Mailbox::new fire");
        assert!(vs.iter().all(|v| v.line == 3));
    }

    #[test]
    fn trusted_store_module_and_mailstore_calls_are_clean() {
        let src = concat!(
            "use lems_core::mailbox::Mailbox;\n",
            "fn purge(mb: &mut Mailbox, id: MessageId) {\n",
            "    mb.remove(id);\n",
            "}\n",
        );
        // The same code inside lems_core::store is the implementation.
        assert!(store_findings("crates/core/src/store.rs", src).is_empty());
        // Routing through the MailStore trait is the sanctioned path.
        let routed = concat!(
            "use lems_core::store::MailStore;\n",
            "fn purge(store: &mut dyn MailStore, owner: &MailName, id: MessageId) {\n",
            "    store.remove(owner, id);\n",
            "}\n",
        );
        assert!(store_findings("crates/syntax/src/x.rs", routed).is_empty());
    }

    // ---- no-ignored-store-errors negative fixtures -------------------

    fn ignored_findings(rel: &str, src: &str) -> Vec<Violation> {
        scan_source(rel, src)
            .into_iter()
            .filter(|v| v.rule == RULE_IGNORED_STORE_ERR)
            .collect()
    }

    #[test]
    fn ok_swallowed_wal_sync_is_flagged() {
        let src = concat!(
            "fn flush<S: SegmentIo>(io: &mut S) {\n",
            "    io.sync(0).ok();\n",
            "}\n",
        );
        let vs = ignored_findings("crates/store/src/x.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 2);
        assert!(vs[0].note.contains("swallows"));
    }

    #[test]
    fn discarded_and_dropped_store_results_are_flagged() {
        let src = concat!(
            "fn churn<S: SegmentIo>(io: &mut S, data: &[u8]) {\n",
            "    let _ = io.append(0, data);\n",
            "    io.truncate(0, 0);\n",
            "}\n",
        );
        let vs = ignored_findings("crates/store/src/x.rs", src);
        let lines: Vec<u32> = vs.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3]);
    }

    #[test]
    fn propagated_and_inspected_store_results_are_clean() {
        let src = concat!(
            "fn flush<S: SegmentIo>(io: &mut S, data: &[u8]) -> Result<(), StoreError> {\n",
            "    io.append(0, data)?;\n",
            "    let r = io.sync(0);\n",
            "    note_io(&r);\n",
            "    io.read(0).ok().map(|b| b.len());\n",
            "    io.sync(0)\n",
            "}\n",
        );
        assert!(ignored_findings("crates/store/src/x.rs", src).is_empty());
    }

    #[test]
    fn ignored_store_errors_skips_test_code() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t<S: SegmentIo>(io: &mut S) {\n",
            "        io.sync(0).ok();\n",
            "        let _ = io.truncate(0, 0);\n",
            "    }\n",
            "}\n",
        );
        assert!(ignored_findings("crates/store/src/x.rs", src).is_empty());
    }
}
