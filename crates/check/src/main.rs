//! `lems-check` — workspace lint pass and trace-based invariant auditor.
//!
//! ```sh
//! cargo run -p lems-check -- lint [--root <workspace-root>]
//! cargo run -p lems-check -- audit [--seed <n>] [scenario ...]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use lems_check::lint::{lint_workspace, Allowlist};
use lems_check::scenarios;

const USAGE: &str = "\
usage: lems-check <command> [options]

commands:
  lint  [--root <dir>]            static rules over crates/*/src
                                  (no-panic, no-wall-clock, no-hash-collections;
                                   vetted exceptions in <root>/lint-allow.txt)
  audit [--seed <n>] [--chaos] [name ...]
                                  replay audit scenarios and check the
                                  engine's conservation laws + mail ledgers
                                  (scenarios: steady, failover, random-failures,
                                   chaos-lossy, chaos-partition, chaos-crash-loss;
                                   --chaos runs just the chaos trio;
                                   default: all, seed 3)
";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("audit") => run_audit(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("lems-check: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `--root` if given, else the nearest ancestor of the
/// current directory containing `crates/` (so the binary works from any
/// crate subdirectory), else the manifest's grandparent (the checkout this
/// binary was built from).
fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root);
    }
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            break;
        }
    }
    let fallback = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.join("crates").is_dir().then_some(fallback)
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut explicit = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => explicit = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lems-check lint: --root needs a value");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("lems-check lint: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = workspace_root(explicit) else {
        eprintln!("lems-check lint: cannot locate a workspace root (no crates/ found)");
        return ExitCode::from(2);
    };
    let allow = match Allowlist::load(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lems-check lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lems-check lint: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    for stale in &report.stale_allows {
        eprintln!("warning: stale allowlist entry (matched nothing): {stale}");
    }
    if report.is_clean() {
        println!(
            "lint: {} files clean ({} vetted exception{})",
            report.files_scanned,
            allow.len(),
            if allow.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "lint: {} violation(s) across {} files",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn run_audit(args: &[String]) -> ExitCode {
    let mut seed = 3u64;
    let mut chaos_only = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("lems-check audit: --seed needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--chaos" => chaos_only = true,
            name => wanted.push(name.to_owned()),
        }
    }

    let all = if chaos_only {
        scenarios::run_chaos(seed)
    } else {
        scenarios::run_all(seed)
    };
    let outcomes: Vec<_> = all
        .into_iter()
        .filter(|o| wanted.is_empty() || wanted.iter().any(|w| w == o.name))
        .collect();
    if outcomes.is_empty() {
        eprintln!(
            "lems-check audit: no scenario matches {:?} (have: steady, failover, \
             random-failures, chaos-lossy, chaos-partition, chaos-crash-loss)",
            wanted
        );
        return ExitCode::from(2);
    }

    let mut dirty = false;
    for o in &outcomes {
        println!("scenario `{}` (seed {seed}): {}", o.name, o.description);
        println!(
            "  {} submitted, {} retrieved, {} bounced, {} retransmit(s), \
             {} wiring error(s); trace: {}",
            o.submitted, o.retrieved, o.bounced, o.retransmits, o.wiring_errors, o.trace
        );
        for line in o.violation_lines() {
            println!("  violation: {line}");
            dirty = true;
        }
    }
    if dirty {
        println!("audit: violations found");
        ExitCode::FAILURE
    } else {
        println!("audit: {} scenario(s) clean", outcomes.len());
        ExitCode::SUCCESS
    }
}
