//! `lems-check` — workspace lint pass and trace-based invariant auditor.
//!
//! ```sh
//! cargo run -p lems-check -- lint [--root <workspace-root>] [--json] [--github] \
//!     [--no-allow] [--no-timing] [--time-budget-ms <n>]
//! cargo run -p lems-check -- audit [--seed <n>] [scenario ...]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use lems_check::explore;
use lems_check::lint::{lint_workspace, Allowlist};
use lems_check::report::LintDoc;
use lems_check::scenarios;

const USAGE: &str = "\
usage: lems-check <command> [options]

commands:
  lint  [--root <dir>] [--json] [--github] [--no-allow] [--no-timing]
        [--time-budget-ms <n>]
                                  scope- and flow-aware static rules over
                                  crates/*/src
                                  (syntactic: no-panic, no-wall-clock,
                                   no-hash-collections, no-partial-cmp-sort,
                                   no-unbounded-run, no-ambient-parallelism;
                                   semantic: rng-fork-discipline,
                                   event-match-exhaustive, determinism-taint,
                                   store-mutation-discipline,
                                   no-ignored-store-errors;
                                   vetted exceptions in <root>/lint-allow.txt,
                                   pinned as rule@version; stale exceptions
                                   fail the pass;
                                   --json emits the schema-versioned report
                                   with per-rule wall-time counters,
                                   --no-timing omits the timing block so the
                                   output is byte-stable,
                                   --time-budget-ms fails the run when the
                                   whole lint pass exceeds the budget,
                                   --github emits ::error annotations,
                                   --no-allow ignores the allowlist — the CI
                                   differential diffs `--json --no-timing`
                                   output against GOLDEN_lint.json)
  audit [--seed <n>] [--chaos] [--durability] [--trace-out <path>] [name ...]
                                  replay audit scenarios and check the
                                  engine's conservation laws + mail ledgers
                                  + message-lifecycle span conservation
                                  (scenarios: steady, failover, random-failures,
                                   chaos-lossy, chaos-partition, chaos-crash-loss,
                                   durable-crash, durable-torn-tail,
                                   durable-recrash;
                                   --chaos runs just the chaos trio;
                                   --durability runs just the WAL crash-recovery
                                   trio and fails on any acked-deposit loss;
                                   --trace-out writes each scenario's spans and
                                   metrics as deterministic JSONL for lems-trace,
                                   name-suffixed when several scenarios run;
                                   default: all, seed 3)
  explore [--seed <n>] [--max-schedules <n>] [--require-exhaustive] [name ...]
                                  small-scope schedule model checker: enumerate
                                  every same-instant interleaving of tiny
                                  deployments, audit each terminal trace, and
                                  print failing schedules as replayable
                                  branch-choice lists
                                  (scenarios: s1-steady, s1-crash, s2-roam;
                                   default: all, seed 3;
                                   --require-exhaustive also fails runs the
                                   bounds truncated)
";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("audit") => run_audit(&args[1..]),
        Some("explore") => run_explore(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("lems-check: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `--root` if given, else the nearest ancestor of the
/// current directory containing `crates/` (so the binary works from any
/// crate subdirectory), else the manifest's grandparent (the checkout this
/// binary was built from).
fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root);
    }
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            break;
        }
    }
    let fallback = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.join("crates").is_dir().then_some(fallback)
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut explicit = None;
    let mut json = false;
    let mut github = false;
    let mut no_allow = false;
    let mut no_timing = false;
    let mut budget_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => explicit = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lems-check lint: --root needs a value");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--github" => github = true,
            "--no-allow" => no_allow = true,
            "--no-timing" => no_timing = true,
            "--time-budget-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => budget_ms = Some(n),
                None => {
                    eprintln!("lems-check lint: --time-budget-ms needs an integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("lems-check lint: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = workspace_root(explicit) else {
        eprintln!("lems-check lint: cannot locate a workspace root (no crates/ found)");
        return ExitCode::from(2);
    };
    let allow = if no_allow {
        Allowlist::empty()
    } else {
        match Allowlist::load(&root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("lems-check lint: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let t0 = std::time::Instant::now();
    let report = match lint_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lems-check lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
    let over_budget = budget_ms.is_some_and(|b| elapsed_ms > b);
    if over_budget {
        // The budget catches pathological slowdowns as the flow engine
        // grows; report it loudly even in JSON mode (on stderr).
        eprintln!(
            "lems-check lint: TIME BUDGET EXCEEDED: pass took {elapsed_ms} ms \
             (budget {} ms)",
            budget_ms.unwrap_or(0)
        );
    }

    if json || github {
        let mut doc = LintDoc::from_report(&report, allow.len());
        if no_timing {
            doc = doc.without_timing();
        }
        if json {
            print!("{}", doc.render_json());
        }
        if github {
            print!("{}", doc.render_github());
        }
        return if report.is_clean() && !over_budget {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for v in &report.violations {
        println!("{v}");
    }
    for stale in &report.stale_allows {
        println!("stale allowlist entry (matched nothing): {stale}");
    }
    if !no_timing {
        for t in &report.timings {
            println!(
                "timing: {:<28} {:>8} us  ({} file(s))",
                t.rule, t.wall_us, t.files_scanned
            );
        }
    }
    if report.is_clean() && !over_budget {
        println!(
            "lint: {} files clean ({} vetted exception{})",
            report.files_scanned,
            allow.len(),
            if allow.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else if over_budget {
        ExitCode::FAILURE
    } else {
        println!(
            "lint: {} violation(s), {} stale exception(s) across {} files",
            report.violations.len(),
            report.stale_allows.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn run_audit(args: &[String]) -> ExitCode {
    let mut seed = 3u64;
    let mut chaos_only = false;
    let mut durability_only = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("lems-check audit: --seed needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--chaos" => chaos_only = true,
            "--durability" => durability_only = true,
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lems-check audit: --trace-out needs a path");
                    return ExitCode::from(2);
                }
            },
            name => wanted.push(name.to_owned()),
        }
    }

    let all = if chaos_only {
        scenarios::run_chaos(seed)
    } else if durability_only {
        scenarios::run_durability(seed)
    } else {
        scenarios::run_all(seed)
    };
    let outcomes: Vec<_> = all
        .into_iter()
        .filter(|o| wanted.is_empty() || wanted.iter().any(|w| w == o.name))
        .collect();
    if outcomes.is_empty() {
        eprintln!(
            "lems-check audit: no scenario matches {wanted:?} (have: steady, failover, \
             random-failures, chaos-lossy, chaos-partition, chaos-crash-loss, \
             durable-crash, durable-torn-tail, durable-recrash)"
        );
        return ExitCode::from(2);
    }

    let mut dirty = false;
    for o in &outcomes {
        println!("scenario `{}` (seed {seed}): {}", o.name, o.description);
        println!(
            "  {} submitted, {} retrieved, {} bounced, {} retransmit(s), \
             {} wiring error(s); trace: {}",
            o.submitted, o.retrieved, o.bounced, o.retransmits, o.wiring_errors, o.trace
        );
        println!("  spans: {}", o.span_report);
        for line in o.violation_lines() {
            println!("  violation: {line}");
            dirty = true;
        }
        if let Some(base) = &trace_out {
            let path = if outcomes.len() == 1 {
                base.clone()
            } else {
                suffixed(base, o.name)
            };
            match write_trace(o, &path) {
                Ok(lines) => println!("  wrote {lines} line(s) to {}", path.display()),
                Err(e) => {
                    eprintln!("lems-check audit: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    if dirty {
        println!("audit: violations found");
        ExitCode::FAILURE
    } else {
        println!("audit: {} scenario(s) clean", outcomes.len());
        ExitCode::SUCCESS
    }
}

/// `base` with `.{name}` spliced in before the extension, so
/// `--trace-out spans.jsonl` over several scenarios yields
/// `spans.steady.jsonl`, `spans.chaos-lossy.jsonl`, ….
fn suffixed(base: &std::path::Path, name: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    match base.extension().and_then(|s| s.to_str()) {
        Some(ext) => base.with_file_name(format!("{stem}.{name}.{ext}")),
        None => base.with_file_name(format!("{stem}.{name}")),
    }
}

/// Exports one scenario's telemetry to `path`; returns the line count.
fn write_trace(o: &scenarios::ScenarioOutcome, path: &std::path::Path) -> Result<usize, String> {
    let text = lems_obs::export::export_jsonl(&lems_obs::export::RunTelemetry {
        run: o.name,
        seed: o.seed,
        finished_at: o.finished_at,
        spans: &o.spans,
        recoveries: &o.recoveries,
        scopes: &o.scopes,
        store: &o.store,
        profile: &o.profile,
    })?;
    let lines = text.lines().count();
    std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(lines)
}

fn run_explore(args: &[String]) -> ExitCode {
    let mut seed = 3u64;
    let mut bounds = explore::default_bounds();
    let mut require_exhaustive = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-exhaustive" => require_exhaustive = true,
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("lems-check explore: --seed needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--max-schedules" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => bounds.max_schedules = n,
                None => {
                    eprintln!("lems-check explore: --max-schedules needs an integer");
                    return ExitCode::from(2);
                }
            },
            name => wanted.push(name.to_owned()),
        }
    }

    let outcomes: Vec<_> = explore::run_all(seed, bounds)
        .into_iter()
        .filter(|o| wanted.is_empty() || wanted.iter().any(|w| w == o.name))
        .collect();
    if outcomes.is_empty() {
        eprintln!(
            "lems-check explore: no scenario matches {wanted:?} \
             (have: s1-steady, s1-crash, s2-roam)"
        );
        return ExitCode::from(2);
    }

    let mut dirty = false;
    for o in &outcomes {
        println!("scenario `{}` (seed {seed}): {}", o.name, o.description);
        println!(
            "  {} schedule(s) explored, {} distinct outcome(s){}",
            o.schedules,
            o.distinct_outcomes,
            if o.truncated {
                " [TRUNCATED: bounds clipped the space]"
            } else {
                " (exhaustive)"
            }
        );
        if o.truncated && require_exhaustive {
            dirty = true;
            println!("  FAIL: --require-exhaustive set but bounds clipped the space");
        }
        if let Some(cx) = &o.counterexample {
            dirty = true;
            println!("  counterexample schedule: {}", cx.schedule);
            println!(
                "  replay: {}",
                if cx.replay_verified {
                    "verified byte-identical"
                } else {
                    "FAILED to reproduce (nondeterministic workload?)"
                }
            );
            for v in &cx.violations {
                println!("  violation: {v}");
            }
        }
    }
    if dirty {
        println!("explore: counterexample(s) or truncated run(s) found");
        ExitCode::FAILURE
    } else {
        println!("explore: {} scenario(s) clean", outcomes.len());
        ExitCode::SUCCESS
    }
}
