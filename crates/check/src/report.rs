//! Machine-readable lint reports.
//!
//! Mirrors the schema-versioned emit pattern established by
//! `lems-bench`'s `emit` module: a serde document with an explicit
//! `schema_version` field so downstream consumers (the CI differential
//! step, dashboards) can detect format drift, rendered either as
//! pretty-printed JSON (`--json`) or as GitHub Actions error
//! annotations (`--github`).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::lint::LintReport;

/// Schema version of the JSON lint document. Bump on any breaking
/// change to the field layout below. v2: engine `lint-v3` (flow layer),
/// three new rules in `rule_versions`, optional `timing` block.
pub const LINT_SCHEMA_VERSION: u32 = 2;

/// Wall time + coverage of one rule pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuleTimingDoc {
    /// Rule id.
    pub rule: String,
    /// Wall time of the pass, microseconds.
    pub wall_us: u64,
    /// Files the pass looked at (scoped rules scan fewer than the
    /// whole workspace).
    pub files_scanned: usize,
}

/// Per-rule timing block. Omitted entirely under `--no-timing`, so the
/// golden-differential diff stays byte-stable while the default `--json`
/// output keeps lint cost visible as the engine grows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingDoc {
    /// Sum of the per-rule analysis wall times, microseconds (excludes
    /// file I/O, which the CI budget measures around the whole run).
    pub total_wall_us: u64,
    /// One entry per rule, in `rule_versions` order.
    pub rules: Vec<RuleTimingDoc>,
}

/// One finding in the JSON document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Finding {
    /// Rule id, e.g. `no-panic`.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source excerpt.
    pub excerpt: String,
    /// Rule-specific explanation of why this site was flagged.
    pub note: String,
}

/// The full schema-versioned lint document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LintDoc {
    /// Schema version ([`LINT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Engine identifier; bumps when the analysis layers change shape.
    pub engine: String,
    /// Rule id → rule version, for allowlist `rule@version` pinning.
    pub rule_versions: BTreeMap<String, u32>,
    /// Number of files the pass scanned.
    pub files_scanned: usize,
    /// Number of (non-comment) allowlist entries in force; 0 when the
    /// allowlist was disabled (`--no-allow`).
    pub allow_entries: usize,
    /// Findings, in deterministic path/line order.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale: must be removed).
    pub stale_allows: Vec<String>,
    /// Per-rule wall-time/coverage counters; `None` under `--no-timing`
    /// (and then absent from the JSON, keeping golden diffs stable).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub timing: Option<TimingDoc>,
}

impl LintDoc {
    /// Builds the document from a finished lint pass. The timing block
    /// is filled from the report; call [`LintDoc::without_timing`] for
    /// byte-stable output.
    pub fn from_report(report: &LintReport, allow_entries: usize) -> LintDoc {
        let rules: Vec<RuleTimingDoc> = report
            .timings
            .iter()
            .map(|t| RuleTimingDoc {
                rule: t.rule.to_string(),
                wall_us: t.wall_us,
                files_scanned: t.files_scanned,
            })
            .collect();
        let timing = (!rules.is_empty()).then(|| TimingDoc {
            total_wall_us: rules.iter().map(|r| r.wall_us).sum(),
            rules,
        });
        LintDoc {
            schema_version: LINT_SCHEMA_VERSION,
            engine: "lint-v3".to_string(),
            rule_versions: crate::lint::rule_versions()
                .iter()
                .map(|&(rule, version)| (rule.to_string(), version))
                .collect(),
            files_scanned: report.files_scanned,
            allow_entries,
            findings: report
                .violations
                .iter()
                .map(|v| Finding {
                    rule: v.rule.to_string(),
                    path: v.path.clone(),
                    line: v.line,
                    excerpt: v.excerpt.clone(),
                    note: v.note.clone(),
                })
                .collect(),
            stale_allows: report.stale_allows.clone(),
            timing,
        }
    }

    /// Drops the (nondeterministic) timing block, for output meant to
    /// be diffed byte-for-byte against `GOLDEN_lint.json`.
    pub fn without_timing(mut self) -> LintDoc {
        self.timing = None;
        self
    }

    /// Renders the document as pretty-printed JSON (stable field and
    /// key order, so the output is diffable against a golden report).
    pub fn render_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string());
        s.push('\n');
        s
    }

    /// Renders findings as GitHub Actions workflow commands
    /// (`::error file=…,line=…::…`), one per line, so violations show
    /// up inline on the PR diff. Stale allowlist entries render as
    /// file-less errors.
    pub fn render_github(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            // Writing to a String cannot fail; ignore the fmt::Result.
            let _ = writeln!(
                out,
                "::error file={},line={}::[{}] {} ({})",
                f.path, f.line, f.rule, f.excerpt, f.note
            );
        }
        for stale in &self.stale_allows {
            let _ = writeln!(out, "::error::stale lint-allow entry: {stale}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{LintReport, Violation};

    fn sample() -> LintDoc {
        let report = LintReport {
            violations: vec![Violation {
                path: "crates/x/src/lib.rs".to_string(),
                line: 7,
                rule: "no-panic",
                excerpt: "foo.unwrap()".to_string(),
                note: "panic site in non-test library code".to_string(),
            }],
            stale_allows: vec!["no-panic@2 gone.rs nothing".to_string()],
            files_scanned: 3,
            timings: vec![crate::lint::RuleTiming {
                rule: "no-panic",
                wall_us: 120,
                files_scanned: 3,
            }],
        };
        LintDoc::from_report(&report, 2)
    }

    #[test]
    fn json_round_trips_with_schema_version_and_findings() {
        let doc = sample();
        let json = doc.render_json();
        let back: LintDoc = serde_json::from_str(&json).expect("valid json");
        assert_eq!(back.schema_version, LINT_SCHEMA_VERSION);
        assert_eq!(back.engine, "lint-v3");
        assert_eq!(back.findings[0].rule, "no-panic");
        assert_eq!(back.findings[0].line, 7);
        assert_eq!(back.files_scanned, 3);
        assert_eq!(back.allow_entries, 2);
        assert!(!back.rule_versions.is_empty());
        assert_eq!(back.stale_allows.len(), 1);
        let timing = back.timing.expect("timing present by default");
        assert_eq!(timing.total_wall_us, 120);
        assert_eq!(timing.rules[0].rule, "no-panic");
        assert_eq!(timing.rules[0].files_scanned, 3);
    }

    #[test]
    fn without_timing_omits_the_block_entirely() {
        let doc = sample().without_timing();
        let json = doc.render_json();
        assert!(
            !json.contains("timing"),
            "--no-timing output must be byte-stable for golden diffs"
        );
        let back: LintDoc = serde_json::from_str(&json).expect("valid json");
        assert!(back.timing.is_none());
    }

    #[test]
    fn github_annotations_name_file_and_line() {
        let doc = sample();
        let gh = doc.render_github();
        assert!(gh.contains("::error file=crates/x/src/lib.rs,line=7::[no-panic]"));
        assert!(gh.contains("::error::stale lint-allow entry:"));
    }
}
