//! Reproducible audit scenarios.
//!
//! Each scenario builds a System-1 deployment with full tracing enabled
//! (`Trace::unbounded` semantics via [`ActorSim::enable_trace`]), drives
//! a deterministic workload, runs to quiescence, and then applies both
//! audit layers: the stream-level conservation laws of
//! [`audit_trace`](crate::audit::audit_trace) and the domain-level
//! ledger checks of [`audit_deployment`](crate::audit::audit_deployment).
//!
//! The scenarios are seeds-in, verdict-out: replaying one with the same
//! seed reproduces the identical event stream, which is what makes a
//! reported violation actionable.

use lems_core::store::{StoreMetrics, StoreRecovery};
use lems_net::generators::fig1;
use lems_sim::linkfault::LinkProfile;
use lems_sim::metrics::MetricsRegistry;
use lems_sim::prof::ProfSample;
use lems_sim::span::{audit_spans, SpanAuditReport, SpanLog};
use lems_sim::time::{SimDuration, SimTime};
use lems_store::{DurabilityConfig, WalConfig};
use lems_syntax::actors::{
    Deployment, DeploymentConfig, LinkChaos, ServerFailurePlan, SessionConfig,
};

use crate::audit::{audit_deployment, audit_trace, AuditReport, AuditViolation};

/// Event budget for one scenario run: chaos plans can in principle make a
/// retry loop diverge, so scenarios run bounded and report budget
/// exhaustion as a violation instead of hanging the audit.
pub const EVENT_BUDGET: u64 = 2_000_000;

/// The verdict for one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Stable scenario name (CLI selector).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Stream-level conservation report.
    pub trace: AuditReport,
    /// Domain-level ledger violations.
    pub domain: Vec<AuditViolation>,
    /// Messages submitted over the run.
    pub submitted: u64,
    /// Messages retrieved by their recipients.
    pub retrieved: u64,
    /// Messages bounced.
    pub bounced: u64,
    /// Session-layer retransmissions over the run.
    pub retransmits: u64,
    /// Transport wiring errors (sends to unbound/unknown nodes).
    pub wiring_errors: u64,
    /// Message-lifecycle span conservation report — the third evidence
    /// stream, cross-checked against the session stats.
    pub span_report: SpanAuditReport,
    /// The run's complete span log (exportable via `lems-obs`).
    pub spans: SpanLog,
    /// Store-recovery reports, one per server recovery (exportable).
    pub recoveries: Vec<StoreRecovery>,
    /// Per-actor metric registries in deployment order (exportable).
    pub scopes: Vec<(String, MetricsRegistry)>,
    /// Per-server store durability metrics in deployment order
    /// (exportable; empty for volatile backends).
    pub store: Vec<(String, StoreMetrics)>,
    /// Kernel-profiler samples (exportable). Scenarios run with the
    /// profiler on — enabling it changes no output byte (pinned by
    /// `crates/sim/tests/prof_digest.rs`), so the audited digests are
    /// unaffected.
    pub profile: Vec<ProfSample>,
    /// Engine seed the scenario ran with.
    pub seed: u64,
    /// Simulated time at quiescence.
    pub finished_at: SimTime,
    /// FNV-1a digest of the run's rendered trace stream
    /// ([`Trace::digest`](lems_sim::trace::Trace::digest)) — the byte-level
    /// fingerprint `tests/kernel_equivalence.rs` pins against the committed
    /// pre-refactor values in `GOLDEN_kernel_digests.txt`.
    pub trace_digest: u64,
}

impl ScenarioOutcome {
    /// True when all three audit layers found nothing.
    pub fn is_clean(&self) -> bool {
        self.trace.is_clean() && self.domain.is_empty() && self.span_report.is_clean()
    }

    /// Every violation from all layers, rendered.
    pub fn violation_lines(&self) -> Vec<String> {
        self.trace
            .violations
            .iter()
            .map(std::string::ToString::to_string)
            .chain(self.domain.iter().map(std::string::ToString::to_string))
            .chain(
                self.span_report
                    .violations
                    .iter()
                    .map(|v| format!("span: {v}")),
            )
            .collect()
    }
}

fn t(u: f64) -> SimTime {
    SimTime::from_units(u)
}

fn fig1_deployment(seed: u64) -> Deployment {
    fig1_deployment_with_session(seed, SessionConfig::default())
}

fn fig1_deployment_with_session(seed: u64, session: SessionConfig) -> Deployment {
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            session,
            ..DeploymentConfig::default()
        },
    );
    // Unbounded so the auditor sees the complete history; must happen
    // before the first injection or the stream starts mid-story.
    d.sim.enable_trace(usize::MAX);
    // Lifecycle spans ride the same runs: recording draws no randomness
    // and schedules nothing, so the event stream is unchanged.
    d.enable_spans();
    // Kernel profiling likewise changes no output byte; it feeds the
    // Profile block of `--trace-out` dumps.
    d.sim.enable_prof();
    d
}

fn finish(
    name: &'static str,
    description: &'static str,
    seed: u64,
    mut d: Deployment,
    expect_drained: bool,
) -> ScenarioOutcome {
    let quiesced = d.sim.run_to_quiescence_bounded(EVENT_BUDGET);
    let trace_digest = d.sim.trace().digest();
    let trace = audit_trace(d.sim.trace());
    let mut domain = audit_deployment(&d, expect_drained);
    if !quiesced {
        domain.insert(
            0,
            AuditViolation::Domain(format!(
                "event budget exceeded: {EVENT_BUDGET} events processed without \
                 quiescence (runaway retry loop?)"
            )),
        );
    }
    // Third evidence stream: every opened span must reach exactly one
    // terminal state (open-ended spans are only tolerated when the run
    // itself was cut off), and the span ledger's retransmit count must
    // agree with the session layer's own accounting.
    let spans = d.spans.borrow().clone();
    let span_report = audit_spans(&spans, expect_drained && quiesced);
    let stats = d.stats.borrow();
    if span_report.retransmits != stats.retransmits {
        domain.push(AuditViolation::Domain(format!(
            "span ledger disagrees with session stats: {} retransmit probe(s) \
             recorded in spans, {} counted by the session layer",
            span_report.retransmits, stats.retransmits
        )));
    }
    let submitted = stats.submitted;
    let retrieved = stats.retrieved;
    let bounced = stats.bounced;
    let retransmits = stats.retransmits;
    drop(stats);
    ScenarioOutcome {
        name,
        description,
        trace,
        domain,
        submitted,
        retrieved,
        bounced,
        retransmits,
        wiring_errors: d.transport.wiring_errors(),
        span_report,
        spans,
        recoveries: d.recoveries.borrow().clone(),
        scopes: d.metrics_snapshot(),
        store: d.store_metrics_snapshot(),
        profile: d.sim.profile_samples(),
        seed,
        finished_at: d.sim.now(),
        trace_digest,
    }
}

/// Steady-state exchange on the Fig. 1 topology: no failures, every user
/// mails a distant peer, everyone checks mail afterwards. The baseline —
/// if this reports a violation, the engine itself is miswired.
pub fn steady_exchange(seed: u64) -> ScenarioOutcome {
    let mut d = fig1_deployment(seed);
    let names = d.user_names();
    for i in 0..names.len() {
        d.send_at(t(1.0 + i as f64), &names[i], &names[(i + 5) % names.len()]);
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(100.0 + i as f64), n);
    }
    finish(
        "steady",
        "Fig. 1 topology, no failures: ring of sends, then everyone checks",
        seed,
        d,
        true,
    )
}

/// The actor-level analogue of `examples/failure_drill.rs`: the first
/// Fig. 1 server is down in `[10, 30)`, mail submitted during the outage
/// fails over to secondaries, users check both during the outage and
/// after recovery, and drain sweeps run once everything is healed.
/// Exercises crash/recover tracing, message drops on the downed server,
/// the §3.1.2c `LastStartTime` walk, and the store-and-forward recovery
/// path — nothing may be lost or stranded.
pub fn primary_outage_failover(seed: u64) -> ScenarioOutcome {
    let f = fig1();
    let mut d = fig1_deployment(seed);
    let names = d.user_names();

    let mut plan = ServerFailurePlan::new();
    plan.add(f.servers[0], t(10.0), t(30.0));
    d.apply_server_failures(&plan);

    // Sends straddle the outage: before (settled), during (failover),
    // and just after recovery (catch-up traffic).
    for i in 0..names.len() {
        d.send_at(
            t(5.0 + 2.0 * i as f64),
            &names[i],
            &names[(i + 3) % names.len()],
        );
    }
    // Checks during the outage see timeouts and secondaries...
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(15.0 + i as f64), n);
    }
    // ...and checks after recovery drain whatever failed over.
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(60.0 + i as f64), n);
        d.check_at(t(120.0 + i as f64), n);
    }
    finish(
        "failover",
        "Fig. 1 primary server down in [10, 30): failover, recovery, drain",
        seed,
        d,
        true,
    )
}

/// Random exponential outages across all three Fig. 1 servers (MTBF 120,
/// MTTR 15 over a 600-unit horizon) under a spread-out send/check load,
/// with drain sweeps scheduled after the last outage heals.
pub fn random_failures(seed: u64) -> ScenarioOutcome {
    let f = fig1();
    let mut d = fig1_deployment(seed);
    let names = d.user_names();

    let mut rng = lems_sim::rng::SimRng::seed(seed).fork("check-failures");
    let plan = ServerFailurePlan::random(
        &mut rng,
        &f.servers,
        SimDuration::from_units(120.0),
        SimDuration::from_units(15.0),
        t(600.0),
    );
    let last_up = plan
        .outages
        .values()
        .flatten()
        .map(|&(_, up)| up)
        .max()
        .unwrap_or(t(600.0));
    d.apply_server_failures(&plan);

    for i in 0..names.len() {
        for k in 0..8u64 {
            d.send_at(
                t(3.0 + 70.0 * k as f64 + 5.0 * i as f64),
                &names[i],
                &names[(i + 1 + k as usize) % names.len()],
            );
        }
        d.check_at(t(200.0 + i as f64), &names[i]);
        d.check_at(t(400.0 + i as f64), &names[i]);
    }
    // Drain sweeps strictly after every server is back up.
    for (i, n) in names.iter().enumerate() {
        d.check_at(last_up + SimDuration::from_units(50.0 + i as f64), n);
        d.check_at(last_up + SimDuration::from_units(150.0 + i as f64), n);
    }
    finish(
        "random-failures",
        "Fig. 1 with random server outages (MTBF 120, MTTR 15): load + drain",
        seed,
        d,
        true,
    )
}

/// A lossy, jittery wire under steady load: every link drops 8% of
/// traffic and duplicates 2% with up to one unit of jitter until t=300,
/// after which the network heals and users drain their mailboxes. The
/// session layer (timeout/retransmit/backoff + ack'd retrieval) must
/// deliver everything despite the loss.
///
/// # Panics
///
/// Panics if the scenario's literal fault parameters are invalid or
/// name unbound Fig. 1 nodes — a typo in the scenario definition must
/// abort the checker loudly, not audit a half-built deployment.
pub fn chaos_lossy(seed: u64) -> ScenarioOutcome {
    let mut d = fig1_deployment(seed);
    let names = d.user_names();
    let chaos = LinkChaos::new(
        LinkProfile::new(0.08, 0.02, SimDuration::from_units(1.0))
            .expect("probabilities are in range"),
        t(300.0),
    );
    d.apply_link_chaos(&chaos).expect("fig1 nodes are bound");

    for i in 0..names.len() {
        for k in 0..4u64 {
            d.send_at(
                t(2.0 + 60.0 * k as f64 + 3.0 * i as f64),
                &names[i],
                &names[(i + 1 + k as usize) % names.len()],
            );
        }
    }
    // Checks run after the stochastic horizon so the drain itself is
    // clean; two sweeps catch mail parked in drain buffers.
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(350.0 + i as f64), n);
        d.check_at(t(450.0 + i as f64), n);
    }
    finish(
        "chaos-lossy",
        "Fig. 1 with 8% loss, 2% duplication, jitter until t=300: load + drain",
        seed,
        d,
        true,
    )
}

/// The acceptance gauntlet: ≥5% probabilistic loss with jitter on every
/// link *plus* a flapping partition that repeatedly isolates the first
/// server (windows [40,70) and [120,150)). Mail submitted into the
/// partition must fail over to secondaries; nothing may be lost or
/// stranded once the network heals and users drain.
pub fn chaos_partition(seed: u64) -> ScenarioOutcome {
    let d = chaos_partition_deployment(seed, SessionConfig::default());
    finish(
        "chaos-partition",
        "Fig. 1 with 5% loss + jitter and a flapping partition of server 0",
        seed,
        d,
        true,
    )
}

/// Builds the `chaos-partition` workload without running it — shared by
/// the audited scenario and the session-off counterexample test.
///
/// # Panics
///
/// Panics if the scenario's literal fault parameters are invalid or
/// name unbound Fig. 1 nodes (a typo in the scenario definition).
fn chaos_partition_deployment(seed: u64, session: SessionConfig) -> Deployment {
    let f = fig1();
    let mut d = fig1_deployment_with_session(seed, session);
    let names = d.user_names();

    let isolated = vec![f.servers[0]];
    let mut others: Vec<_> = f.hosts.clone();
    others.extend(f.servers.iter().skip(1).copied());
    let chaos = LinkChaos::new(
        LinkProfile::new(0.05, 0.01, SimDuration::from_units(1.0))
            .expect("probabilities are in range"),
        t(300.0),
    )
    .partition(isolated.clone(), others.clone(), t(40.0), t(70.0))
    .partition(isolated, others, t(120.0), t(150.0));
    d.apply_link_chaos(&chaos).expect("fig1 nodes are bound");

    // Sends land before, inside, and between the partition windows.
    for i in 0..names.len() {
        for k in 0..3u64 {
            d.send_at(
                t(10.0 + 50.0 * k as f64 + 2.0 * i as f64),
                &names[i],
                &names[(i + 5 + k as usize) % names.len()],
            );
        }
    }
    // Check waves while the wire is still lossy (the ack'd-retrieval
    // path earns its keep here), then clean drain sweeps after the
    // horizon.
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(200.0 + i as f64), n);
        d.check_at(t(240.0 + i as f64), n);
        d.check_at(t(350.0 + i as f64), n);
        d.check_at(t(450.0 + i as f64), n);
    }
    d
}

/// Compound failure: a crashed server in `[50, 90)` *while* every link
/// drops 5% of traffic with jitter. Exercises the interaction between
/// actor-level drops (down server) and link-level loss — both consume
/// sends in the trace, and the ledgers must still balance.
///
/// # Panics
///
/// Panics if the scenario's literal fault parameters are invalid or
/// name unbound Fig. 1 nodes (a typo in the scenario definition).
pub fn chaos_crash_loss(seed: u64) -> ScenarioOutcome {
    let f = fig1();
    let mut d = fig1_deployment(seed);
    let names = d.user_names();

    let chaos = LinkChaos::new(
        LinkProfile::new(0.05, 0.0, SimDuration::from_units(0.5))
            .expect("probabilities are in range"),
        t(300.0),
    );
    d.apply_link_chaos(&chaos).expect("fig1 nodes are bound");
    let mut plan = ServerFailurePlan::new();
    plan.add(f.servers[1], t(50.0), t(90.0));
    d.apply_server_failures(&plan);

    for i in 0..names.len() {
        for k in 0..3u64 {
            d.send_at(
                t(5.0 + 40.0 * k as f64 + 3.0 * i as f64),
                &names[i],
                &names[(i + 2 + k as usize) % names.len()],
            );
        }
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(350.0 + i as f64), n);
        d.check_at(t(450.0 + i as f64), n);
    }
    finish(
        "chaos-crash-loss",
        "Fig. 1 with a server crash in [50, 90) under 5% link loss + jitter",
        seed,
        d,
        true,
    )
}

/// Builds a Fig. 1 deployment whose servers persist through `durability`,
/// with tracing and spans enabled.
fn fig1_deployment_durable(seed: u64, durability: DurabilityConfig) -> Deployment {
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            durability,
            ..DeploymentConfig::default()
        },
    );
    d.sim.enable_trace(usize::MAX);
    d.enable_spans();
    d.sim.enable_prof();
    d
}

/// The WAL configuration the durability scenarios run with: small
/// segments so rotation and chunked compaction actually happen inside a
/// short audited run, plus an optional torn tail at crash time.
fn scenario_wal(torn_tail_bytes: usize) -> WalConfig {
    WalConfig {
        segment_bytes: 8 * 1024,
        chunk_messages: 8,
        max_segments: 3,
        torn_tail_bytes,
        ..WalConfig::default()
    }
}

/// Post-audit durability gate: the scenario must have actually recovered
/// at least one server, and no recovery may report destroyed mail — an
/// acked deposit that did not survive its crash is exactly the loss the
/// WAL exists to prevent.
fn expect_durable(mut o: ScenarioOutcome) -> ScenarioOutcome {
    if o.recoveries.is_empty() {
        o.domain.push(AuditViolation::Domain(
            "durability scenario recorded no store recovery — nothing crashed, \
             so the scenario proves nothing"
                .to_owned(),
        ));
    }
    for r in &o.recoveries {
        if r.lost_messages > 0 {
            o.domain.push(AuditViolation::Domain(format!(
                "store recovery at {} on n{} lost {} acked message(s) \
                 (backend {})",
                r.at, r.site, r.lost_messages, r.backend
            )));
        }
    }
    o
}

/// Crash-mid-deposit under the WAL backend: the first Fig. 1 server goes
/// down in `[10, 30)` while mail is in flight, its WAL replays on
/// recovery, and every acked deposit must still reach its recipient —
/// proven by the same span-conservation audit the volatile scenarios use.
pub fn durable_crash(seed: u64) -> ScenarioOutcome {
    let f = fig1();
    let mut d = fig1_deployment_durable(seed, DurabilityConfig::Wal(scenario_wal(0)));
    let names = d.user_names();
    let mut plan = ServerFailurePlan::new();
    plan.add(f.servers[0], t(10.0), t(30.0));
    d.apply_server_failures(&plan);
    for i in 0..names.len() {
        d.send_at(
            t(5.0 + 2.0 * i as f64),
            &names[i],
            &names[(i + 3) % names.len()],
        );
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(60.0 + i as f64), n);
        d.check_at(t(120.0 + i as f64), n);
    }
    expect_durable(finish(
        "durable-crash",
        "WAL-backed Fig. 1, server 0 crashes in [10, 30) mid-deposit: replay, drain",
        seed,
        d,
        true,
    ))
}

/// As `durable-crash`, but the crash additionally leaves a torn write —
/// garbage bytes past the durable boundary of the newest WAL segment.
/// Recovery must truncate the torn tail and still lose nothing.
pub fn durable_torn_tail(seed: u64) -> ScenarioOutcome {
    let f = fig1();
    let mut d = fig1_deployment_durable(seed, DurabilityConfig::Wal(scenario_wal(13)));
    let names = d.user_names();
    let mut plan = ServerFailurePlan::new();
    plan.add(f.servers[0], t(10.0), t(30.0));
    d.apply_server_failures(&plan);
    for i in 0..names.len() {
        d.send_at(
            t(5.0 + 2.0 * i as f64),
            &names[i],
            &names[(i + 3) % names.len()],
        );
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(60.0 + i as f64), n);
        d.check_at(t(120.0 + i as f64), n);
    }
    expect_durable(finish(
        "durable-torn-tail",
        "WAL-backed Fig. 1, crash in [10, 30) leaves a torn segment tail: truncate, replay, drain",
        seed,
        d,
        true,
    ))
}

/// Recover-then-re-crash: the same WAL-backed server goes down twice
/// (`[10, 25)` and `[45, 60)`), so the second recovery replays a log that
/// already contains one recovery's worth of re-routing. Nothing may be
/// lost across either cycle.
pub fn durable_recrash(seed: u64) -> ScenarioOutcome {
    let f = fig1();
    let mut d = fig1_deployment_durable(seed, DurabilityConfig::Wal(scenario_wal(13)));
    let names = d.user_names();
    let mut plan = ServerFailurePlan::new();
    plan.add(f.servers[0], t(10.0), t(25.0));
    plan.add(f.servers[0], t(45.0), t(60.0));
    d.apply_server_failures(&plan);
    for i in 0..names.len() {
        d.send_at(
            t(5.0 + 4.0 * i as f64),
            &names[i],
            &names[(i + 3) % names.len()],
        );
        d.send_at(
            t(40.0 + 2.0 * i as f64),
            &names[i],
            &names[(i + 7) % names.len()],
        );
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(90.0 + i as f64), n);
        d.check_at(t(150.0 + i as f64), n);
    }
    expect_durable(finish(
        "durable-recrash",
        "WAL-backed Fig. 1, server 0 crashes twice ([10, 25) and [45, 60)): recover, re-crash, drain",
        seed,
        d,
        true,
    ))
}

/// The durability scenarios only (the `--durability` CLI selector).
pub fn run_durability(seed: u64) -> Vec<ScenarioOutcome> {
    vec![
        durable_crash(seed),
        durable_torn_tail(seed),
        durable_recrash(seed),
    ]
}

/// The chaos scenarios only (the `--chaos` CLI selector).
pub fn run_chaos(seed: u64) -> Vec<ScenarioOutcome> {
    vec![
        chaos_lossy(seed),
        chaos_partition(seed),
        chaos_crash_loss(seed),
    ]
}

/// Runs every scenario with `seed`.
pub fn run_all(seed: u64) -> Vec<ScenarioOutcome> {
    vec![
        steady_exchange(seed),
        primary_outage_failover(seed),
        random_failures(seed),
        chaos_lossy(seed),
        chaos_partition(seed),
        chaos_crash_loss(seed),
        durable_crash(seed),
        durable_torn_tail(seed),
        durable_recrash(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_scenario_is_clean_and_nontrivial() {
        let o = steady_exchange(3);
        assert!(o.is_clean(), "{:?}", o.violation_lines());
        assert!(o.submitted >= 12 && o.retrieved == o.submitted - o.bounced);
        assert!(o.trace.sends > 0 && o.trace.crashes == 0);
    }

    #[test]
    fn failover_scenario_exercises_crash_paths_and_stays_clean() {
        let o = primary_outage_failover(3);
        assert!(o.is_clean(), "{:?}", o.violation_lines());
        assert_eq!(o.trace.crashes, 1);
        assert_eq!(o.trace.recoveries, 1);
        assert!(o.trace.drops > 0, "outage should drop in-flight messages");
    }

    #[test]
    fn random_failure_scenario_is_clean_across_seeds() {
        for seed in [1, 2] {
            let o = random_failures(seed);
            assert!(o.is_clean(), "seed {seed}: {:?}", o.violation_lines());
        }
    }

    #[test]
    fn chaos_lossy_scenario_is_clean_and_actually_lossy() {
        let o = chaos_lossy(3);
        assert!(o.is_clean(), "{:?}", o.violation_lines());
        assert!(o.trace.link_drops > 0, "8% loss must drop something");
        assert!(o.retransmits > 0, "loss must force retransmissions");
        assert_eq!(o.retrieved + o.bounced, o.submitted);
        assert_eq!(o.wiring_errors, 0);
    }

    /// The acceptance criterion: ≥5% loss + jitter + a flapping partition
    /// completes with zero lost mail under the session layer...
    #[test]
    fn chaos_partition_scenario_loses_nothing() {
        let o = chaos_partition(7);
        assert!(o.is_clean(), "{:?}", o.violation_lines());
        assert!(o.trace.link_drops > 0, "the partition must cut traffic");
        assert_eq!(o.retrieved + o.bounced, o.submitted, "zero lost mail");
        assert_eq!(o.bounced, 0, "failover should beat the retry budget");
    }

    /// ...and the same gauntlet with the session layer disabled
    /// demonstrably loses mail — the robustness is load-bearing, not luck.
    #[test]
    fn chaos_partition_without_session_layer_loses_mail() {
        let mut d = chaos_partition_deployment(7, SessionConfig::legacy());
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let stats = d.stats.borrow();
        let accounted = stats.retrieved + stats.bounced + d.mail_in_storage() as u64;
        assert!(
            accounted < stats.submitted,
            "expected lost mail without retries: submitted {} accounted {}",
            stats.submitted,
            accounted
        );
    }

    /// Every scenario now carries the third evidence stream: a clean span
    /// conservation report whose terminal counts agree with the ledgers,
    /// plus per-actor metric registries ready for export.
    #[test]
    fn scenarios_carry_span_and_metric_evidence() {
        let o = steady_exchange(3);
        assert!(o.span_report.is_clean(), "{:?}", o.span_report.violations);
        assert_eq!(o.span_report.retrieved, o.retrieved);
        assert_eq!(o.span_report.bounced, o.bounced);
        assert_eq!(o.span_report.retransmits, o.retransmits);
        assert!(o.spans.spans_opened() > 0, "spans must be recorded");
        assert_eq!(o.spans.dropped_events(), 0, "span log must be lossless");
        assert!(!o.scopes.is_empty(), "metric scopes must be captured");
        assert_eq!(o.seed, 3);
        assert!(o.finished_at > t(0.0));
        // The kernel profiler ran: dispatch cells for both actor kinds.
        for cell in ["server/deliver", "host/deliver"] {
            assert!(
                o.profile
                    .iter()
                    .any(|s| s.scope == "dispatch" && s.name == cell && s.count > 0),
                "missing dispatch cell {cell}"
            );
        }
        assert!(
            o.store.is_empty(),
            "volatile deployment must export no store metrics"
        );
    }

    /// Durable scenarios additionally export WAL health: appends, fsyncs,
    /// and the recovery scan work of the crash they survived.
    #[test]
    fn durable_scenarios_carry_store_metrics() {
        let o = durable_crash(3);
        assert!(o.is_clean(), "{:?}", o.violation_lines());
        assert!(!o.store.is_empty(), "WAL servers must export store metrics");
        for (scope, m) in &o.store {
            assert!(scope.starts_with("server:n"), "scope {scope}");
            assert!(m.appended_records > 0 && m.fsyncs > 0, "{scope}: {m:?}");
        }
        let crashed: Vec<_> = o
            .store
            .iter()
            .filter(|(_, m)| m.replayed_records > 0)
            .collect();
        assert!(
            !crashed.is_empty(),
            "the crashed server's recovery scan must be visible"
        );
    }

    #[test]
    fn chaos_crash_loss_scenario_is_clean() {
        let o = chaos_crash_loss(3);
        assert!(o.is_clean(), "{:?}", o.violation_lines());
        assert_eq!(o.trace.crashes, 1);
        assert!(o.trace.drops > 0, "the downed server must drop sends");
        assert!(o.trace.link_drops > 0, "the lossy wire must drop sends");
    }
}
