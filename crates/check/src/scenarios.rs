//! Reproducible audit scenarios.
//!
//! Each scenario builds a System-1 deployment with full tracing enabled
//! (`Trace::unbounded` semantics via [`ActorSim::enable_trace`]), drives
//! a deterministic workload, runs to quiescence, and then applies both
//! audit layers: the stream-level conservation laws of
//! [`audit_trace`](crate::audit::audit_trace) and the domain-level
//! ledger checks of [`audit_deployment`](crate::audit::audit_deployment).
//!
//! The scenarios are seeds-in, verdict-out: replaying one with the same
//! seed reproduces the identical event stream, which is what makes a
//! reported violation actionable.

use lems_net::generators::fig1;
use lems_sim::time::{SimDuration, SimTime};
use lems_syntax::actors::{Deployment, DeploymentConfig, ServerFailurePlan};

use crate::audit::{audit_deployment, audit_trace, AuditReport, AuditViolation};

/// The verdict for one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Stable scenario name (CLI selector).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Stream-level conservation report.
    pub trace: AuditReport,
    /// Domain-level ledger violations.
    pub domain: Vec<AuditViolation>,
    /// Messages submitted over the run.
    pub submitted: u64,
    /// Messages retrieved by their recipients.
    pub retrieved: u64,
    /// Messages bounced.
    pub bounced: u64,
}

impl ScenarioOutcome {
    /// True when both audit layers found nothing.
    pub fn is_clean(&self) -> bool {
        self.trace.is_clean() && self.domain.is_empty()
    }

    /// Every violation from both layers, rendered.
    pub fn violation_lines(&self) -> Vec<String> {
        self.trace
            .violations
            .iter()
            .chain(&self.domain)
            .map(|v| v.to_string())
            .collect()
    }
}

fn t(u: f64) -> SimTime {
    SimTime::from_units(u)
}

fn fig1_deployment(seed: u64) -> Deployment {
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    );
    // Unbounded so the auditor sees the complete history; must happen
    // before the first injection or the stream starts mid-story.
    d.sim.enable_trace(usize::MAX);
    d
}

fn finish(
    name: &'static str,
    description: &'static str,
    mut d: Deployment,
    expect_drained: bool,
) -> ScenarioOutcome {
    d.sim.run_to_quiescence();
    let trace = audit_trace(d.sim.trace());
    let domain = audit_deployment(&d, expect_drained);
    let stats = d.stats.borrow();
    ScenarioOutcome {
        name,
        description,
        trace,
        domain,
        submitted: stats.submitted,
        retrieved: stats.retrieved,
        bounced: stats.bounced,
    }
}

/// Steady-state exchange on the Fig. 1 topology: no failures, every user
/// mails a distant peer, everyone checks mail afterwards. The baseline —
/// if this reports a violation, the engine itself is miswired.
pub fn steady_exchange(seed: u64) -> ScenarioOutcome {
    let mut d = fig1_deployment(seed);
    let names = d.user_names();
    for i in 0..names.len() {
        d.send_at(t(1.0 + i as f64), &names[i], &names[(i + 5) % names.len()]);
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(100.0 + i as f64), n);
    }
    finish(
        "steady",
        "Fig. 1 topology, no failures: ring of sends, then everyone checks",
        d,
        true,
    )
}

/// The actor-level analogue of `examples/failure_drill.rs`: the first
/// Fig. 1 server is down in `[10, 30)`, mail submitted during the outage
/// fails over to secondaries, users check both during the outage and
/// after recovery, and drain sweeps run once everything is healed.
/// Exercises crash/recover tracing, message drops on the downed server,
/// the §3.1.2c `LastStartTime` walk, and the store-and-forward recovery
/// path — nothing may be lost or stranded.
pub fn primary_outage_failover(seed: u64) -> ScenarioOutcome {
    let f = fig1();
    let mut d = fig1_deployment(seed);
    let names = d.user_names();

    let mut plan = ServerFailurePlan::new();
    plan.add(f.servers[0], t(10.0), t(30.0));
    d.apply_server_failures(&plan);

    // Sends straddle the outage: before (settled), during (failover),
    // and just after recovery (catch-up traffic).
    for i in 0..names.len() {
        d.send_at(
            t(5.0 + 2.0 * i as f64),
            &names[i],
            &names[(i + 3) % names.len()],
        );
    }
    // Checks during the outage see timeouts and secondaries...
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(15.0 + i as f64), n);
    }
    // ...and checks after recovery drain whatever failed over.
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(60.0 + i as f64), n);
        d.check_at(t(120.0 + i as f64), n);
    }
    finish(
        "failover",
        "Fig. 1 primary server down in [10, 30): failover, recovery, drain",
        d,
        true,
    )
}

/// Random exponential outages across all three Fig. 1 servers (MTBF 120,
/// MTTR 15 over a 600-unit horizon) under a spread-out send/check load,
/// with drain sweeps scheduled after the last outage heals.
pub fn random_failures(seed: u64) -> ScenarioOutcome {
    let f = fig1();
    let mut d = fig1_deployment(seed);
    let names = d.user_names();

    let mut rng = lems_sim::rng::SimRng::seed(seed).fork("check-failures");
    let plan = ServerFailurePlan::random(
        &mut rng,
        &f.servers,
        SimDuration::from_units(120.0),
        SimDuration::from_units(15.0),
        t(600.0),
    );
    let last_up = plan
        .outages
        .values()
        .flatten()
        .map(|&(_, up)| up)
        .max()
        .unwrap_or(t(600.0));
    d.apply_server_failures(&plan);

    for i in 0..names.len() {
        for k in 0..8u64 {
            d.send_at(
                t(3.0 + 70.0 * k as f64 + 5.0 * i as f64),
                &names[i],
                &names[(i + 1 + k as usize) % names.len()],
            );
        }
        d.check_at(t(200.0 + i as f64), &names[i]);
        d.check_at(t(400.0 + i as f64), &names[i]);
    }
    // Drain sweeps strictly after every server is back up.
    for (i, n) in names.iter().enumerate() {
        d.check_at(last_up + SimDuration::from_units(50.0 + i as f64), n);
        d.check_at(last_up + SimDuration::from_units(150.0 + i as f64), n);
    }
    finish(
        "random-failures",
        "Fig. 1 with random server outages (MTBF 120, MTTR 15): load + drain",
        d,
        true,
    )
}

/// Runs every scenario with `seed`.
pub fn run_all(seed: u64) -> Vec<ScenarioOutcome> {
    vec![
        steady_exchange(seed),
        primary_outage_failover(seed),
        random_failures(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_scenario_is_clean_and_nontrivial() {
        let o = steady_exchange(3);
        assert!(o.is_clean(), "{:?}", o.violation_lines());
        assert!(o.submitted >= 12 && o.retrieved == o.submitted - o.bounced);
        assert!(o.trace.sends > 0 && o.trace.crashes == 0);
    }

    #[test]
    fn failover_scenario_exercises_crash_paths_and_stays_clean() {
        let o = primary_outage_failover(3);
        assert!(o.is_clean(), "{:?}", o.violation_lines());
        assert_eq!(o.trace.crashes, 1);
        assert_eq!(o.trace.recoveries, 1);
        assert!(o.trace.drops > 0, "outage should drop in-flight messages");
    }

    #[test]
    fn random_failure_scenario_is_clean_across_seeds() {
        for seed in [1, 2] {
            let o = random_failures(seed);
            assert!(o.is_clean(), "seed {seed}: {:?}", o.violation_lines());
        }
    }
}
