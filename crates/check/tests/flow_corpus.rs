//! Corpus tests for the flow-analysis layers: the expression parser and
//! CFG builder must be total over every `.rs` file in this repository —
//! no panics, and every fn body's CFG must reach its exit (or contain an
//! explicitly diverging node, e.g. a `loop` without `break`). The lexer
//! and item parser already run everywhere via the lint pass; these tests
//! pin the same bar for the layers above them.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use lems_check::flow;
use lems_check::items::ParsedFile;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            // `target/` holds generated artifacts, not source.
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files_under(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Every source file in the workspace proper: crates/, the root test
/// suite, and benches/examples if any appear later.
fn workspace_sources() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = Vec::new();
    rs_files_under(&root.join("crates"), &mut files);
    rs_files_under(&root.join("tests"), &mut files);
    assert!(
        files.len() > 50,
        "corpus unexpectedly small: {}",
        files.len()
    );
    files
}

#[test]
fn expr_and_cfg_are_total_over_the_workspace() {
    let fields = BTreeMap::new();
    let storeio = BTreeSet::new();
    let mut fns = 0usize;
    for path in workspace_sources() {
        let src =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let pf = ParsedFile::parse(&src);
        for u in flow::fn_units(0, &pf, &fields, &storeio) {
            fns += 1;
            assert!(
                u.cfg.node_count() >= 2,
                "{}: fn `{}` built a CFG without entry/exit",
                path.display(),
                u.name
            );
            assert!(
                u.cfg.entry_reaches_exit_or_diverge(),
                "{}: fn `{}` has a CFG whose entry reaches neither exit nor \
                 a diverging node — the builder dropped an edge",
                path.display(),
                u.name
            );
        }
    }
    assert!(fns > 500, "corpus parsed suspiciously few fns: {fns}");
}

#[test]
fn vendored_sources_parse_without_panicking() {
    // The vendor tree is other people's Rust (proc-macro code, odd
    // idioms): the parser must stay total there too, though we make no
    // reachability claims about code we don't own.
    let mut files = Vec::new();
    rs_files_under(&repo_root().join("vendor"), &mut files);
    assert!(!files.is_empty(), "vendor tree missing?");
    let fields = BTreeMap::new();
    let storeio = BTreeSet::new();
    for path in files {
        let src =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let pf = ParsedFile::parse(&src);
        let _ = flow::fn_units(0, &pf, &fields, &storeio);
    }
}
