//! Golden-schema test for the committed `GOLDEN_lint.json` document at
//! the repository root (the `bench_schema.rs` pattern): the file must
//! deserialize into the current [`lems_check::report`] types, carry the
//! current schema version, engine id, and rule-version table, and
//! survive a serde round trip — so the lint emitter and the committed
//! golden report (which CI's differential job diffs against) can never
//! silently drift apart.

use std::fs;
use std::path::PathBuf;

use lems_check::lint::rule_versions;
use lems_check::report::{LintDoc, LINT_SCHEMA_VERSION};

fn golden() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../GOLDEN_lint.json");
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn committed_golden_lint_matches_schema() {
    let doc: LintDoc = serde_json::from_str(&golden())
        .expect("GOLDEN_lint.json must deserialize into report::LintDoc");
    assert_eq!(doc.schema_version, LINT_SCHEMA_VERSION);
    assert_eq!(doc.engine, "lint-v3");
    assert!(doc.files_scanned > 50);
    // Generated with --no-allow --no-timing: the document vets raw
    // findings byte-stably, independent of allowlist or machine speed.
    assert_eq!(doc.allow_entries, 0);
    assert!(
        doc.timing.is_none(),
        "golden must be regenerated with --no-timing"
    );
    assert!(doc.stale_allows.is_empty());

    // The rule-version table in the golden must match the binary's: a
    // version bump without a regenerated golden is exactly the drift
    // this test exists to catch.
    assert_eq!(doc.rule_versions.len(), rule_versions().len());
    for &(rule, version) in rule_versions() {
        assert_eq!(
            doc.rule_versions.get(rule),
            Some(&version),
            "golden pins {rule} at a different version"
        );
    }

    // Every committed finding names a workspace-relative path and a
    // real rule.
    let known: Vec<&str> = rule_versions().iter().map(|&(r, _)| r).collect();
    for f in &doc.findings {
        assert!(f.path.starts_with("crates/"), "{}", f.path);
        assert!(f.line > 0);
        assert!(known.contains(&f.rule.as_str()), "unknown rule {}", f.rule);
    }
}

#[test]
fn golden_lint_round_trips() {
    let doc: LintDoc = serde_json::from_str(&golden()).expect("deserialize");
    let again = doc.render_json();
    let back: LintDoc = serde_json::from_str(&again).expect("round trip");
    assert_eq!(back.schema_version, doc.schema_version);
    assert_eq!(back.findings.len(), doc.findings.len());
    assert_eq!(back.rule_versions, doc.rule_versions);
}
