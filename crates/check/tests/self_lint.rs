//! Self-application smoke: the checker's own sources must pass every
//! lint rule with NO allowlist entries — the analysis engine cannot
//! demand a discipline it does not itself meet. (The workspace-wide
//! pass with the real allowlist is asserted by CI; this test is
//! narrower and allowlist-free, so it can never be waived.)

use std::fs;
use std::path::PathBuf;

use lems_check::lint::scan_source;

fn check_sources() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut out = Vec::new();
    let mut names: Vec<_> = fs::read_dir(&dir)
        .expect("read crates/check/src")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    for path in names {
        let rel = format!(
            "crates/check/src/{}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?")
        );
        let src = fs::read_to_string(&path).expect("read source");
        out.push((rel, src));
    }
    out
}

#[test]
fn the_checker_lints_itself_clean() {
    let sources = check_sources();
    assert!(sources.len() >= 8, "expected the full check crate");
    let mut dirty = Vec::new();
    for (rel, src) in &sources {
        for v in scan_source(rel, src) {
            dirty.push(format!("{v}"));
        }
    }
    assert!(
        dirty.is_empty(),
        "the checker flagged its own sources:\n{}",
        dirty.join("\n")
    );
}
