//! The partitioned, partially replicated name database.
//!
//! §2: "the name space is partitioned into some easily manageable subspaces
//! … and distributed among servers so that no server needs the complete
//! knowledge of all names"; each server "only contains a subset of the user
//! names" and requests it cannot resolve locally are passed toward a server
//! "that has complete information about the user and has a mailbox for
//! him" — the user's *authority server*.
//!
//! A [`Directory`] is the global registry a deployment is configured from;
//! [`ServerView`] is the subset one server actually holds (its own users
//! plus the region routing table), which is what resolution procedures in
//! `lems-syntax` / `lems-locindep` consult.

use std::collections::{BTreeMap, HashMap};

use lems_net::graph::NodeId;
use lems_net::topology::RegionId;
use serde::{Deserialize, Serialize};

use crate::name::MailName;
use crate::user::{AuthorityList, UserId, UserRecord};

/// Error from directory operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DirectoryError {
    /// A record with the same name is already registered.
    DuplicateName(MailName),
    /// No record for the given name.
    UnknownName(MailName),
    /// No record for the given id.
    UnknownUser(UserId),
}

impl std::fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryError::DuplicateName(n) => write!(f, "duplicate name {n}"),
            DirectoryError::UnknownName(n) => write!(f, "unknown name {n}"),
            DirectoryError::UnknownUser(u) => write!(f, "unknown user {u}"),
        }
    }
}

impl std::error::Error for DirectoryError {}

/// The global user registry of one deployment.
///
/// This is configuration state (who exists, where, with which authority
/// servers), not something any single simulated server holds in full.
///
/// # Examples
///
/// ```
/// use lems_core::directory::Directory;
/// use lems_core::user::AuthorityList;
/// use lems_net::graph::NodeId;
/// use lems_net::topology::RegionId;
///
/// let mut dir = Directory::new();
/// dir.map_region("east", RegionId(0));
/// let alice = dir.register(
///     "east.vax1.alice".parse()?,
///     NodeId(4),
///     AuthorityList::new(vec![NodeId(0), NodeId(1)]),
/// )?;
/// let rec = dir.by_name(&"east.vax1.alice".parse()?).unwrap();
/// assert_eq!(rec.id, alice);
/// assert_eq!(dir.region_of_name("east"), Some(RegionId(0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Directory {
    users: Vec<UserRecord>,
    by_name: BTreeMap<MailName, UserId>,
    region_names: HashMap<String, RegionId>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Declares that the region token `name` denotes `region`.
    pub fn map_region(&mut self, name: &str, region: RegionId) {
        self.region_names.insert(name.to_owned(), region);
    }

    /// Resolves a region token to its id.
    pub fn region_of_name(&self, name: &str) -> Option<RegionId> {
        self.region_names.get(name).copied()
    }

    /// Registers a new user; returns the assigned id.
    ///
    /// # Errors
    ///
    /// Returns [`DirectoryError::DuplicateName`] if the name is taken.
    pub fn register(
        &mut self,
        name: MailName,
        home_host: NodeId,
        authorities: AuthorityList,
    ) -> Result<UserId, DirectoryError> {
        if self.by_name.contains_key(&name) {
            return Err(DirectoryError::DuplicateName(name));
        }
        let id = UserId(self.users.len());
        self.by_name.insert(name.clone(), id);
        self.users
            .push(UserRecord::new(id, name, home_host, authorities));
        Ok(id)
    }

    /// Removes a user by name, returning the record.
    ///
    /// The dense id of the removed user is retired, not reused; lookups by
    /// the stale id return `None` afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`DirectoryError::UnknownName`] if absent.
    pub fn unregister(&mut self, name: &MailName) -> Result<UserRecord, DirectoryError> {
        let id = self
            .by_name
            .remove(name)
            .ok_or_else(|| DirectoryError::UnknownName(name.clone()))?;
        // Tombstone: replace the record's name with an impossible sentinel
        // by keeping the slot but dropping the index entry. Cloning out the
        // record keeps ids stable for everyone else.
        Ok(self.users[id.0].clone())
    }

    /// Looks a user up by name.
    pub fn by_name(&self, name: &MailName) -> Option<&UserRecord> {
        self.by_name.get(name).map(|&id| &self.users[id.0])
    }

    /// Looks a user up by id (stale ids of unregistered users still resolve
    /// to their last record; use [`Directory::is_registered`] to check
    /// liveness).
    pub fn by_id(&self, id: UserId) -> Option<&UserRecord> {
        self.users.get(id.0)
    }

    /// Mutable access to a user's record by id.
    pub fn by_id_mut(&mut self, id: UserId) -> Option<&mut UserRecord> {
        self.users.get_mut(id.0)
    }

    /// True if the name currently resolves.
    pub fn is_registered(&self, name: &MailName) -> bool {
        self.by_name.contains_key(name)
    }

    /// Number of registered (non-removed) users.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when no users are registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Iterates registered records in name order.
    pub fn iter(&self) -> impl Iterator<Item = &UserRecord> {
        self.by_name.values().map(|&id| &self.users[id.0])
    }

    /// All registered users whose authority list contains `server` — the
    /// population that must be reassigned when `server` is deleted
    /// (§3.1.3c).
    pub fn users_of_server(&self, server: NodeId) -> Vec<UserId> {
        self.iter()
            .filter(|r| r.authorities.contains(server))
            .map(|r| r.id)
            .collect()
    }

    /// All registered users homed on `host` — the population affected when
    /// `host` is removed (§3.1.3b).
    pub fn users_of_host(&self, host: NodeId) -> Vec<UserId> {
        self.iter()
            .filter(|r| r.home_host == host)
            .map(|r| r.id)
            .collect()
    }

    /// Builds the per-server views: each server receives the records of
    /// users whose authority list includes it ("the databases are partially
    /// replicated to increase the availability and the reliability", §2).
    pub fn partition(&self, servers: &[NodeId]) -> HashMap<NodeId, ServerView> {
        let mut views: HashMap<NodeId, ServerView> = servers
            .iter()
            .map(|&s| {
                (
                    s,
                    ServerView {
                        server: s,
                        records: BTreeMap::new(),
                        region_names: self.region_names.clone(),
                    },
                )
            })
            .collect();
        for rec in self.iter() {
            for &s in rec.authorities.servers() {
                if let Some(view) = views.get_mut(&s) {
                    view.records.insert(rec.name.clone(), rec.clone());
                }
            }
        }
        views
    }
}

/// The slice of the name database one server holds: records for users it
/// is an authority for, plus the region routing knowledge every server
/// replicates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerView {
    server: NodeId,
    records: BTreeMap<MailName, UserRecord>,
    region_names: HashMap<String, RegionId>,
}

impl ServerView {
    /// The server this view belongs to.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// Resolves a name this server is authoritative for.
    pub fn lookup(&self, name: &MailName) -> Option<&UserRecord> {
        self.records.get(name)
    }

    /// True if this server is an authority for `name`.
    pub fn is_authority_for(&self, name: &MailName) -> bool {
        self.records.contains_key(name)
    }

    /// Region token resolution (fully replicated on every server).
    pub fn region_of_name(&self, name: &str) -> Option<RegionId> {
        self.region_names.get(name).copied()
    }

    /// Number of records held.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Adds/updates a record (reconfiguration push).
    pub fn upsert(&mut self, record: UserRecord) {
        self.records.insert(record.name.clone(), record);
    }

    /// Drops a record (user deleted or reassigned away).
    pub fn remove(&mut self, name: &MailName) -> Option<UserRecord> {
        self.records.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir_with_users() -> Directory {
        let mut d = Directory::new();
        d.map_region("east", RegionId(0));
        d.map_region("west", RegionId(1));
        d.register(
            "east.h1.alice".parse().unwrap(),
            NodeId(10),
            AuthorityList::new(vec![NodeId(0), NodeId(1)]),
        )
        .unwrap();
        d.register(
            "east.h1.bob".parse().unwrap(),
            NodeId(10),
            AuthorityList::new(vec![NodeId(1)]),
        )
        .unwrap();
        d.register(
            "west.h2.carol".parse().unwrap(),
            NodeId(11),
            AuthorityList::new(vec![NodeId(2), NodeId(0)]),
        )
        .unwrap();
        d
    }

    #[test]
    fn register_and_lookup() {
        let d = dir_with_users();
        assert_eq!(d.len(), 3);
        let alice = d.by_name(&"east.h1.alice".parse().unwrap()).unwrap();
        assert_eq!(alice.home_host, NodeId(10));
        assert_eq!(d.by_id(alice.id).unwrap().name, alice.name);
        assert!(d.by_name(&"east.h1.nobody".parse().unwrap()).is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = dir_with_users();
        let err = d
            .register(
                "east.h1.alice".parse().unwrap(),
                NodeId(9),
                AuthorityList::new(vec![NodeId(0)]),
            )
            .unwrap_err();
        assert!(matches!(err, DirectoryError::DuplicateName(_)));
    }

    #[test]
    fn unregister_retires_name() {
        let mut d = dir_with_users();
        let name: MailName = "east.h1.bob".parse().unwrap();
        let rec = d.unregister(&name).unwrap();
        assert_eq!(rec.name, name);
        assert!(!d.is_registered(&name));
        assert_eq!(d.len(), 2);
        assert!(d.unregister(&name).is_err());
    }

    #[test]
    fn population_queries() {
        let d = dir_with_users();
        assert_eq!(d.users_of_server(NodeId(0)).len(), 2); // alice, carol
        assert_eq!(d.users_of_server(NodeId(1)).len(), 2); // alice, bob
        assert_eq!(d.users_of_host(NodeId(10)).len(), 2);
        assert_eq!(d.users_of_host(NodeId(99)).len(), 0);
    }

    #[test]
    fn partition_replicates_by_authority() {
        let d = dir_with_users();
        let views = d.partition(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(views[&NodeId(0)].record_count(), 2);
        assert_eq!(views[&NodeId(1)].record_count(), 2);
        assert_eq!(views[&NodeId(2)].record_count(), 1);
        let v0 = &views[&NodeId(0)];
        assert!(v0.is_authority_for(&"east.h1.alice".parse().unwrap()));
        assert!(!v0.is_authority_for(&"east.h1.bob".parse().unwrap()));
        assert_eq!(v0.region_of_name("west"), Some(RegionId(1)));
    }

    #[test]
    fn server_view_mutation() {
        let d = dir_with_users();
        let mut views = d.partition(&[NodeId(0)]);
        let v = views.get_mut(&NodeId(0)).unwrap();
        let name: MailName = "east.h1.alice".parse().unwrap();
        let rec = v.remove(&name).unwrap();
        assert!(!v.is_authority_for(&name));
        v.upsert(rec);
        assert!(v.is_authority_for(&name));
    }
}
