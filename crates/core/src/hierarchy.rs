//! Generalised hierarchical names and zone-based resolution.
//!
//! §3.1.1: "The current hierarchical numbering scheme for telephone
//! services is a good example of syntax-directed naming … A three or four
//! hierarchy system can be applied to electronic mail." The fixed
//! three-level [`MailName`](crate::name::MailName) covers the paper's main
//! design; this module provides the generalisation: names with any number
//! of levels, resolved by longest-prefix match against a zone table —
//! exactly how telephone prefixes (and later DNS zones) delegate
//! authority.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use lems_net::graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::name::{NameLevel, ParseNameError};

/// A hierarchical name with 2 or more levels, most significant first
/// (e.g. `usa.east.boston.vax1.alice`).
///
/// # Examples
///
/// ```
/// use lems_core::hierarchy::HierName;
///
/// let n: HierName = "usa.east.boston.vax1.alice".parse()?;
/// assert_eq!(n.depth(), 5);
/// assert_eq!(n.leaf(), "alice");
/// assert!(n.starts_with(&"usa.east".parse()?));
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct HierName {
    tokens: Vec<String>,
}

fn validate_token(token: &str) -> Result<(), ParseNameError> {
    if token.is_empty() {
        return Err(ParseNameError::EmptyToken {
            level: NameLevel::User,
        });
    }
    for ch in token.chars() {
        if !(ch.is_ascii_alphanumeric() || ch == '-' || ch == '_') {
            return Err(ParseNameError::InvalidCharacter {
                level: NameLevel::User,
                ch,
            });
        }
    }
    Ok(())
}

impl HierName {
    /// Builds a name from tokens, most significant first.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if fewer than one token is given or any
    /// token is empty / contains a character outside `[A-Za-z0-9_-]`.
    pub fn new<I, S>(tokens: I) -> Result<Self, ParseNameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let tokens: Vec<String> = tokens.into_iter().map(|t| t.as_ref().to_owned()).collect();
        if tokens.is_empty() {
            return Err(ParseNameError::WrongComponentCount { found: 0 });
        }
        for t in &tokens {
            validate_token(t)?;
        }
        Ok(HierName { tokens })
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.tokens.len()
    }

    /// The tokens, most significant first.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// The least significant token (the user under the paper's
    /// convention).
    pub fn leaf(&self) -> &str {
        // Construction guarantees at least one token.
        self.tokens.last().map_or("", String::as_str)
    }

    /// True if `prefix`'s tokens are a prefix of this name's tokens.
    pub fn starts_with(&self, prefix: &HierName) -> bool {
        prefix.tokens.len() <= self.tokens.len()
            && self.tokens[..prefix.tokens.len()] == prefix.tokens[..]
    }

    /// The parent name (one level up), or `None` at the root.
    pub fn parent(&self) -> Option<HierName> {
        if self.tokens.len() <= 1 {
            None
        } else {
            Some(HierName {
                tokens: self.tokens[..self.tokens.len() - 1].to_vec(),
            })
        }
    }

    /// A child of this name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if the token is invalid.
    pub fn child(&self, token: &str) -> Result<HierName, ParseNameError> {
        validate_token(token)?;
        let mut tokens = self.tokens.clone();
        tokens.push(token.to_owned());
        Ok(HierName { tokens })
    }

    /// Converts a three-level [`MailName`](crate::name::MailName).
    pub fn from_mail_name(name: &crate::name::MailName) -> HierName {
        HierName {
            tokens: vec![
                name.region().to_owned(),
                name.host().to_owned(),
                name.user().to_owned(),
            ],
        }
    }
}

impl fmt::Display for HierName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.tokens.join("."))
    }
}

impl FromStr for HierName {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        HierName::new(s.split('.'))
    }
}

/// A zone table: name prefixes delegated to servers, resolved by longest
/// prefix — the syntax-directed resolution of §3.1.2b generalised to any
/// hierarchy depth.
///
/// # Examples
///
/// ```
/// use lems_core::hierarchy::{HierName, ZoneTable};
/// use lems_net::graph::NodeId;
///
/// let mut zones = ZoneTable::new(NodeId(0)); // root server
/// zones.delegate("usa".parse()?, NodeId(1));
/// zones.delegate("usa.east".parse()?, NodeId(2));
///
/// let name: HierName = "usa.east.boston.vax1.alice".parse()?;
/// let (server, zone_depth) = zones.resolve(&name);
/// assert_eq!(server, NodeId(2));        // longest matching prefix wins
/// assert_eq!(zone_depth, 2);
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZoneTable {
    root: NodeId,
    zones: BTreeMap<HierName, NodeId>,
}

impl ZoneTable {
    /// Creates a table whose fallback (root zone) is served by `root`.
    pub fn new(root: NodeId) -> Self {
        ZoneTable {
            root,
            zones: BTreeMap::new(),
        }
    }

    /// Delegates `prefix` to `server` (replacing any previous
    /// delegation).
    pub fn delegate(&mut self, prefix: HierName, server: NodeId) {
        self.zones.insert(prefix, server);
    }

    /// Removes a delegation; names fall back to the next-longest prefix.
    pub fn undelegate(&mut self, prefix: &HierName) -> Option<NodeId> {
        self.zones.remove(prefix)
    }

    /// Number of explicit delegations.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// True if only the root zone exists.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Resolves `name` to `(server, matched prefix depth)` by longest
    /// prefix; depth 0 means the root zone answered.
    pub fn resolve(&self, name: &HierName) -> (NodeId, usize) {
        let mut best: Option<(&HierName, NodeId)> = None;
        for (prefix, &server) in &self.zones {
            if name.starts_with(prefix) {
                match best {
                    Some((bp, _)) if bp.depth() >= prefix.depth() => {}
                    _ => best = Some((prefix, server)),
                }
            }
        }
        match best {
            Some((prefix, server)) => (server, prefix.depth()),
            None => (self.root, 0),
        }
    }

    /// The delegation chain a query walks from the root to the answering
    /// zone — the number of referrals a resolution costs.
    pub fn referral_chain(&self, name: &HierName) -> Vec<NodeId> {
        let mut chain = vec![self.root];
        for depth in 1..=name.depth() {
            let prefix = HierName {
                tokens: name.tokens()[..depth].to_vec(),
            };
            if let Some(&server) = self.zones.get(&prefix) {
                if chain.last() != Some(&server) {
                    chain.push(server);
                }
            }
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_navigate() {
        let n: HierName = "usa.east.boston.vax1.alice".parse().unwrap();
        assert_eq!(n.depth(), 5);
        assert_eq!(n.leaf(), "alice");
        assert_eq!(n.parent().unwrap().to_string(), "usa.east.boston.vax1");
        assert_eq!(
            n.parent().unwrap().child("bob").unwrap().to_string(),
            "usa.east.boston.vax1.bob"
        );
        assert!("".parse::<HierName>().is_err());
        assert!("a..b".parse::<HierName>().is_err());
    }

    #[test]
    fn three_level_names_convert() {
        let m: crate::name::MailName = "east.vax1.alice".parse().unwrap();
        let h = HierName::from_mail_name(&m);
        assert_eq!(h.to_string(), "east.vax1.alice");
        assert_eq!(h.depth(), 3);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut z = ZoneTable::new(NodeId(0));
        z.delegate("usa".parse().unwrap(), NodeId(1));
        z.delegate("usa.east".parse().unwrap(), NodeId(2));
        z.delegate("usa.east.boston".parse().unwrap(), NodeId(3));
        z.delegate("europe".parse().unwrap(), NodeId(4));

        let resolve = |s: &str| z.resolve(&s.parse().unwrap());
        assert_eq!(resolve("usa.west.la.h.u"), (NodeId(1), 1));
        assert_eq!(resolve("usa.east.ny.h.u"), (NodeId(2), 2));
        assert_eq!(resolve("usa.east.boston.h.u"), (NodeId(3), 3));
        assert_eq!(resolve("europe.fr.paris.h.u"), (NodeId(4), 1));
        assert_eq!(resolve("asia.jp.tokyo.h.u"), (NodeId(0), 0));
    }

    #[test]
    fn undelegation_falls_back() {
        let mut z = ZoneTable::new(NodeId(0));
        z.delegate("usa".parse().unwrap(), NodeId(1));
        z.delegate("usa.east".parse().unwrap(), NodeId(2));
        assert_eq!(z.undelegate(&"usa.east".parse().unwrap()), Some(NodeId(2)));
        assert_eq!(z.resolve(&"usa.east.h.u".parse().unwrap()), (NodeId(1), 1));
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn referral_chain_walks_delegations() {
        let mut z = ZoneTable::new(NodeId(0));
        z.delegate("usa".parse().unwrap(), NodeId(1));
        z.delegate("usa.east".parse().unwrap(), NodeId(2));
        let chain = z.referral_chain(&"usa.east.boston.vax1.alice".parse().unwrap());
        assert_eq!(chain, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let chain = z.referral_chain(&"asia.jp.h.u".parse().unwrap());
        assert_eq!(chain, vec![NodeId(0)]);
    }

    proptest! {
        /// Display/parse round trip for arbitrary valid token vectors.
        #[test]
        fn round_trip(tokens in proptest::collection::vec("[a-z0-9_-]{1,8}", 1..6)) {
            let n = HierName::new(&tokens).unwrap();
            let back: HierName = n.to_string().parse().unwrap();
            prop_assert_eq!(n, back);
        }

        /// starts_with is reflexive and respects parents.
        #[test]
        fn prefix_laws(tokens in proptest::collection::vec("[a-z]{1,5}", 2..6)) {
            let n = HierName::new(&tokens).unwrap();
            prop_assert!(n.starts_with(&n));
            let p = n.parent().unwrap();
            prop_assert!(n.starts_with(&p));
            prop_assert!(!p.starts_with(&n));
        }
    }
}
