//! # lems-core — shared mail-domain types
//!
//! The vocabulary common to all three mail-system designs of
//! *"Designing Large Electronic Mail Systems"* (Bahaa-El-Din & Yuen,
//! ICDCS 1988):
//!
//! * [`name`] — hierarchical `region.host.user` names (§3.1.1);
//! * [`hierarchy`] — the generalisation to "three or four" (or more)
//!   levels with telephone-style longest-prefix zone resolution;
//! * [`message`] — messages, ids, and delivery status;
//! * [`mailbox`] — server-side stable storage for undelivered mail
//!   (§3.1.2c);
//! * [`store`] — the [`MailStore`] persistence trait behind those
//!   mailboxes, with the in-memory backends (the write-ahead-log backend
//!   lives in `lems-store`);
//! * [`user`] — users and their ordered authority-server lists;
//! * [`directory`] — the partitioned, partially replicated name database
//!   (§2) and per-server views of it;
//! * [`workload`] — synthetic Poisson/Zipf mail traffic for experiments.
//!
//! System-specific machinery lives in `lems-syntax` (System 1),
//! `lems-locindep` (System 2), and `lems-attr` (System 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod hierarchy;
pub mod mailbox;
pub mod message;
pub mod name;
pub mod store;
pub mod user;
pub mod workload;

pub use directory::{Directory, DirectoryError, ServerView};
pub use hierarchy::{HierName, ZoneTable};
pub use mailbox::{Mailbox, StoredMessage};
pub use message::{BounceReason, DeliveryStatus, Message, MessageId, MessageIdGen};
pub use name::{MailName, ParseNameError};
pub use store::{MailStore, MemStore, RecoveryReport, StoreRecovery, StoreState};
pub use user::{AuthorityList, UserId, UserRecord};
pub use workload::{
    generate, generate_mobility, MobilityConfig, MobilitySchedule, Workload, WorkloadConfig,
    WorkloadEvent,
};
