//! Server-side mailboxes.
//!
//! §3.1.2c: hosts "can be personal computers, or workstations. The user may
//! not be turned on all the time. Therefore, the received messages are
//! stored in the servers' storage space until the users retrieve them."
//! A mailbox is stable storage on a server: it survives the server's
//! crashes (the server is down, not wiped), which is exactly the property
//! the GetMail algorithm relies on.

use lems_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::message::{Message, MessageId};
use crate::name::MailName;

/// One message as stored on a server.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StoredMessage {
    /// The message itself.
    pub message: Message,
    /// When the server deposited it.
    #[serde(skip, default = "SimTime::default")]
    pub deposited_at: SimTime,
}

/// A user's mailbox on one server.
///
/// # Examples
///
/// ```
/// use lems_core::mailbox::Mailbox;
/// use lems_core::message::{Message, MessageId};
/// use lems_sim::time::SimTime;
///
/// let owner = "east.vax1.alice".parse()?;
/// let mut mbox = Mailbox::new(owner);
/// let m = Message::new(
///     MessageId(0),
///     "east.vax1.bob".parse()?,
///     "east.vax1.alice".parse()?,
///     "hi", "body", SimTime::ZERO,
/// );
/// mbox.deposit(m, SimTime::from_units(1.0));
/// assert_eq!(mbox.len(), 1);
/// let drained = mbox.drain();
/// assert_eq!(drained.len(), 1);
/// assert!(mbox.is_empty());
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mailbox {
    owner: MailName,
    stored: Vec<StoredMessage>,
    deposited_total: u64,
    retrieved_total: u64,
}

impl Mailbox {
    /// Creates an empty mailbox for `owner`.
    pub fn new(owner: MailName) -> Self {
        Mailbox {
            owner,
            stored: Vec::new(),
            deposited_total: 0,
            retrieved_total: 0,
        }
    }

    /// The owning user.
    pub fn owner(&self) -> &MailName {
        &self.owner
    }

    /// Stores a message.
    pub fn deposit(&mut self, message: Message, now: SimTime) {
        self.deposited_total += 1;
        self.stored.push(StoredMessage {
            message,
            deposited_at: now,
        });
    }

    /// Number of messages currently stored.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Messages currently stored, oldest first, without removing them
    /// (the "retain a copy on the server" option of §3.1.2c).
    pub fn peek(&self) -> &[StoredMessage] {
        &self.stored
    }

    /// Removes and returns all stored messages, oldest first — the normal
    /// retrieval path.
    pub fn drain(&mut self) -> Vec<StoredMessage> {
        self.retrieved_total += self.stored.len() as u64;
        std::mem::take(&mut self.stored)
    }

    /// Removes a single message by id, if present.
    pub fn remove(&mut self, id: MessageId) -> Option<StoredMessage> {
        let idx = self.stored.iter().position(|s| s.message.id == id)?;
        self.retrieved_total += 1;
        Some(self.stored.remove(idx))
    }

    /// Messages ever deposited into this mailbox.
    pub fn deposited_total(&self) -> u64 {
        self.deposited_total
    }

    /// Messages ever retrieved from this mailbox.
    pub fn retrieved_total(&self) -> u64 {
        self.retrieved_total
    }

    /// Drops every stored message older than `cutoff`, returning how many
    /// were removed — the archiving/clean-up hook of §3.1.2c ("some policy
    /// of message archiving and clean-up must be implemented to protect the
    /// servers' storage").
    pub fn expire_older_than(&mut self, cutoff: SimTime) -> usize {
        let before = self.stored.len();
        self.stored.retain(|s| s.deposited_at >= cutoff);
        before - self.stored.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageIdGen;

    fn mk(owner: &str) -> Mailbox {
        Mailbox::new(owner.parse().unwrap())
    }

    fn msg(gen: &mut MessageIdGen, to: &str) -> Message {
        Message::new(
            gen.next_id(),
            "east.h.sender".parse().unwrap(),
            to.parse().unwrap(),
            "s",
            "b",
            SimTime::ZERO,
        )
    }

    #[test]
    fn deposit_and_drain_fifo() {
        let mut g = MessageIdGen::new();
        let mut mb = mk("east.h.u");
        for i in 0..3 {
            mb.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(i as f64));
        }
        assert_eq!(mb.len(), 3);
        let out = mb.drain();
        assert_eq!(
            out.iter().map(|s| s.message.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(mb.is_empty());
        assert_eq!(mb.deposited_total(), 3);
        assert_eq!(mb.retrieved_total(), 3);
    }

    #[test]
    fn remove_by_id() {
        let mut g = MessageIdGen::new();
        let mut mb = mk("east.h.u");
        mb.deposit(msg(&mut g, "east.h.u"), SimTime::ZERO);
        mb.deposit(msg(&mut g, "east.h.u"), SimTime::ZERO);
        assert!(mb.remove(MessageId(0)).is_some());
        assert!(mb.remove(MessageId(0)).is_none());
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.peek()[0].message.id, MessageId(1));
    }

    #[test]
    fn expiry_removes_old_messages() {
        let mut g = MessageIdGen::new();
        let mut mb = mk("east.h.u");
        mb.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(1.0));
        mb.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(5.0));
        let removed = mb.expire_older_than(SimTime::from_units(3.0));
        assert_eq!(removed, 1);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.peek()[0].message.id, MessageId(1));
    }
}
