//! Server-side mailboxes.
//!
//! §3.1.2c: hosts "can be personal computers, or workstations. The user may
//! not be turned on all the time. Therefore, the received messages are
//! stored in the servers' storage space until the users retrieve them."
//! A mailbox is stable storage on a server: it survives the server's
//! crashes (the server is down, not wiped), which is exactly the property
//! the GetMail algorithm relies on.

use lems_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::message::{Message, MessageId};
use crate::name::MailName;

/// One message as stored on a server.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StoredMessage {
    /// The message itself.
    pub message: Message,
    /// When the server deposited it.
    #[serde(skip, default = "SimTime::default")]
    pub deposited_at: SimTime,
}

/// A user's mailbox on one server.
///
/// # Examples
///
/// ```
/// use lems_core::mailbox::Mailbox;
/// use lems_core::message::{Message, MessageId};
/// use lems_sim::time::SimTime;
///
/// let owner = "east.vax1.alice".parse()?;
/// let mut mbox = Mailbox::new(owner);
/// let m = Message::new(
///     MessageId(0),
///     "east.vax1.bob".parse()?,
///     "east.vax1.alice".parse()?,
///     "hi", "body", SimTime::ZERO,
/// );
/// mbox.deposit(m, SimTime::from_units(1.0));
/// assert_eq!(mbox.len(), 1);
/// let drained = mbox.drain();
/// assert_eq!(drained.len(), 1);
/// assert!(mbox.is_empty());
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
/// Ledger invariant: every deposited message leaves the mailbox through
/// exactly one of retrieval (`drain`/`remove`) or expiry
/// (`expire_older_than`), so at all times
///
/// ```text
/// deposited_total == retrieved_total + expired_total + len()
/// ```
///
/// `retrieved_total` deliberately counts only messages handed to a user
/// (drains and targeted removals); expiry is storage reclamation, not
/// retrieval, and is ledgered separately in `expired_total`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mailbox {
    owner: MailName,
    stored: Vec<StoredMessage>,
    deposited_total: u64,
    retrieved_total: u64,
    #[serde(default)]
    expired_total: u64,
}

impl Mailbox {
    /// Creates an empty mailbox for `owner`.
    pub fn new(owner: MailName) -> Self {
        Mailbox {
            owner,
            stored: Vec::new(),
            deposited_total: 0,
            retrieved_total: 0,
            expired_total: 0,
        }
    }

    /// The owning user.
    pub fn owner(&self) -> &MailName {
        &self.owner
    }

    /// Stores a message.
    pub fn deposit(&mut self, message: Message, now: SimTime) {
        self.deposited_total += 1;
        self.stored.push(StoredMessage {
            message,
            deposited_at: now,
        });
    }

    /// Number of messages currently stored.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Messages currently stored, oldest first, without removing them
    /// (the "retain a copy on the server" option of §3.1.2c).
    pub fn peek(&self) -> &[StoredMessage] {
        &self.stored
    }

    /// Removes and returns all stored messages, oldest first — the normal
    /// retrieval path.
    pub fn drain(&mut self) -> Vec<StoredMessage> {
        self.retrieved_total += self.stored.len() as u64;
        std::mem::take(&mut self.stored)
    }

    /// Removes a single message by id, if present.
    pub fn remove(&mut self, id: MessageId) -> Option<StoredMessage> {
        let idx = self.stored.iter().position(|s| s.message.id == id)?;
        self.retrieved_total += 1;
        Some(self.stored.remove(idx))
    }

    /// Messages ever deposited into this mailbox.
    pub fn deposited_total(&self) -> u64 {
        self.deposited_total
    }

    /// Messages ever retrieved from this mailbox (drains + removals; expiry
    /// is ledgered in [`Mailbox::expired_total`], not here).
    pub fn retrieved_total(&self) -> u64 {
        self.retrieved_total
    }

    /// Messages ever reclaimed by [`Mailbox::expire_older_than`].
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// Drops every stored message older than `cutoff`, returning how many
    /// were removed — the archiving/clean-up hook of §3.1.2c ("some policy
    /// of message archiving and clean-up must be implemented to protect the
    /// servers' storage"). Expired messages count toward `expired_total`,
    /// never `retrieved_total`: nobody read them.
    pub fn expire_older_than(&mut self, cutoff: SimTime) -> usize {
        let before = self.stored.len();
        self.stored.retain(|s| s.deposited_at >= cutoff);
        let expired = before - self.stored.len();
        self.expired_total += expired as u64;
        expired
    }

    /// Restores the ledger counters after a log replay rebuilds this
    /// mailbox from a snapshot (the counters are history, not derivable
    /// from the surviving messages alone).
    pub fn restore_ledger(&mut self, deposited: u64, retrieved: u64, expired: u64) {
        self.deposited_total = deposited;
        self.retrieved_total = retrieved;
        self.expired_total = expired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageIdGen;

    fn mk(owner: &str) -> Mailbox {
        Mailbox::new(owner.parse().unwrap())
    }

    fn msg(gen: &mut MessageIdGen, to: &str) -> Message {
        Message::new(
            gen.next_id(),
            "east.h.sender".parse().unwrap(),
            to.parse().unwrap(),
            "s",
            "b",
            SimTime::ZERO,
        )
    }

    #[test]
    fn deposit_and_drain_fifo() {
        let mut g = MessageIdGen::new();
        let mut mb = mk("east.h.u");
        for i in 0..3 {
            mb.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(i as f64));
        }
        assert_eq!(mb.len(), 3);
        let out = mb.drain();
        assert_eq!(
            out.iter().map(|s| s.message.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(mb.is_empty());
        assert_eq!(mb.deposited_total(), 3);
        assert_eq!(mb.retrieved_total(), 3);
    }

    #[test]
    fn remove_by_id() {
        let mut g = MessageIdGen::new();
        let mut mb = mk("east.h.u");
        mb.deposit(msg(&mut g, "east.h.u"), SimTime::ZERO);
        mb.deposit(msg(&mut g, "east.h.u"), SimTime::ZERO);
        assert!(mb.remove(MessageId(0)).is_some());
        assert!(mb.remove(MessageId(0)).is_none());
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.peek()[0].message.id, MessageId(1));
    }

    /// Pins the ledger semantics: expiry is accounted in `expired_total`,
    /// never in `retrieved_total`, and the conservation identity
    /// `deposited == retrieved + expired + len` holds through a mixed
    /// drain/remove/expire history.
    #[test]
    fn ledger_conserves_messages_across_drain_remove_expire() {
        let mut g = MessageIdGen::new();
        let mut mb = mk("east.h.u");
        for i in 0..6 {
            mb.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(i as f64));
        }
        assert!(mb.remove(MessageId(2)).is_some());
        let expired = mb.expire_older_than(SimTime::from_units(2.0));
        assert_eq!(expired, 2); // ids 0 and 1 (id 2 was already removed)
        let drained = mb.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(mb.deposited_total(), 6);
        assert_eq!(mb.retrieved_total(), 4); // 1 removal + 3 drained
        assert_eq!(mb.expired_total(), 2); // expiry is not retrieval
        assert_eq!(
            mb.deposited_total(),
            mb.retrieved_total() + mb.expired_total() + mb.len() as u64
        );
    }

    #[test]
    fn expiry_removes_old_messages() {
        let mut g = MessageIdGen::new();
        let mut mb = mk("east.h.u");
        mb.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(1.0));
        mb.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(5.0));
        let removed = mb.expire_older_than(SimTime::from_units(3.0));
        assert_eq!(removed, 1);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.peek()[0].message.id, MessageId(1));
    }
}
