//! Mail messages and their delivery lifecycle.

use std::fmt;

use lems_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::name::MailName;

/// Globally unique message identifier (unique per simulation run).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Issues sequential [`MessageId`]s.
#[derive(Clone, Debug, Default)]
pub struct MessageIdGen {
    next: u64,
}

impl MessageIdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        MessageIdGen::default()
    }

    /// Returns a fresh id.
    pub fn next_id(&mut self) -> MessageId {
        let id = MessageId(self.next);
        self.next += 1;
        id
    }
}

/// A mail message as handed to a server for delivery.
///
/// The user interface composes and formats the message (§2); by the time it
/// reaches a mail server it carries sender, recipient, body, and the
/// submission timestamp used for latency accounting.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Message {
    /// Unique id.
    pub id: MessageId,
    /// Fully qualified sender name.
    pub from: MailName,
    /// Fully qualified recipient name.
    pub to: MailName,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
    /// Simulated instant the user interface submitted the message.
    #[serde(skip, default = "SimTime::default")]
    pub submitted_at: SimTime,
}

impl Message {
    /// Creates a message.
    pub fn new(
        id: MessageId,
        from: MailName,
        to: MailName,
        subject: impl Into<String>,
        body: impl Into<String>,
        submitted_at: SimTime,
    ) -> Self {
        Message {
            id,
            from,
            to,
            subject: subject.into(),
            body: body.into(),
            submitted_at,
        }
    }

    /// Approximate wire size in bytes (headers + body), used by cost
    /// accounting.
    pub fn wire_size(&self) -> usize {
        self.from.to_string().len()
            + self.to.to_string().len()
            + self.subject.len()
            + self.body.len()
            + 64 // fixed envelope overhead
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> {} ({:?})",
            self.id, self.from, self.to, self.subject
        )
    }
}

/// Where a message currently stands in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DeliveryStatus {
    /// Accepted by a mail server, waiting for resolution/forwarding.
    Accepted,
    /// Deposited in a recipient's server-side mailbox.
    Deposited,
    /// Retrieved by the recipient's user interface.
    Retrieved,
    /// Returned to the sender with an error (§4.2: "made available to the
    /// intended recipient or returned with proper error messages").
    Bounced(BounceReason),
}

/// Why a message bounced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BounceReason {
    /// The recipient name failed to resolve anywhere.
    UnknownRecipient,
    /// Every authority server for the recipient was unavailable.
    AllServersDown,
    /// The recipient region was unreachable.
    RegionUnreachable,
}

impl fmt::Display for BounceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BounceReason::UnknownRecipient => f.write_str("unknown recipient"),
            BounceReason::AllServersDown => f.write_str("all authority servers down"),
            BounceReason::RegionUnreachable => f.write_str("recipient region unreachable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> MailName {
        s.parse().unwrap()
    }

    #[test]
    fn id_generator_is_sequential() {
        let mut g = MessageIdGen::new();
        assert_eq!(g.next_id(), MessageId(0));
        assert_eq!(g.next_id(), MessageId(1));
        assert_eq!(g.next_id(), MessageId(2));
    }

    #[test]
    fn message_construction_and_size() {
        let m = Message::new(
            MessageId(7),
            name("east.vax1.alice"),
            name("west.sun3.bob"),
            "hi",
            "hello bob",
            SimTime::from_units(1.0),
        );
        assert!(m.wire_size() > 64);
        let s = m.to_string();
        assert!(s.contains("m7") && s.contains("alice") && s.contains("bob"));
    }

    #[test]
    fn bounce_reasons_display() {
        assert_eq!(
            BounceReason::UnknownRecipient.to_string(),
            "unknown recipient"
        );
        assert_eq!(
            DeliveryStatus::Bounced(BounceReason::AllServersDown),
            DeliveryStatus::Bounced(BounceReason::AllServersDown)
        );
    }
}
