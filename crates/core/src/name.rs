//! Hierarchical mail names: `region.host.user`.
//!
//! §3.1.1: "we use a three level hierarchical name in the form of
//! `region.host.user` to identify users of the computer mail systems. The
//! name components are location dependent. The region name is globally
//! unique, the host name is unique within a region, and the user name is
//! locally unique within a host."
//!
//! Names are "structured as a set of alphanumeric strings chosen from a
//! finite alphabet and separated by delimiters" (§2); we allow ASCII
//! alphanumerics plus `-` and `_` inside tokens and use `.` as the
//! delimiter.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Error produced when parsing or validating a [`MailName`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseNameError {
    /// The name did not have exactly three `.`-separated components.
    WrongComponentCount {
        /// Number of components found.
        found: usize,
    },
    /// A component was empty.
    EmptyToken {
        /// Which level was empty.
        level: NameLevel,
    },
    /// A component contained a character outside the allowed alphabet.
    InvalidCharacter {
        /// Which level the character appeared in.
        level: NameLevel,
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::WrongComponentCount { found } => write!(
                f,
                "expected three components `region.host.user`, found {found}"
            ),
            ParseNameError::EmptyToken { level } => {
                write!(f, "empty {level} component")
            }
            ParseNameError::InvalidCharacter { level, ch } => {
                write!(f, "invalid character {ch:?} in {level} component")
            }
        }
    }
}

impl std::error::Error for ParseNameError {}

/// The three levels of the naming hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NameLevel {
    /// The globally unique region token.
    Region,
    /// The host token, unique within its region.
    Host,
    /// The user token, unique within its host.
    User,
}

impl fmt::Display for NameLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameLevel::Region => f.write_str("region"),
            NameLevel::Host => f.write_str("host"),
            NameLevel::User => f.write_str("user"),
        }
    }
}

fn validate_token(token: &str, level: NameLevel) -> Result<(), ParseNameError> {
    if token.is_empty() {
        return Err(ParseNameError::EmptyToken { level });
    }
    for ch in token.chars() {
        if !(ch.is_ascii_alphanumeric() || ch == '-' || ch == '_') {
            return Err(ParseNameError::InvalidCharacter { level, ch });
        }
    }
    Ok(())
}

/// A fully qualified, location-dependent mail name.
///
/// Under System 1 (syntax-directed naming) the `host` token is the user's
/// fixed location; under System 2 it is only the user's *primary* location
/// — the user may connect from any host of the region (§3.2.1).
///
/// # Examples
///
/// ```
/// use lems_core::name::MailName;
///
/// let n: MailName = "east.vax1.alice".parse()?;
/// assert_eq!(n.region(), "east");
/// assert_eq!(n.host(), "vax1");
/// assert_eq!(n.user(), "alice");
/// assert_eq!(n.to_string(), "east.vax1.alice");
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MailName {
    region: String,
    host: String,
    user: String,
}

impl MailName {
    /// Builds a name from validated tokens.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if any token is empty or contains a
    /// character outside `[A-Za-z0-9_-]`.
    pub fn new(region: &str, host: &str, user: &str) -> Result<Self, ParseNameError> {
        validate_token(region, NameLevel::Region)?;
        validate_token(host, NameLevel::Host)?;
        validate_token(user, NameLevel::User)?;
        Ok(MailName {
            region: region.to_owned(),
            host: host.to_owned(),
            user: user.to_owned(),
        })
    }

    /// The region token.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// The host token (primary location under System 2).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The user token.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// A copy of this name relocated to a new region and host — the rename
    /// a migrating user performs under syntax-directed naming (§3.1.4).
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if the new tokens are invalid.
    pub fn relocated(&self, region: &str, host: &str) -> Result<MailName, ParseNameError> {
        MailName::new(region, host, &self.user)
    }

    /// True if both names are in the same region.
    pub fn same_region(&self, other: &MailName) -> bool {
        self.region == other.region
    }

    /// True if both names share region and host.
    pub fn same_host(&self, other: &MailName) -> bool {
        self.region == other.region && self.host == other.host
    }
}

impl fmt::Display for MailName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.region, self.host, self.user)
    }
}

impl FromStr for MailName {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 3 {
            return Err(ParseNameError::WrongComponentCount { found: parts.len() });
        }
        MailName::new(parts[0], parts[1], parts[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_round_trip() {
        let n: MailName = "west.pc-7.bob_2".parse().unwrap();
        assert_eq!(n.to_string(), "west.pc-7.bob_2");
        assert_eq!(n.region(), "west");
        assert_eq!(n.host(), "pc-7");
        assert_eq!(n.user(), "bob_2");
    }

    #[test]
    fn rejects_wrong_arity() {
        assert_eq!(
            "a.b".parse::<MailName>(),
            Err(ParseNameError::WrongComponentCount { found: 2 })
        );
        assert_eq!(
            "a.b.c.d".parse::<MailName>(),
            Err(ParseNameError::WrongComponentCount { found: 4 })
        );
    }

    #[test]
    fn rejects_empty_and_invalid_tokens() {
        assert_eq!(
            "a..c".parse::<MailName>(),
            Err(ParseNameError::EmptyToken {
                level: NameLevel::Host
            })
        );
        assert_eq!(
            "a.b.c d".parse::<MailName>(),
            Err(ParseNameError::InvalidCharacter {
                level: NameLevel::User,
                ch: ' '
            })
        );
        assert!("é.b.c".parse::<MailName>().is_err());
    }

    #[test]
    fn relocation_keeps_user_token() {
        let n: MailName = "east.vax1.alice".parse().unwrap();
        let m = n.relocated("west", "sun3").unwrap();
        assert_eq!(m.to_string(), "west.sun3.alice");
        assert!(!n.same_region(&m));
        let p = n.relocated("east", "sun3").unwrap();
        assert!(n.same_region(&p));
        assert!(!n.same_host(&p));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = "a.b".parse::<MailName>().unwrap_err();
        assert!(e.to_string().contains("three components"));
        let e = "a..c".parse::<MailName>().unwrap_err();
        assert!(e.to_string().contains("host"));
    }

    proptest! {
        /// Every syntactically valid triple survives a display/parse round
        /// trip.
        #[test]
        fn round_trip_any_valid_tokens(
            r in "[A-Za-z0-9_-]{1,12}",
            h in "[A-Za-z0-9_-]{1,12}",
            u in "[A-Za-z0-9_-]{1,12}",
        ) {
            let n = MailName::new(&r, &h, &u).unwrap();
            let back: MailName = n.to_string().parse().unwrap();
            prop_assert_eq!(n, back);
        }
    }
}
