//! Pluggable mailbox persistence — the [`MailStore`] trait.
//!
//! §3.1.2c makes servers custodians of undelivered mail, and the GetMail
//! protocol assumes a crashed server comes back with its mailboxes intact.
//! Historically the simulation granted that assumption by fiat: mailboxes
//! were plain in-memory maps and a crash simply paused the actor. This
//! module makes the assumption explicit and falsifiable. Everything a
//! server must not lose across a crash — mailboxes, the reserved
//! (drained-but-unacknowledged) retrieval buffer, the accepted-but-unsettled
//! forward set, and the deposit dedup ledger — lives behind [`MailStore`],
//! and each backend decides what actually survives:
//!
//! * [`MemStore::stable`] — the historical fiat-stable store (backend
//!   `"mem-stable"`): nothing is ever lost, crash and recovery are no-ops.
//! * [`MemStore::volatile`] — RAM only (backend `"mem-volatile"`): a crash
//!   wipes everything. This is the counterexample backend that justifies
//!   the write-ahead log.
//! * `WalStore` (in `lems-store`) — an append-only, checksummed,
//!   schema-versioned write-ahead log with segment rotation and chunked
//!   compaction; a crash keeps exactly the synced prefix (plus an optional
//!   injected torn tail) and recovery replays it.

use std::collections::{BTreeMap, BTreeSet};

use lems_sim::time::SimTime;

use crate::mailbox::Mailbox;
use crate::message::{Message, MessageId};
use crate::name::MailName;

/// The durable state a server entrusts to its store.
///
/// Both backends (and the WAL replay path) mutate their state exclusively
/// through this struct's methods, so "what an operation means" is defined
/// once: a log record replayed during recovery calls the same method the
/// live operation did, which is what makes recovery exact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StoreState {
    /// Per-user mailboxes (stable storage of §3.1.2c).
    pub mailboxes: BTreeMap<MailName, Mailbox>,
    /// Messages handed to a retrieval session but not yet acknowledged
    /// (the reliable-retrieval reservation buffer).
    pub pending: BTreeMap<MailName, Vec<Message>>,
    /// Forwards this server has acknowledged upstream but not yet settled
    /// downstream, keyed by message id, with the hop budget they carried.
    pub forwards: BTreeMap<MessageId, (Message, u32)>,
    /// Every message id ever deposited here — the dedup ledger that makes
    /// at-least-once delivery idempotent.
    pub deposited: BTreeSet<MessageId>,
}

impl StoreState {
    /// Restores one snapshot chunk of `owner`'s mailbox during recovery
    /// replay: re-deposits each message at its original deposit time,
    /// creating the mailbox if needed. Bypasses the dedup ledger —
    /// snapshot chunks are authoritative, and the ledger is restored
    /// separately (`Record::SnapshotDeposited`).
    pub fn restore_snapshot_chunk(
        &mut self,
        owner: MailName,
        messages: impl IntoIterator<Item = (Message, SimTime)>,
    ) {
        let mb = self
            .mailboxes
            .entry(owner.clone())
            .or_insert_with(|| Mailbox::new(owner));
        for (m, at) in messages {
            mb.deposit(m, at);
        }
    }

    /// Overwrites `owner`'s lifetime ledger counters from snapshot
    /// metadata (written after the owner's chunks: the counter bumps the
    /// chunk re-deposits made are replaced with the true history).
    pub fn restore_snapshot_ledger(
        &mut self,
        owner: MailName,
        deposited: u64,
        retrieved: u64,
        expired: u64,
    ) {
        self.mailboxes
            .entry(owner.clone())
            .or_insert_with(|| Mailbox::new(owner))
            .restore_ledger(deposited, retrieved, expired);
    }

    /// Deposits `message` into its recipient's mailbox at `now`. Returns
    /// `false` (and stores nothing) when the id was already deposited.
    pub fn deposit(&mut self, message: Message, now: SimTime) -> bool {
        if !self.deposited.insert(message.id) {
            return false;
        }
        let owner = message.to.clone();
        self.mailboxes
            .entry(owner.clone())
            .or_insert_with(|| Mailbox::new(owner))
            .deposit(message, now);
        true
    }

    /// True when `id` has ever been deposited here.
    pub fn is_deposited(&self, id: MessageId) -> bool {
        self.deposited.contains(&id)
    }

    /// Reliable retrieval: moves everything in `owner`'s mailbox into the
    /// reservation buffer and returns the full reserved list (older
    /// reservations first). Nothing is released until
    /// [`StoreState::release_drained`].
    pub fn drain_reserve(&mut self, owner: &MailName) -> Vec<Message> {
        let fresh: Vec<Message> = self
            .mailboxes
            .get_mut(owner)
            .map(Mailbox::drain)
            .unwrap_or_default()
            .into_iter()
            .map(|s| s.message)
            .collect();
        let pending = self.pending.entry(owner.clone()).or_default();
        pending.extend(fresh);
        pending.clone()
    }

    /// Legacy destructive retrieval: removes and returns `owner`'s stored
    /// messages outright.
    pub fn drain_destructive(&mut self, owner: &MailName) -> Vec<Message> {
        self.mailboxes
            .get_mut(owner)
            .map(Mailbox::drain)
            .unwrap_or_default()
            .into_iter()
            .map(|s| s.message)
            .collect()
    }

    /// Releases acknowledged ids from `owner`'s reservation buffer,
    /// returning how many were released.
    pub fn release_drained(&mut self, owner: &MailName, ids: &[MessageId]) -> u64 {
        let acked: BTreeSet<MessageId> = ids.iter().copied().collect();
        let Some(pending) = self.pending.get_mut(owner) else {
            return 0;
        };
        let before = pending.len();
        pending.retain(|m| !acked.contains(&m.id));
        (before - pending.len()) as u64
    }

    /// Removes one message from `owner`'s mailbox by id.
    pub fn remove(&mut self, owner: &MailName, id: MessageId) -> Option<Message> {
        self.mailboxes.get_mut(owner)?.remove(id).map(|s| s.message)
    }

    /// Expires messages deposited before `cutoff` from `owner`'s mailbox,
    /// returning how many were reclaimed.
    pub fn expire_older_than(&mut self, owner: &MailName, cutoff: SimTime) -> usize {
        self.mailboxes
            .get_mut(owner)
            .map_or(0, |m| m.expire_older_than(cutoff))
    }

    /// Records that this server accepted responsibility for forwarding
    /// `message` with `hops_left` hops remaining. Idempotent: a message
    /// already accepted keeps its original entry. Returns `true` when the
    /// entry is new.
    pub fn accept_forward(&mut self, message: &Message, hops_left: u32) -> bool {
        match self.forwards.entry(message.id) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert((message.clone(), hops_left));
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Settles (discharges) an accepted forward: the message was handed to
    /// the next custodian, deposited locally, or bounced.
    pub fn settle_forward(&mut self, id: MessageId) -> bool {
        self.forwards.remove(&id).is_some()
    }

    /// Messages currently held: mailboxes plus reservation buffers.
    pub fn storage_messages(&self) -> u64 {
        let boxed: usize = self.mailboxes.values().map(Mailbox::len).sum();
        let reserved: usize = self.pending.values().map(Vec::len).sum();
        (boxed + reserved) as u64
    }
}

/// What a backend reconstructed when it came back from a crash.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Backend name (`"mem-stable"`, `"mem-volatile"`, `"wal"`).
    pub backend: &'static str,
    /// Log records replayed (0 for in-memory backends).
    pub replayed_records: u64,
    /// Mailbox messages present after recovery.
    pub recovered_messages: u64,
    /// Reserved (drained-but-unacked) messages present after recovery.
    pub recovered_pending: u64,
    /// Accepted-but-unsettled forwards reconstructed.
    pub recovered_forwards: u64,
    /// Messages known lost by this backend across the crash.
    pub lost_messages: u64,
    /// Bytes discarded from a torn (partially written) log tail.
    pub torn_bytes: u64,
    /// Log segments scanned during replay.
    pub segments: u64,
    /// Unsettled forwards the server must re-route, in message-id order.
    /// Empty for backends whose process state survives by fiat (the actor
    /// keeps its own in-flight bookkeeping in that case).
    pub unsettled: Vec<(Message, u32)>,
}

/// A recovery event as surfaced to telemetry (one per server recovery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreRecovery {
    /// When the server recovered.
    pub at: SimTime,
    /// Recovering server's node id.
    pub site: u64,
    /// Backend name.
    pub backend: &'static str,
    /// Log records replayed.
    pub replayed_records: u64,
    /// Mailbox messages present after recovery.
    pub recovered_messages: u64,
    /// Reserved messages present after recovery.
    pub recovered_pending: u64,
    /// Unsettled forwards re-routed after recovery.
    pub recovered_forwards: u64,
    /// Messages known lost across the crash.
    pub lost_messages: u64,
    /// Torn-tail bytes discarded during replay.
    pub torn_bytes: u64,
    /// Log segments scanned.
    pub segments: u64,
}

/// Cumulative I/O-health counters for one store backend.
///
/// The write-path numbers size the durability cost the paper's §3 sizing
/// arguments must absorb (how many fsyncs per deposited message, how fast
/// the log grows); the recovery numbers size the §3.1.2c custodian
/// promise (how much scan work a crash costs). All counters are lifetime
/// totals derived from operation counts — exporting them perturbs
/// nothing. In-memory backends report all zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Log records appended (live writes, not replay).
    pub appended_records: u64,
    /// Payload bytes appended to the log.
    pub appended_bytes: u64,
    /// Explicit durability barriers issued (fsync or equivalent).
    pub fsyncs: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Compaction passes completed.
    pub compactions: u64,
    /// Snapshot chunks written across all compactions.
    pub compaction_chunks: u64,
    /// Records replayed by recovery and persist/restore scans.
    pub replayed_records: u64,
    /// Bytes scanned by recovery and persist/restore scans.
    pub replayed_bytes: u64,
    /// I/O errors swallowed (mirrors [`MailStore::io_errors`]).
    pub io_errors: u64,
}

/// Mailbox persistence backend.
///
/// A server actor routes every durable-state mutation through this trait;
/// the backend decides what survives [`MailStore::crash`]. Methods are
/// infallible because simulated backends cannot fail; file-backed stores
/// surface problems through [`MailStore::io_errors`] instead of panicking
/// inside an event handler.
pub trait MailStore: std::fmt::Debug {
    /// Stable backend name for telemetry.
    fn backend(&self) -> &'static str;

    /// True when the server process's volatile protocol state (retry
    /// timers, in-flight bookkeeping) also survives a crash by fiat —
    /// only the historical `"mem-stable"` backend says yes.
    fn preserves_volatile(&self) -> bool {
        false
    }

    /// Deposits `message`; returns `false` for a duplicate id (dedup).
    fn deposit(&mut self, message: Message, now: SimTime) -> bool;

    /// True when `id` has ever been deposited here.
    fn is_deposited(&self, id: MessageId) -> bool;

    /// Reliable retrieval: reserve `owner`'s mail, return the reserved list.
    fn drain_reserve(&mut self, owner: &MailName) -> Vec<Message>;

    /// Destructive retrieval: remove and return `owner`'s mail.
    fn drain_destructive(&mut self, owner: &MailName) -> Vec<Message>;

    /// Release acknowledged reserved ids; returns how many were released.
    fn release_drained(&mut self, owner: &MailName, ids: &[MessageId]) -> u64;

    /// Remove one message by id from `owner`'s mailbox.
    fn remove(&mut self, owner: &MailName, id: MessageId) -> Option<Message>;

    /// Expire messages deposited before `cutoff`; returns how many.
    fn expire_older_than(&mut self, owner: &MailName, cutoff: SimTime) -> usize;

    /// Journal acceptance of a forward (message + remaining hop budget).
    fn accept_forward(&mut self, message: &Message, hops_left: u32);

    /// Discharge an accepted forward.
    fn settle_forward(&mut self, id: MessageId);

    /// Current mailboxes (read-only view for audits and metrics).
    fn mailboxes(&self) -> &BTreeMap<MailName, Mailbox>;

    /// Current reservation buffers (read-only view).
    fn pending_drain(&self) -> &BTreeMap<MailName, Vec<Message>>;

    /// The server crashed at `now`: apply the backend's loss model.
    fn crash(&mut self, now: SimTime);

    /// The server recovered at `now`: rebuild state, report what survived.
    fn recover(&mut self, now: SimTime) -> RecoveryReport;

    /// Persist everything durable and rebuild in-memory state from it, as
    /// if the store were closed and reopened cleanly. Returns `None` for
    /// backends with nothing to round-trip.
    fn persist_restore(&mut self) -> Option<RecoveryReport> {
        None
    }

    /// Durable log bytes currently held (0 for in-memory backends).
    fn wal_bytes(&self) -> u64 {
        0
    }

    /// I/O errors swallowed so far (always 0 for simulated backends).
    fn io_errors(&self) -> u64 {
        0
    }

    /// Cumulative I/O-health counters (all zeros for in-memory backends).
    fn store_metrics(&self) -> StoreMetrics {
        StoreMetrics::default()
    }
}

/// In-memory backend: the historical store made explicit.
///
/// With `stable: true` it reproduces the fiat-stable behaviour the
/// simulation always had (crash loses nothing). With `stable: false` it
/// models a server that kept mail in RAM: a crash wipes mailboxes,
/// reservations, the forward journal, and the dedup ledger.
#[derive(Debug, Default)]
pub struct MemStore {
    state: StoreState,
    stable: bool,
    lost_at_crash: u64,
}

impl MemStore {
    /// The fiat-stable backend (`"mem-stable"`): historical behaviour.
    pub fn stable() -> Self {
        MemStore {
            state: StoreState::default(),
            stable: true,
            lost_at_crash: 0,
        }
    }

    /// The RAM-only backend (`"mem-volatile"`): crashes lose everything.
    pub fn volatile() -> Self {
        MemStore {
            state: StoreState::default(),
            stable: false,
            lost_at_crash: 0,
        }
    }

    /// Read-only view of the full durable state (tests and audits).
    pub fn state(&self) -> &StoreState {
        &self.state
    }
}

impl MailStore for MemStore {
    fn backend(&self) -> &'static str {
        if self.stable {
            "mem-stable"
        } else {
            "mem-volatile"
        }
    }

    fn preserves_volatile(&self) -> bool {
        self.stable
    }

    fn deposit(&mut self, message: Message, now: SimTime) -> bool {
        self.state.deposit(message, now)
    }

    fn is_deposited(&self, id: MessageId) -> bool {
        self.state.is_deposited(id)
    }

    fn drain_reserve(&mut self, owner: &MailName) -> Vec<Message> {
        self.state.drain_reserve(owner)
    }

    fn drain_destructive(&mut self, owner: &MailName) -> Vec<Message> {
        self.state.drain_destructive(owner)
    }

    fn release_drained(&mut self, owner: &MailName, ids: &[MessageId]) -> u64 {
        self.state.release_drained(owner, ids)
    }

    fn remove(&mut self, owner: &MailName, id: MessageId) -> Option<Message> {
        self.state.remove(owner, id)
    }

    fn expire_older_than(&mut self, owner: &MailName, cutoff: SimTime) -> usize {
        self.state.expire_older_than(owner, cutoff)
    }

    fn accept_forward(&mut self, message: &Message, hops_left: u32) {
        self.state.accept_forward(message, hops_left);
    }

    fn settle_forward(&mut self, id: MessageId) {
        self.state.settle_forward(id);
    }

    fn mailboxes(&self) -> &BTreeMap<MailName, Mailbox> {
        &self.state.mailboxes
    }

    fn pending_drain(&self) -> &BTreeMap<MailName, Vec<Message>> {
        &self.state.pending
    }

    fn crash(&mut self, _now: SimTime) {
        if !self.stable {
            self.lost_at_crash = self.state.storage_messages();
            self.state = StoreState::default();
        }
    }

    fn recover(&mut self, _now: SimTime) -> RecoveryReport {
        let lost = std::mem::take(&mut self.lost_at_crash);
        RecoveryReport {
            backend: self.backend(),
            replayed_records: 0,
            recovered_messages: self.state.mailboxes.values().map(|m| m.len() as u64).sum(),
            recovered_pending: self.state.pending.values().map(|p| p.len() as u64).sum(),
            recovered_forwards: if self.stable {
                self.state.forwards.len() as u64
            } else {
                0
            },
            lost_messages: lost,
            torn_bytes: 0,
            segments: 0,
            unsettled: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageIdGen;

    fn msg(g: &mut MessageIdGen, to: &str) -> Message {
        Message::new(
            g.next_id(),
            "east.h.sender".parse().unwrap(),
            to.parse().unwrap(),
            "s",
            "b",
            SimTime::ZERO,
        )
    }

    #[test]
    fn deposit_dedups_by_id() {
        let mut g = MessageIdGen::new();
        let mut s = MemStore::stable();
        let m = msg(&mut g, "east.h.u");
        assert!(s.deposit(m.clone(), SimTime::ZERO));
        assert!(!s.deposit(m, SimTime::ZERO));
        assert_eq!(s.state().storage_messages(), 1);
    }

    #[test]
    fn drain_reserve_then_release_settles_storage() {
        let mut g = MessageIdGen::new();
        let mut s = MemStore::stable();
        let owner: MailName = "east.h.u".parse().unwrap();
        for _ in 0..3 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::ZERO);
        }
        let reserved = s.drain_reserve(&owner);
        assert_eq!(reserved.len(), 3);
        // Un-acked: still held in the reservation buffer.
        assert_eq!(s.state().storage_messages(), 3);
        // A second reserve returns the same outstanding batch.
        assert_eq!(s.drain_reserve(&owner).len(), 3);
        let released = s.release_drained(&owner, &[reserved[0].id, reserved[2].id]);
        assert_eq!(released, 2);
        assert_eq!(s.state().storage_messages(), 1);
    }

    #[test]
    fn volatile_crash_wipes_state_and_reports_loss() {
        let mut g = MessageIdGen::new();
        let mut s = MemStore::volatile();
        for _ in 0..4 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::ZERO);
        }
        s.crash(SimTime::from_units(5.0));
        assert_eq!(s.state().storage_messages(), 0);
        let report = s.recover(SimTime::from_units(6.0));
        assert_eq!(report.lost_messages, 4);
        assert_eq!(report.recovered_messages, 0);
    }

    #[test]
    fn stable_crash_recover_is_a_no_op() {
        let mut g = MessageIdGen::new();
        let mut s = MemStore::stable();
        for _ in 0..4 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::ZERO);
        }
        s.crash(SimTime::from_units(5.0));
        let report = s.recover(SimTime::from_units(6.0));
        assert_eq!(report.lost_messages, 0);
        assert_eq!(report.recovered_messages, 4);
    }
}
