//! Users and their authority-server lists.

use std::fmt;

use lems_net::graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::name::MailName;

/// Dense user identifier within one deployment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct UserId(pub usize);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The ordered list of authority servers assigned to a user.
///
/// §3.1.1: "each user is assigned several authority servers, which are
/// ordered in a list such that the first server in the list is the primary
/// server for the user, and the next is the first secondary server, and so
/// on. If one server fails, the user can still access the mail system
/// through the next authority server in the list."
///
/// # Examples
///
/// ```
/// use lems_core::user::AuthorityList;
/// use lems_net::graph::NodeId;
///
/// let list = AuthorityList::new(vec![NodeId(3), NodeId(5), NodeId(9)]);
/// assert_eq!(list.primary(), NodeId(3));
/// assert_eq!(list.len(), 3);
/// assert_eq!(list.rank_of(NodeId(5)), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AuthorityList {
    servers: Vec<NodeId>,
}

impl AuthorityList {
    /// Creates a list from primary-first server ids.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or contains duplicates — a user without
    /// an authority server cannot use the mail system, and duplicate
    /// entries would double-poll.
    pub fn new(servers: Vec<NodeId>) -> Self {
        assert!(!servers.is_empty(), "authority list must not be empty");
        let mut seen = std::collections::HashSet::new();
        for s in &servers {
            assert!(seen.insert(*s), "duplicate authority server {s}");
        }
        AuthorityList { servers }
    }

    /// The primary server.
    pub fn primary(&self) -> NodeId {
        self.servers[0]
    }

    /// All servers, primary first.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Number of servers in the list.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Always false (the constructor rejects empty lists); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Position of `server` in the list (0 = primary).
    pub fn rank_of(&self, server: NodeId) -> Option<usize> {
        self.servers.iter().position(|&s| s == server)
    }

    /// True if `server` appears anywhere in the list.
    pub fn contains(&self, server: NodeId) -> bool {
        self.rank_of(server).is_some()
    }

    /// Replaces the list (reassignment during reconfiguration, §3.1.3c).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`AuthorityList::new`].
    pub fn reassign(&mut self, servers: Vec<NodeId>) {
        *self = AuthorityList::new(servers);
    }
}

/// A registered mail user.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct UserRecord {
    /// Dense id.
    pub id: UserId,
    /// Fully qualified name.
    pub name: MailName,
    /// The host node the user sits at (primary location under System 2).
    pub home_host: NodeId,
    /// Primary-first authority servers.
    pub authorities: AuthorityList,
}

impl UserRecord {
    /// Creates a record.
    pub fn new(id: UserId, name: MailName, home_host: NodeId, authorities: AuthorityList) -> Self {
        UserRecord {
            id,
            name,
            home_host,
            authorities,
        }
    }
}

impl fmt::Display for UserRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @host n{} (primary s=n{})",
            self.id,
            self.name,
            self.home_host.0,
            self.authorities.primary().0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authority_list_ordering() {
        let l = AuthorityList::new(vec![NodeId(2), NodeId(7)]);
        assert_eq!(l.primary(), NodeId(2));
        assert_eq!(l.rank_of(NodeId(7)), Some(1));
        assert_eq!(l.rank_of(NodeId(9)), None);
        assert!(l.contains(NodeId(2)));
        assert!(!l.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_list_panics() {
        let _ = AuthorityList::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate authority server")]
    fn duplicate_servers_panic() {
        let _ = AuthorityList::new(vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    fn reassignment_replaces_servers() {
        let mut l = AuthorityList::new(vec![NodeId(1)]);
        l.reassign(vec![NodeId(4), NodeId(5)]);
        assert_eq!(l.primary(), NodeId(4));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn user_record_display() {
        let r = UserRecord::new(
            UserId(3),
            "east.vax1.alice".parse().unwrap(),
            NodeId(9),
            AuthorityList::new(vec![NodeId(1)]),
        );
        let s = r.to_string();
        assert!(s.contains("u3") && s.contains("alice") && s.contains("n9"));
    }
}
