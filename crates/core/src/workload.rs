//! Synthetic mail workloads.
//!
//! The paper gives no traffic traces; its claims are distributional (polls
//! per retrieval, load balance, broadcast cost), so experiments drive the
//! systems with Poisson mail submission per user, Zipf-skewed recipient
//! popularity, and a locality bias (most mail stays inside the sender's
//! region, the premise behind the paper's region-first forwarding).

use lems_net::topology::RegionId;
use lems_sim::rng::SimRng;
use lems_sim::time::{SimDuration, SimTime};

use crate::user::UserId;

/// Workload generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Mean time between two sends by one user (exponential).
    pub mean_interarrival: SimDuration,
    /// Mean time between two mailbox checks by one user (exponential).
    pub mean_check_interval: SimDuration,
    /// Probability that a message's recipient is in the sender's region.
    pub local_bias: f64,
    /// Zipf exponent for recipient popularity (0.0 = uniform).
    pub zipf_exponent: f64,
    /// Events are generated for `[0, horizon)`.
    pub horizon: SimTime,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mean_interarrival: SimDuration::from_units(50.0),
            mean_check_interval: SimDuration::from_units(20.0),
            local_bias: 0.8,
            zipf_exponent: 0.8,
            horizon: SimTime::from_units(1_000.0),
        }
    }
}

/// One generated workload event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum WorkloadEvent {
    /// `from` submits a message addressed to `to`.
    Send {
        /// Submission instant.
        at: SimTime,
        /// Sending user.
        from: UserId,
        /// Receiving user.
        to: UserId,
    },
    /// `user` checks their mail.
    CheckMail {
        /// Check instant.
        at: SimTime,
        /// The checking user.
        user: UserId,
    },
}

impl WorkloadEvent {
    /// The instant the event occurs.
    pub fn at(&self) -> SimTime {
        match *self {
            WorkloadEvent::Send { at, .. } | WorkloadEvent::CheckMail { at, .. } => at,
        }
    }
}

/// A generated, time-sorted workload.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    events: Vec<WorkloadEvent>,
    sends: usize,
    checks: usize,
}

impl Workload {
    /// The events, ascending by time.
    pub fn events(&self) -> &[WorkloadEvent] {
        &self.events
    }

    /// Number of send events.
    pub fn send_count(&self) -> usize {
        self.sends
    }

    /// Number of check-mail events.
    pub fn check_count(&self) -> usize {
        self.checks
    }

    /// Total event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were generated.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Generates a workload over `population`, a slice of `(user, region)`
/// pairs.
///
/// Recipient choice: with probability [`WorkloadConfig::local_bias`] the
/// recipient is drawn from the sender's region (excluding the sender),
/// otherwise from the whole population; either draw is weighted by a Zipf
/// distribution over a per-run random popularity permutation, so "popular"
/// users receive disproportionately much mail.
///
/// Deterministic for a given `rng` state and input ordering.
///
/// # Examples
///
/// ```
/// use lems_core::workload::{generate, WorkloadConfig};
/// use lems_core::user::UserId;
/// use lems_net::topology::RegionId;
/// use lems_sim::rng::SimRng;
///
/// let pop: Vec<(UserId, RegionId)> =
///     (0..10).map(|i| (UserId(i), RegionId(i % 2))).collect();
/// let mut rng = SimRng::seed(1);
/// let wl = generate(&mut rng, &pop, &WorkloadConfig::default());
/// assert!(wl.send_count() > 0);
/// assert!(wl.events().windows(2).all(|w| w[0].at() <= w[1].at()));
/// ```
///
/// # Panics
///
/// Panics if `population` has fewer than two users (nobody to mail) or
/// `local_bias` is outside `[0, 1]`.
pub fn generate(
    rng: &mut SimRng,
    population: &[(UserId, RegionId)],
    cfg: &WorkloadConfig,
) -> Workload {
    assert!(
        population.len() >= 2,
        "workload needs at least two users, got {}",
        population.len()
    );
    assert!(
        (0.0..=1.0).contains(&cfg.local_bias),
        "local_bias must be in [0,1]"
    );

    // Zipf popularity over a random permutation of the population.
    let n = population.len();
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let mut weight = vec![0.0f64; n];
    for (rank, &idx) in perm.iter().enumerate() {
        weight[idx] = 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent);
    }

    // Per-region index for local draws.
    let mut regions = std::collections::BTreeMap::<RegionId, Vec<usize>>::new();
    for (i, &(_, r)) in population.iter().enumerate() {
        regions.entry(r).or_default().push(i);
    }

    let mut events = Vec::new();
    let mut sends = 0;
    let mut checks = 0;

    for (i, &(user, region)) in population.iter().enumerate() {
        // Send process.
        let mut t = SimTime::ZERO + rng.exp_duration(cfg.mean_interarrival);
        while t < cfg.horizon {
            let local = rng.chance(cfg.local_bias);
            let candidates: &[usize] = if local { &regions[&region] } else { &perm };
            // Weighted pick excluding self; retry a few times then fall back
            // to any other user.
            let mut to_idx = None;
            for _ in 0..8 {
                let w: Vec<f64> = candidates.iter().map(|&c| weight[c]).collect();
                let pick = candidates[rng.weighted_index(&w)];
                if pick != i {
                    to_idx = Some(pick);
                    break;
                }
            }
            let to_idx = to_idx.unwrap_or_else(|| {
                // Deterministic fallback: next user cyclically.
                let mut j = (i + 1) % n;
                while j == i {
                    j = (j + 1) % n;
                }
                j
            });
            events.push(WorkloadEvent::Send {
                at: t,
                from: user,
                to: population[to_idx].0,
            });
            sends += 1;
            t += rng.exp_duration(cfg.mean_interarrival);
        }
        // Check process.
        let mut t = SimTime::ZERO + rng.exp_duration(cfg.mean_check_interval);
        while t < cfg.horizon {
            events.push(WorkloadEvent::CheckMail { at: t, user });
            checks += 1;
            t += rng.exp_duration(cfg.mean_check_interval);
        }
    }

    events.sort_by_key(WorkloadEvent::at);
    Workload {
        events,
        sends,
        checks,
    }
}

/// A user-mobility schedule for System-2 experiments: who logs in where,
/// when.
#[derive(Clone, Debug, Default)]
pub struct MobilitySchedule {
    /// `(instant, user, host index into the caller's host list)`,
    /// ascending by time.
    pub logins: Vec<(SimTime, UserId, usize)>,
}

/// Parameters for [`generate_mobility`].
#[derive(Clone, Copy, Debug)]
pub struct MobilityConfig {
    /// Mean time between two moves by one user (exponential).
    pub mean_move_interval: SimDuration,
    /// Probability that a move returns the user to their primary host
    /// (index 0 by convention) rather than a random other host.
    pub homing_bias: f64,
    /// Events are generated for `[0, horizon)`.
    pub horizon: SimTime,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            mean_move_interval: SimDuration::from_units(200.0),
            homing_bias: 0.5,
            horizon: SimTime::from_units(1_000.0),
        }
    }
}

/// Generates login events for `users` over `host_count` hosts: each user
/// starts at host 0 (their primary by convention) and moves at
/// exponential intervals, returning home with the configured bias.
///
/// # Panics
///
/// Panics if `host_count == 0` or `homing_bias` is outside `[0, 1]`.
pub fn generate_mobility(
    rng: &mut SimRng,
    users: &[UserId],
    host_count: usize,
    cfg: &MobilityConfig,
) -> MobilitySchedule {
    assert!(host_count > 0, "need at least one host");
    assert!(
        (0.0..=1.0).contains(&cfg.homing_bias),
        "homing_bias must be in [0,1]"
    );
    let mut logins = Vec::new();
    for &u in users {
        logins.push((SimTime::ZERO, u, 0));
        let mut t = SimTime::ZERO + rng.exp_duration(cfg.mean_move_interval);
        while t < cfg.horizon {
            let dest = if host_count == 1 || rng.chance(cfg.homing_bias) {
                0
            } else {
                1 + rng.index(host_count - 1)
            };
            logins.push((t, u, dest));
            t += rng.exp_duration(cfg.mean_move_interval);
        }
    }
    logins.sort_by_key(|&(at, u, _)| (at, u));
    MobilitySchedule { logins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pop(n: usize, regions: usize) -> Vec<(UserId, RegionId)> {
        (0..n).map(|i| (UserId(i), RegionId(i % regions))).collect()
    }

    #[test]
    fn events_are_sorted_and_bounded() {
        let mut rng = SimRng::seed(2);
        let cfg = WorkloadConfig::default();
        let wl = generate(&mut rng, &pop(20, 4), &cfg);
        assert!(wl.events().windows(2).all(|w| w[0].at() <= w[1].at()));
        assert!(wl.events().iter().all(|e| e.at() < cfg.horizon));
        assert_eq!(wl.len(), wl.send_count() + wl.check_count());
    }

    #[test]
    fn nobody_mails_themselves() {
        let mut rng = SimRng::seed(3);
        let wl = generate(&mut rng, &pop(5, 1), &WorkloadConfig::default());
        for e in wl.events() {
            if let WorkloadEvent::Send { from, to, .. } = e {
                assert_ne!(from, to);
            }
        }
    }

    #[test]
    fn local_bias_keeps_mail_in_region() {
        let mut rng = SimRng::seed(4);
        let population = pop(40, 4);
        let cfg = WorkloadConfig {
            local_bias: 1.0,
            horizon: SimTime::from_units(2_000.0),
            ..WorkloadConfig::default()
        };
        let wl = generate(&mut rng, &population, &cfg);
        let region_of = |u: UserId| population[u.0].1;
        for e in wl.events() {
            if let WorkloadEvent::Send { from, to, .. } = e {
                assert_eq!(region_of(*from), region_of(*to));
            }
        }
    }

    #[test]
    fn zipf_skews_recipients() {
        let mut rng = SimRng::seed(5);
        let population = pop(30, 1);
        let cfg = WorkloadConfig {
            zipf_exponent: 1.2,
            local_bias: 0.0,
            horizon: SimTime::from_units(5_000.0),
            ..WorkloadConfig::default()
        };
        let wl = generate(&mut rng, &population, &cfg);
        let mut counts = vec![0usize; 30];
        for e in wl.events() {
            if let WorkloadEvent::Send { to, .. } = e {
                counts[to.0] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top3: usize = counts[..3].iter().sum();
        let bottom10: usize = counts[20..].iter().sum();
        assert!(
            top3 > bottom10,
            "expected skew: top3={top3} bottom10={bottom10}"
        );
    }

    #[test]
    fn mobility_schedule_starts_everyone_home() {
        let mut rng = SimRng::seed(9);
        let users: Vec<UserId> = (0..5).map(UserId).collect();
        let sched = generate_mobility(&mut rng, &users, 4, &MobilityConfig::default());
        // First event per user is at t=0, host 0.
        for &u in &users {
            let first = sched
                .logins
                .iter()
                .find(|&&(_, user, _)| user == u)
                .unwrap();
            assert_eq!(first.0, SimTime::ZERO);
            assert_eq!(first.2, 0);
        }
        // Sorted by time.
        assert!(sched.logins.windows(2).all(|w| w[0].0 <= w[1].0));
        // Host indices in range.
        assert!(sched.logins.iter().all(|&(_, _, h)| h < 4));
    }

    #[test]
    fn full_homing_bias_never_roams() {
        let mut rng = SimRng::seed(10);
        let users: Vec<UserId> = (0..3).map(UserId).collect();
        let cfg = MobilityConfig {
            homing_bias: 1.0,
            ..MobilityConfig::default()
        };
        let sched = generate_mobility(&mut rng, &users, 4, &cfg);
        assert!(sched.logins.iter().all(|&(_, _, h)| h == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        let a = generate(&mut SimRng::seed(7), &pop(10, 2), &cfg);
        let b = generate(&mut SimRng::seed(7), &pop(10, 2), &cfg);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    #[should_panic(expected = "at least two users")]
    fn tiny_population_panics() {
        let mut rng = SimRng::seed(1);
        let _ = generate(&mut rng, &pop(1, 1), &WorkloadConfig::default());
    }

    proptest! {
        /// Rate sanity: halving the mean interarrival roughly doubles the
        /// number of sends.
        #[test]
        fn send_rate_scales(seed in 0u64..20) {
            let population = pop(10, 2);
            let slow = WorkloadConfig {
                mean_interarrival: SimDuration::from_units(100.0),
                ..WorkloadConfig::default()
            };
            let fast = WorkloadConfig {
                mean_interarrival: SimDuration::from_units(50.0),
                ..WorkloadConfig::default()
            };
            let ws = generate(&mut SimRng::seed(seed), &population, &slow);
            let wf = generate(&mut SimRng::seed(seed), &population, &fast);
            let ratio = wf.send_count() as f64 / ws.send_count().max(1) as f64;
            prop_assert!(ratio > 1.4 && ratio < 2.8, "ratio {ratio}");
        }
    }
}
