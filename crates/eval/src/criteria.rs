//! The §4 performance criteria: efficiency, reliability, flexibility,
//! cost.
//!
//! "The main performance measures are efficiency, reliability,
//! flexibility, and cost. Actually some of these performance measures may
//! have conflicting requirements with each other… it is necessary for
//! designers and administrators to weigh different alternatives and
//! strike a balance."
//!
//! Each criterion is a bag of concrete measurements taken from simulation
//! runs; [`Scorecard`] bundles all four for one system under one scenario
//! so the C7 experiment can put the three designs side by side.

use serde::{Deserialize, Serialize};

/// §4.1: "connection set-up time, message transportation, message
/// delivery, name resolution, message storage, caching capability, and
/// receiving server notification for existence of mail."
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Efficiency {
    /// Mean attempts needed to reach a live server at submission.
    pub connection_attempts_mean: f64,
    /// Mean submission-to-deposit latency (time units).
    pub delivery_latency_mean: f64,
    /// Mean submission-to-retrieval latency (time units).
    pub end_to_end_latency_mean: f64,
    /// Mean server polls per mailbox check.
    pub retrieval_polls_mean: f64,
    /// Notifications delivered per deposited message.
    pub notification_rate: f64,
}

/// §4.2: "users can have confidence that their messages, once accepted
/// for delivery, will be made available to the intended recipient or
/// returned with proper error messages."
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Reliability {
    /// Fraction of submitted messages eventually retrieved.
    pub delivered_fraction: f64,
    /// Fraction bounced back with an error (still "reliable" by the
    /// paper's definition — the sender learns).
    pub bounced_fraction: f64,
    /// Fraction silently lost: neither retrieved nor bounced once the
    /// scenario has drained. The paper's claim is zero.
    pub lost_fraction: f64,
    /// Mean server availability during the scenario.
    pub availability_mean: f64,
}

/// §4.3: "the ability to provide wide range of functions, to minimize
/// restrictions and constraints on users, and to adjust to changes in the
/// system: user migration, group naming, system reconfiguration."
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Flexibility {
    /// Whether a within-region move forces a name change.
    pub move_requires_rename: bool,
    /// Whether recipients can be addressed by predicate (group naming).
    pub supports_group_naming: bool,
    /// Users whose assignment changed during the scenario's
    /// reconfiguration step (lower = less disruptive).
    pub reconfig_moved_users: u64,
    /// Servers whose tables had to change during reconfiguration.
    pub reconfig_tables_touched: usize,
}

/// §4.4: "response time, storage space used, implementation overhead."
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Cost {
    /// Protocol messages sent per successfully delivered message.
    pub messages_per_delivery: f64,
    /// Total communication spent, in weight/time units.
    pub total_comm_units: f64,
    /// Peak number of messages buffered in server storage.
    pub peak_storage: u64,
}

/// All four criteria for one system on one scenario.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Scorecard {
    /// System label (e.g. "syntax-directed").
    pub system: String,
    /// Scenario label (workload / failure description).
    pub scenario: String,
    /// §4.1 numbers.
    pub efficiency: Efficiency,
    /// §4.2 numbers.
    pub reliability: Reliability,
    /// §4.3 numbers.
    pub flexibility: Flexibility,
    /// §4.4 numbers.
    pub cost: Cost,
}

impl Scorecard {
    /// Creates a named scorecard with zeroed metrics.
    pub fn new(system: impl Into<String>, scenario: impl Into<String>) -> Self {
        Scorecard {
            system: system.into(),
            scenario: scenario.into(),
            ..Scorecard::default()
        }
    }

    /// Sanity check: fractions in range, non-negative means. Returns the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("delivered_fraction", self.reliability.delivered_fraction),
            ("bounced_fraction", self.reliability.bounced_fraction),
            ("lost_fraction", self.reliability.lost_fraction),
            ("availability_mean", self.reliability.availability_mean),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} out of [0,1]: {v}"));
            }
        }
        let sums = self.reliability.delivered_fraction
            + self.reliability.bounced_fraction
            + self.reliability.lost_fraction;
        if !(0.0..=1.0 + 1e-9).contains(&sums) {
            return Err(format!("delivery fractions sum to {sums}"));
        }
        let non_neg = [
            self.efficiency.connection_attempts_mean,
            self.efficiency.delivery_latency_mean,
            self.efficiency.end_to_end_latency_mean,
            self.efficiency.retrieval_polls_mean,
            self.cost.messages_per_delivery,
            self.cost.total_comm_units,
        ];
        if non_neg.iter().any(|&v| v < 0.0 || !v.is_finite()) {
            return Err("negative or non-finite efficiency/cost metric".to_owned());
        }
        Ok(())
    }
}

/// Designer-chosen weights for ranking scorecards (§4: "it is necessary
/// for designers and administrators to weigh different alternatives and
/// strike a balance between the benefits and the costs").
///
/// Each criterion is first normalised across the compared scorecards to
/// `[0, 1]` (1 = best), then combined by these weights.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CriteriaWeights {
    /// Weight on efficiency (lower latency/polls is better).
    pub efficiency: f64,
    /// Weight on reliability (delivered high, lost low).
    pub reliability: f64,
    /// Weight on flexibility (rename-free moves, group naming, cheap
    /// reconfiguration).
    pub flexibility: f64,
    /// Weight on cost (fewer messages and comm units is better).
    pub cost: f64,
}

impl Default for CriteriaWeights {
    fn default() -> Self {
        CriteriaWeights {
            efficiency: 1.0,
            reliability: 1.0,
            flexibility: 1.0,
            cost: 1.0,
        }
    }
}

/// Scores to `[0, 1]`-ish per criterion and ranks the scorecards best
/// first under `weights`. Returns `(index into cards, weighted score)`.
///
/// Normalisation is min-max within the compared set per metric, so the
/// result is a *relative* ranking — exactly the designer's trade-off
/// exercise the paper describes, not an absolute grade.
pub fn rank(cards: &[Scorecard], weights: &CriteriaWeights) -> Vec<(usize, f64)> {
    if cards.is_empty() {
        return Vec::new();
    }
    // Lower-is-better metrics per criterion.
    let eff = |c: &Scorecard| {
        c.efficiency.end_to_end_latency_mean
            + c.efficiency.retrieval_polls_mean
            + c.efficiency.connection_attempts_mean
    };
    let rel = |c: &Scorecard| {
        // Higher delivered, lower lost: make lower-better.
        1.0 - c.reliability.delivered_fraction + 2.0 * c.reliability.lost_fraction
    };
    let flex = |c: &Scorecard| {
        let mut penalty = c.flexibility.reconfig_moved_users as f64;
        if c.flexibility.move_requires_rename {
            penalty += 100.0;
        }
        if !c.flexibility.supports_group_naming {
            penalty += 50.0;
        }
        penalty
    };
    let cost = |c: &Scorecard| c.cost.messages_per_delivery + c.cost.total_comm_units / 100.0;

    let normalise = |vals: Vec<f64>| -> Vec<f64> {
        let lo = vals.iter().copied().fold(f64::MAX, f64::min);
        let hi = vals.iter().copied().fold(f64::MIN, f64::max);
        vals.into_iter()
            .map(|v| {
                if (hi - lo).abs() < 1e-12 {
                    1.0
                } else {
                    1.0 - (v - lo) / (hi - lo) // lower metric -> higher score
                }
            })
            .collect()
    };

    let e = normalise(cards.iter().map(eff).collect());
    let r = normalise(cards.iter().map(rel).collect());
    let f = normalise(cards.iter().map(flex).collect());
    let k = normalise(cards.iter().map(cost).collect());

    let total_w = weights.efficiency + weights.reliability + weights.flexibility + weights.cost;
    let mut scored: Vec<(usize, f64)> = (0..cards.len())
        .map(|i| {
            let s = (e[i] * weights.efficiency
                + r[i] * weights.reliability
                + f[i] * weights.flexibility
                + k[i] * weights.cost)
                / total_w.max(1e-12);
            (i, s)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scorecard_is_valid() {
        let s = Scorecard::new("syntax-directed", "fig1-steady");
        assert_eq!(s.system, "syntax-directed");
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fractions() {
        let mut s = Scorecard::new("x", "y");
        s.reliability.delivered_fraction = 1.5;
        assert!(s.validate().unwrap_err().contains("delivered_fraction"));

        let mut s = Scorecard::new("x", "y");
        s.reliability.delivered_fraction = 0.8;
        s.reliability.bounced_fraction = 0.5;
        assert!(s.validate().unwrap_err().contains("sum"));

        let mut s = Scorecard::new("x", "y");
        s.cost.messages_per_delivery = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn ranking_responds_to_weights() {
        let mut fast = Scorecard::new("fast-but-rigid", "s");
        fast.efficiency.end_to_end_latency_mean = 10.0;
        fast.flexibility.move_requires_rename = true;
        fast.cost.total_comm_units = 100.0;

        let mut flexible = Scorecard::new("flexible-but-slow", "s");
        flexible.efficiency.end_to_end_latency_mean = 50.0;
        flexible.flexibility.move_requires_rename = false;
        flexible.flexibility.supports_group_naming = true;
        flexible.cost.total_comm_units = 300.0;

        let cards = vec![fast, flexible];
        // Efficiency-weighted: the fast system wins.
        let eff_first = rank(
            &cards,
            &CriteriaWeights {
                efficiency: 10.0,
                flexibility: 0.1,
                ..CriteriaWeights::default()
            },
        );
        assert_eq!(eff_first[0].0, 0);
        // Flexibility-weighted: the flexible system wins.
        let flex_first = rank(
            &cards,
            &CriteriaWeights {
                efficiency: 0.1,
                flexibility: 10.0,
                ..CriteriaWeights::default()
            },
        );
        assert_eq!(flex_first[0].0, 1);
        // Scores are in [0, 1] and sorted descending.
        for w in [eff_first, flex_first] {
            assert!(w.windows(2).all(|p| p[0].1 >= p[1].1));
            assert!(w.iter().all(|&(_, s)| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn empty_ranking_is_empty() {
        assert!(rank(&[], &CriteriaWeights::default()).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut s = Scorecard::new("attribute-based", "broadcast");
        s.flexibility.supports_group_naming = true;
        s.efficiency.retrieval_polls_mean = 1.1;
        let json = serde_json::to_string(&s).unwrap();
        let back: Scorecard = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
