//! # lems-eval — the §4 evaluation criteria
//!
//! *"Designing Large Electronic Mail Systems"* (Bahaa-El-Din & Yuen,
//! ICDCS 1988) closes with criteria for evaluating mail systems:
//! **efficiency**, **reliability**, **flexibility**, and **cost**. This
//! crate turns those into a concrete metrics framework:
//!
//! * [`criteria`] — one struct per criterion plus the combined
//!   [`criteria::Scorecard`];
//! * [`report`] — side-by-side comparison tables and JSON export (the C7
//!   experiment's output format).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criteria;
pub mod report;

pub use criteria::{rank, Cost, CriteriaWeights, Efficiency, Flexibility, Reliability, Scorecard};
pub use report::{comparison_table, to_json};
