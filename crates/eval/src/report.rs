//! Rendering scorecards side by side (the C7 experiment's output).

use std::fmt::Write;

use crate::criteria::Scorecard;

/// Renders a fixed-width comparison table of several scorecards, one
/// column per system, one row per metric — the shape of §4's discussion.
///
/// # Examples
///
/// ```
/// use lems_eval::criteria::Scorecard;
/// use lems_eval::report::comparison_table;
///
/// let a = Scorecard::new("syntax", "s");
/// let b = Scorecard::new("locindep", "s");
/// let table = comparison_table(&[a, b]);
/// assert!(table.contains("syntax"));
/// assert!(table.contains("retrieval polls"));
/// ```
pub fn comparison_table(cards: &[Scorecard]) -> String {
    let mut out = String::new();
    let label_width = 28;
    let col_width = cards
        .iter()
        .map(|c| c.system.len())
        .max()
        .unwrap_or(0)
        .max(14)
        + 2;

    let mut header = String::new();
    for c in cards {
        let _ = write!(header, "{:>col_width$}", c.system);
    }
    let _ = writeln!(out, "{:<label_width$}{header}", "criterion");
    out.push_str(&"-".repeat(label_width + col_width * cards.len()));
    out.push('\n');

    let mut row = |label: &str, values: Vec<String>| {
        let mut cols = String::new();
        for v in values {
            let _ = write!(cols, "{v:>col_width$}");
        }
        let _ = writeln!(out, "{label:<label_width$}{cols}");
    };

    row(
        "connection attempts",
        cards
            .iter()
            .map(|c| format!("{:.3}", c.efficiency.connection_attempts_mean))
            .collect(),
    );
    row(
        "delivery latency (u)",
        cards
            .iter()
            .map(|c| format!("{:.3}", c.efficiency.delivery_latency_mean))
            .collect(),
    );
    row(
        "end-to-end latency (u)",
        cards
            .iter()
            .map(|c| format!("{:.3}", c.efficiency.end_to_end_latency_mean))
            .collect(),
    );
    row(
        "retrieval polls",
        cards
            .iter()
            .map(|c| format!("{:.3}", c.efficiency.retrieval_polls_mean))
            .collect(),
    );
    row(
        "delivered fraction",
        cards
            .iter()
            .map(|c| format!("{:.4}", c.reliability.delivered_fraction))
            .collect(),
    );
    row(
        "bounced fraction",
        cards
            .iter()
            .map(|c| format!("{:.4}", c.reliability.bounced_fraction))
            .collect(),
    );
    row(
        "lost fraction",
        cards
            .iter()
            .map(|c| format!("{:.4}", c.reliability.lost_fraction))
            .collect(),
    );
    row(
        "move requires rename",
        cards
            .iter()
            .map(|c| c.flexibility.move_requires_rename.to_string())
            .collect(),
    );
    row(
        "group naming",
        cards
            .iter()
            .map(|c| c.flexibility.supports_group_naming.to_string())
            .collect(),
    );
    row(
        "reconfig moved users",
        cards
            .iter()
            .map(|c| c.flexibility.reconfig_moved_users.to_string())
            .collect(),
    );
    row(
        "msgs per delivery",
        cards
            .iter()
            .map(|c| format!("{:.3}", c.cost.messages_per_delivery))
            .collect(),
    );
    row(
        "total comm (u)",
        cards
            .iter()
            .map(|c| format!("{:.1}", c.cost.total_comm_units))
            .collect(),
    );

    out
}

/// Serialises scorecards to pretty JSON (for EXPERIMENTS.md artifacts).
/// Serialisation cannot fail for these types; a failure would surface as
/// an error object rather than a panic.
pub fn to_json(cards: &[Scorecard]) -> String {
    serde_json::to_string_pretty(cards)
        .unwrap_or_else(|e| format!("{{\"error\":\"serialisation failed: {e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_systems_and_rows() {
        let mut a = Scorecard::new("syntax", "s");
        a.efficiency.retrieval_polls_mean = 1.23;
        let mut b = Scorecard::new("attr", "s");
        b.flexibility.supports_group_naming = true;
        let t = comparison_table(&[a, b]);
        assert!(t.contains("syntax") && t.contains("attr"));
        assert!(t.contains("1.230"));
        assert!(t.contains("group naming"));
        assert!(t.lines().count() >= 12);
    }

    #[test]
    fn json_round_trips() {
        let cards = vec![Scorecard::new("a", "s"), Scorecard::new("b", "s")];
        let json = to_json(&cards);
        let back: Vec<Scorecard> = serde_json::from_str(&json).unwrap();
        assert_eq!(cards, back);
    }
}
