//! The simulated System-2 mail system (§3.2.2): location-independent
//! access within a region, as running actors.
//!
//! Differences from the System-1 pipeline in `lems_syntax::actors`:
//!
//! * **Connection setup** — "a user always contacts the nearest active
//!   server" of the region, not a per-user authority list;
//! * **Resolution** — the accepting server hashes the recipient's name to
//!   its sub-group server (no per-user routing tables);
//! * **Login tracking** — "whenever a user logs on to a host, the host
//!   will inform the nearest active server"; the region's servers
//!   cooperate to answer "where is this user now?";
//! * **Delivery** — the sub-group server stores the mail and notifies the
//!   user at their *current* host, consulting peer servers when the user
//!   is away from their primary location (the §3.2.2c overhead that
//!   "is only incurred if a user moves").

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use lems_core::mailbox::Mailbox;
use lems_core::message::{Message, MessageId, MessageIdGen};
use lems_core::name::MailName;
use lems_core::store::MailStore;
use lems_net::graph::NodeId;
use lems_net::topology::Topology;
use lems_net::transport::Transport;
use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx, TimerId};
use lems_sim::metrics::MetricsRegistry;
use lems_sim::session::RetryPolicy;
use lems_sim::stats::Summary;
use lems_sim::time::{SimDuration, SimTime};
use lems_store::DurabilityConfig;

use crate::subgroup::SubgroupMap;

/// Extra timeout slack on top of the round trip (processing, headroom).
pub const TIMEOUT_SLACK: f64 = 2.0;

/// The System-2 protocol.
#[derive(Clone, Debug)]
pub enum RoamMsg {
    /// Injection: `user` logs on at the receiving host.
    DoLogin {
        /// The user logging in.
        user: MailName,
    },
    /// Injection: a user on this host sends mail.
    DoSend {
        /// Sender (must be logged in here).
        from: MailName,
        /// Recipient.
        to: MailName,
    },
    /// Host -> nearest server: `user` is now at `host`.
    LoginReport {
        /// The user.
        user: MailName,
        /// Their current host.
        host: NodeId,
        /// When the login happened (hosts and servers share coarsely
        /// synchronised clocks, the same assumption GetMail makes).
        at: SimTime,
    },
    /// Server -> server: new location broadcast ("all servers in a region
    /// will cooperate to keep track of the movement of users").
    /// Timestamped so racing broadcasts over different-length paths
    /// resolve last-writer-wins instead of last-arrival-wins.
    LocationUpdate {
        /// The user.
        user: MailName,
        /// Their current host.
        host: NodeId,
        /// When the login happened.
        at: SimTime,
    },
    /// UI -> server / server -> server: deliver this message.
    Deliver {
        /// The message.
        msg: Message,
    },
    /// Hop-by-hop receipt for [`RoamMsg::Deliver`]: the next hop took
    /// custody of the message, so the sender stops retransmitting.
    DeliverAck {
        /// The message received.
        id: MessageId,
    },
    /// Sub-group server -> peer: where is `user`? (asked when the user is
    /// not at their primary location and this server has no record).
    WhereIs {
        /// The user sought.
        user: MailName,
        /// Message awaiting the answer.
        pending: MessageId,
        /// Who is asking.
        reply_to: NodeId,
    },
    /// Peer's answer to [`RoamMsg::WhereIs`].
    LocationReply {
        /// The pending message this answers.
        pending: MessageId,
        /// The host, if this peer knows.
        host: Option<NodeId>,
    },
    /// Server -> host: mail for `user` arrived (alert signal).
    Notify {
        /// The recipient.
        user: MailName,
        /// The message.
        id: MessageId,
    },
}

/// Shared statistics for a System-2 run.
#[derive(Debug, Default)]
pub struct RoamStats {
    /// Messages submitted.
    pub submitted: u64,
    /// Messages stored at their sub-group server.
    pub stored: u64,
    /// Notifications that reached the user's current host.
    pub notified: u64,
    /// Notifications delivered at the user's *primary* host without any
    /// lookup (the free path).
    pub notified_at_primary: u64,
    /// Cross-server `WhereIs` consultations.
    pub consults: u64,
    /// Lookups that failed everywhere (user never logged in anywhere).
    pub unknown_location: u64,
    /// Session-layer retransmissions of `Deliver` hops.
    pub retransmits: u64,
    /// Messages abandoned after the retry budget ran out on every
    /// candidate (the mail is lost — should stay zero under any fault
    /// plan the session layer is expected to mask).
    pub delivery_failures: u64,
    /// Submission-to-notification latency (units).
    pub notify_latency: Summary,
}

type SharedStats = Rc<RefCell<RoamStats>>;

/// A mail submission awaiting its hop-by-hop ack.
struct SendTask {
    msg: Message,
    /// Server currently being probed.
    current: NodeId,
    /// Probes already sent to `current`.
    attempts: u32,
    /// Servers not yet tried, nearest first.
    remaining: Vec<NodeId>,
    /// Pending timeout (guards against stale timers).
    timer: TimerId,
}

/// A host: forwards logins and sends to the nearest server.
pub struct RoamHost {
    node: NodeId,
    nearest_server: NodeId,
    /// Every region server, nearest first — the failover order for
    /// submissions when the nearest server stops acking.
    server_ring: Vec<NodeId>,
    transport: Rc<Transport>,
    id_gen: Rc<RefCell<MessageIdGen>>,
    stats: SharedStats,
    retry: RetryPolicy,
    server_proc: f64,
    /// Submissions awaiting a [`RoamMsg::DeliverAck`].
    pending_sends: BTreeMap<MessageId, SendTask>,
    /// Alerts received per user.
    pub alerts: BTreeMap<MailName, u64>,
    /// Per-host telemetry (submissions, retransmits, alerts).
    pub metrics: MetricsRegistry,
}

impl RoamHost {
    fn timeout_for(&self, server: NodeId) -> SimDuration {
        let rtt = self.transport.delay(self.node, server) * 2;
        rtt + SimDuration::from_units(self.server_proc + TIMEOUT_SLACK)
    }

    /// Sends (or retransmits) `msg` to `server` and arms the session
    /// timeout.
    fn send_probe(
        &mut self,
        msg: Message,
        server: NodeId,
        attempt: u32,
        remaining: Vec<NodeId>,
        ctx: &mut Ctx<'_, RoamMsg>,
    ) {
        if attempt > 0 {
            self.stats.borrow_mut().retransmits += 1;
            self.metrics.inc("retransmits");
        }
        self.metrics.inc("submit_probes");
        let timeout = self
            .retry
            .timeout(self.timeout_for(server), attempt, ctx.rng());
        self.transport.send(
            ctx,
            self.node,
            server,
            RoamMsg::Deliver { msg: msg.clone() },
            SimDuration::ZERO,
        );
        let timer = ctx.set_timer(timeout, msg.id.0);
        self.pending_sends.insert(
            msg.id,
            SendTask {
                msg,
                current: server,
                attempts: attempt + 1,
                remaining,
                timer,
            },
        );
    }
}

impl Actor for RoamHost {
    type Msg = RoamMsg;

    fn on_message(&mut self, _from: ActorId, msg: RoamMsg, ctx: &mut Ctx<'_, RoamMsg>) {
        match msg {
            RoamMsg::DoLogin { user } => {
                // "the host will inform the nearest active server".
                self.transport.send(
                    ctx,
                    self.node,
                    self.nearest_server,
                    RoamMsg::LoginReport {
                        user,
                        host: self.node,
                        at: ctx.now(),
                    },
                    SimDuration::ZERO,
                );
            }
            RoamMsg::DoSend { from, to } => {
                let id = self.id_gen.borrow_mut().next_id();
                self.stats.borrow_mut().submitted += 1;
                self.metrics.inc("submitted");
                let m = Message::new(id, from, to, "msg", "body", ctx.now());
                let mut ring = self.server_ring.clone();
                let first = if ring.is_empty() {
                    self.nearest_server
                } else {
                    ring.remove(0)
                };
                self.send_probe(m, first, 0, ring, ctx);
            }
            RoamMsg::DeliverAck { id } => {
                if let Some(task) = self.pending_sends.remove(&id) {
                    ctx.cancel_timer(task.timer);
                }
            }
            RoamMsg::Notify { user, .. } => {
                *self.alerts.entry(user).or_insert(0) += 1;
                self.metrics.inc("alerts");
            }
            // Server-bound traffic; a host receiving these ignores them.
            RoamMsg::LoginReport { .. }
            | RoamMsg::LocationUpdate { .. }
            | RoamMsg::Deliver { .. }
            | RoamMsg::WhereIs { .. }
            | RoamMsg::LocationReply { .. } => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, tag: u64, ctx: &mut Ctx<'_, RoamMsg>) {
        let Some(task) = self.pending_sends.remove(&MessageId(tag)) else {
            return;
        };
        if task.timer != id {
            // Stale timer from a superseded probe.
            self.pending_sends.insert(task.msg.id, task);
            return;
        }
        if self.retry.exhausted(task.attempts) {
            let mut remaining = task.remaining;
            if remaining.is_empty() {
                // Every candidate exhausted its budget: the mail is lost.
                self.stats.borrow_mut().delivery_failures += 1;
                self.metrics.inc("delivery_failures");
            } else {
                let next = remaining.remove(0);
                self.send_probe(task.msg, next, 0, remaining, ctx);
            }
        } else {
            self.send_probe(task.msg, task.current, task.attempts, task.remaining, ctx);
        }
    }
}

/// A message parked while its recipient's location is being resolved.
#[derive(Clone, Debug)]
struct PendingLookup {
    msg: Message,
    peers_left: Vec<NodeId>,
}

/// A sub-group handoff awaiting its hop-by-hop ack.
struct RelayTask {
    msg: Message,
    /// Probes already sent to the responsible peer.
    attempts: u32,
    /// Pending timeout (guards against stale timers).
    timer: TimerId,
}

/// A System-2 region server.
pub struct RoamServer {
    node: NodeId,
    transport: Rc<Transport>,
    subgroups: SubgroupMap,
    peers: Vec<NodeId>,
    /// Primary host per user (from the name's host token).
    primary_hosts: BTreeMap<MailName, NodeId>,
    /// Current locations known to *this* server, with the login
    /// timestamp that produced them (last-writer-wins). Ordered maps keep
    /// actor state deterministic (see `lems-check -- lint`).
    locations: BTreeMap<MailName, (NodeId, SimTime)>,
    /// Durable mailbox storage behind the [`MailStore`] trait (System-2
    /// servers only ever deposit; retrieval happens at the user's host).
    store: Box<dyn MailStore>,
    pending: BTreeMap<MessageId, PendingLookup>,
    /// Message ids already accepted (stored or relayed): retransmitted and
    /// wire-duplicated `Deliver`s are acked but processed only once.
    seen_ids: BTreeSet<MessageId>,
    /// Sub-group handoffs awaiting a [`RoamMsg::DeliverAck`].
    relays: BTreeMap<MessageId, RelayTask>,
    retry: RetryPolicy,
    proc_time: f64,
    stats: SharedStats,
    /// Per-server telemetry (storage, notifications, lookup overhead).
    pub metrics: MetricsRegistry,
}

impl RoamServer {
    fn proc(&self) -> SimDuration {
        SimDuration::from_units(self.proc_time)
    }

    /// Sends (or retransmits) a sub-group handoff and arms the session
    /// timeout. The responsible server is fixed by the name hash, so there
    /// is no failover candidate — only retransmission.
    fn relay_probe(&mut self, msg: Message, attempt: u32, ctx: &mut Ctx<'_, RoamMsg>) {
        let responsible = self.subgroups.server_of(&msg.to);
        if attempt > 0 {
            self.stats.borrow_mut().retransmits += 1;
            self.metrics.inc("retransmits");
        }
        self.metrics.inc("relay_probes");
        let rtt = self.transport.delay(self.node, responsible) * 2;
        let base = rtt + SimDuration::from_units(self.proc_time + TIMEOUT_SLACK);
        let timeout = self.retry.timeout(base, attempt, ctx.rng());
        self.transport.send(
            ctx,
            self.node,
            responsible,
            RoamMsg::Deliver { msg: msg.clone() },
            self.proc(),
        );
        let timer = ctx.set_timer(timeout, msg.id.0);
        self.relays.insert(
            msg.id,
            RelayTask {
                msg,
                attempts: attempt + 1,
                timer,
            },
        );
    }

    /// Applies a location fact if it is newer than what we hold
    /// (ties break toward the higher host id, deterministically).
    fn record_location(&mut self, user: MailName, host: NodeId, at: SimTime) {
        match self.locations.get(&user) {
            Some(&(cur_host, cur_at)) if (cur_at, cur_host) >= (at, host) => {}
            _ => {
                self.locations.insert(user, (host, at));
            }
        }
    }

    /// Stores the message, then notifies the user at their current
    /// location (consulting peers if needed).
    fn store_and_notify(&mut self, msg: Message, ctx: &mut Ctx<'_, RoamMsg>) {
        let user = msg.to.clone();
        let id = msg.id;
        // `seen_ids` dedups upstream, so this only returns false if the
        // same id somehow reached two code paths — count only real stores.
        if self.store.deposit(msg.clone(), ctx.now()) {
            self.stats.borrow_mut().stored += 1;
            self.metrics.inc("stored");
            self.metrics.gauge_add(ctx.now(), "storage", 1.0);
        }

        // Primary location is derivable from the name alone (§3.2.2c:
        // "from the user name, the primary location of the user can be
        // obtained").
        let primary = self.primary_hosts.get(&user).copied();
        let known = self.locations.get(&user).map(|&(h, _)| h);

        match (known, primary) {
            (Some(host), p) => {
                if Some(host) == p {
                    self.stats.borrow_mut().notified_at_primary += 1;
                    self.metrics.inc("notified_at_primary");
                }
                self.notify(&user, id, host, msg.submitted_at, ctx);
            }
            (None, Some(p)) => {
                // Assume the primary until proven otherwise — but also ask
                // the peers, since the user may have roamed. To keep the
                // protocol single-round we ask peers first only when the
                // user is *not* known locally and notification at the
                // primary is our fallback after the peers answer.
                self.ask_peers(msg, p, ctx);
            }
            (None, None) => {
                self.stats.borrow_mut().unknown_location += 1;
                self.metrics.inc("unknown_location");
            }
        }
    }

    fn ask_peers(&mut self, msg: Message, _fallback_primary: NodeId, ctx: &mut Ctx<'_, RoamMsg>) {
        let mut peers: Vec<NodeId> = self
            .peers
            .iter()
            .copied()
            .filter(|&p| p != self.node)
            .collect();
        if peers.is_empty() {
            // No one else to ask: notify at the primary.
            let user = msg.to.clone();
            let primary = self.primary_hosts[&user];
            self.stats.borrow_mut().notified_at_primary += 1;
            self.metrics.inc("notified_at_primary");
            self.notify(&user, msg.id, primary, msg.submitted_at, ctx);
            return;
        }
        let first = peers.remove(0);
        self.stats.borrow_mut().consults += 1;
        self.metrics.inc("consults");
        let pending = msg.id;
        self.pending.insert(
            pending,
            PendingLookup {
                msg,
                peers_left: peers,
            },
        );
        self.transport.send(
            ctx,
            self.node,
            first,
            RoamMsg::WhereIs {
                user: self.pending[&pending].msg.to.clone(),
                pending,
                reply_to: self.node,
            },
            self.proc(),
        );
    }

    fn notify(
        &mut self,
        user: &MailName,
        id: MessageId,
        host: NodeId,
        submitted_at: SimTime,
        ctx: &mut Ctx<'_, RoamMsg>,
    ) {
        {
            let mut st = self.stats.borrow_mut();
            st.notified += 1;
            st.notify_latency
                .observe(ctx.now().duration_since(submitted_at).as_units());
        }
        self.metrics.inc("notified");
        self.metrics.observe(
            "notify_latency",
            ctx.now().duration_since(submitted_at).as_units(),
        );
        self.transport.send(
            ctx,
            self.node,
            host,
            RoamMsg::Notify {
                user: user.clone(),
                id,
            },
            self.proc(),
        );
    }
}

impl Actor for RoamServer {
    type Msg = RoamMsg;

    fn on_message(&mut self, from: ActorId, msg: RoamMsg, ctx: &mut Ctx<'_, RoamMsg>) {
        match msg {
            RoamMsg::LoginReport { user, host, at } => {
                self.record_location(user.clone(), host, at);
                // Cooperative tracking: tell the peers.
                for &p in &self.peers.clone() {
                    if p != self.node {
                        self.transport.send(
                            ctx,
                            self.node,
                            p,
                            RoamMsg::LocationUpdate {
                                user: user.clone(),
                                host,
                                at,
                            },
                            self.proc(),
                        );
                    }
                }
            }
            RoamMsg::LocationUpdate { user, host, at } => {
                self.record_location(user, host, at);
            }
            RoamMsg::Deliver { msg } => {
                // Ack the hop unconditionally — even for a duplicate, since
                // the duplicate means the sender never saw our first ack.
                if let Some(sender) = self.transport.node_of(from) {
                    self.transport.send(
                        ctx,
                        self.node,
                        sender,
                        RoamMsg::DeliverAck { id: msg.id },
                        self.proc(),
                    );
                }
                if !self.seen_ids.insert(msg.id) {
                    // Retransmission or wire duplicate: already handled.
                    return;
                }
                let responsible = self.subgroups.server_of(&msg.to);
                if responsible == self.node {
                    self.store_and_notify(msg, ctx);
                } else {
                    // Hash says a peer owns this sub-group: hand it over,
                    // reliably (retransmit until the peer acks).
                    self.relay_probe(msg, 0, ctx);
                }
            }
            RoamMsg::DeliverAck { id } => {
                if let Some(task) = self.relays.remove(&id) {
                    ctx.cancel_timer(task.timer);
                }
            }
            RoamMsg::WhereIs {
                user,
                pending,
                reply_to,
            } => {
                let host = self.locations.get(&user).map(|&(h, _)| h);
                self.transport.send(
                    ctx,
                    self.node,
                    reply_to,
                    RoamMsg::LocationReply { pending, host },
                    self.proc(),
                );
            }
            RoamMsg::LocationReply { pending, host } => {
                let Some(mut lookup) = self.pending.remove(&pending) else {
                    return;
                };
                match host {
                    Some(h) => {
                        let user = lookup.msg.to.clone();
                        self.record_location(user.clone(), h, ctx.now());
                        let primary = self.primary_hosts.get(&user).copied();
                        if Some(h) == primary {
                            self.stats.borrow_mut().notified_at_primary += 1;
                            self.metrics.inc("notified_at_primary");
                        }
                        self.notify(&user, pending, h, lookup.msg.submitted_at, ctx);
                    }
                    None if !lookup.peers_left.is_empty() => {
                        let next = lookup.peers_left.remove(0);
                        self.stats.borrow_mut().consults += 1;
                        self.metrics.inc("consults");
                        let user = lookup.msg.to.clone();
                        self.pending.insert(pending, lookup);
                        self.transport.send(
                            ctx,
                            self.node,
                            next,
                            RoamMsg::WhereIs {
                                user,
                                pending,
                                reply_to: self.node,
                            },
                            self.proc(),
                        );
                    }
                    None => {
                        // Nobody knows: fall back to the primary host.
                        let user = lookup.msg.to.clone();
                        match self.primary_hosts.get(&user).copied() {
                            Some(primary) => {
                                self.stats.borrow_mut().notified_at_primary += 1;
                                self.metrics.inc("notified_at_primary");
                                self.notify(&user, pending, primary, lookup.msg.submitted_at, ctx);
                            }
                            None => {
                                self.stats.borrow_mut().unknown_location += 1;
                                self.metrics.inc("unknown_location");
                            }
                        }
                    }
                }
            }
            // Host-bound traffic; a server receiving these ignores them.
            RoamMsg::DoLogin { .. } | RoamMsg::DoSend { .. } | RoamMsg::Notify { .. } => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, tag: u64, ctx: &mut Ctx<'_, RoamMsg>) {
        let Some(task) = self.relays.remove(&MessageId(tag)) else {
            return;
        };
        if task.timer != id {
            // Stale timer from a superseded probe.
            self.relays.insert(task.msg.id, task);
            return;
        }
        if self.retry.exhausted(task.attempts) {
            // The responsible peer never acked within budget; the name
            // hash admits no substitute, so the handoff is abandoned.
            self.stats.borrow_mut().delivery_failures += 1;
            self.metrics.inc("delivery_failures");
        } else {
            self.relay_probe(task.msg, task.attempts, ctx);
        }
    }
}

/// A wired System-2 region: engine, hosts, servers, statistics.
pub struct RoamDeployment {
    /// The engine.
    pub sim: ActorSim<RoamMsg>,
    /// Shared statistics.
    pub stats: SharedStats,
    /// Topology-derived delays and node/actor bindings.
    pub transport: Rc<Transport>,
    host_actors: BTreeMap<NodeId, ActorId>,
    server_actors: BTreeMap<NodeId, ActorId>,
    /// Registered users and their primary hosts.
    pub users: BTreeMap<MailName, NodeId>,
}

impl RoamDeployment {
    /// Builds a single-region System-2 deployment over `topology`'s region
    /// 0, with `users_per_host` users named `r0.<host>.u<k>`.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no servers or hosts in region 0, or the
    /// population slice is misaligned.
    pub fn build(topology: &Topology, users_per_host: &[u32], groups: usize, seed: u64) -> Self {
        Self::build_with_durability(
            topology,
            users_per_host,
            groups,
            seed,
            &DurabilityConfig::default(),
        )
    }

    /// [`RoamDeployment::build`] with an explicit mailbox persistence
    /// backend for every server.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RoamDeployment::build`].
    pub fn build_with_durability(
        topology: &Topology,
        users_per_host: &[u32],
        groups: usize,
        seed: u64,
        durability: &DurabilityConfig,
    ) -> Self {
        let region = lems_net::topology::RegionId(0);
        let servers = topology.servers_in(region);
        let hosts = topology.hosts_in(region);
        assert!(
            !servers.is_empty() && !hosts.is_empty(),
            "region 0 must be populated"
        );
        assert_eq!(hosts.len(), users_per_host.len(), "population misaligned");

        let subgroups = SubgroupMap::new(groups, servers.clone());
        let mut transport = Transport::new(topology.graph());
        let mut sim: ActorSim<RoamMsg> = ActorSim::new(seed);
        let stats: SharedStats = Rc::new(RefCell::new(RoamStats::default()));
        let id_gen = Rc::new(RefCell::new(MessageIdGen::new()));
        let dist = topology.distances();

        // Users and their primary hosts (encoded in the name).
        let mut users: BTreeMap<MailName, NodeId> = BTreeMap::new();
        for (&h, &n) in hosts.iter().zip(users_per_host) {
            for k in 0..n {
                let name: MailName = format!("r0.{}.u{k}", topology.name(h))
                    .parse()
                    .expect("generated names are valid");
                users.insert(name, h);
            }
        }
        let primary_hosts: BTreeMap<MailName, NodeId> = users.clone();

        let placeholder_transport = Rc::new(Transport::new(topology.graph()));
        let mut server_actors = BTreeMap::new();
        for &s in &servers {
            let actor = RoamServer {
                node: s,
                transport: Rc::clone(&placeholder_transport),
                subgroups: subgroups.clone(),
                peers: servers.clone(),
                primary_hosts: primary_hosts.clone(),
                locations: BTreeMap::new(),
                store: lems_store::make_store(durability),
                pending: BTreeMap::new(),
                seen_ids: BTreeSet::new(),
                relays: BTreeMap::new(),
                retry: RetryPolicy::default_session(),
                proc_time: 0.5,
                stats: Rc::clone(&stats),
                metrics: MetricsRegistry::new(),
            };
            let id = sim.add_actor(actor);
            transport.bind(s, id);
            server_actors.insert(s, id);
        }

        let mut host_actors = BTreeMap::new();
        for &h in &hosts {
            // Non-empty `servers` is asserted at the top of `build`.
            let nearest = servers
                .iter()
                .copied()
                .min_by_key(|&s| dist.distance(h, s))
                .unwrap_or_else(|| servers[0]);
            let mut ring = servers.clone();
            ring.sort_by_key(|&s| (dist.distance(h, s), s));
            let actor = RoamHost {
                node: h,
                nearest_server: nearest,
                server_ring: ring,
                transport: Rc::clone(&placeholder_transport),
                id_gen: Rc::clone(&id_gen),
                stats: Rc::clone(&stats),
                retry: RetryPolicy::default_session(),
                server_proc: 0.5,
                pending_sends: BTreeMap::new(),
                alerts: BTreeMap::new(),
                metrics: MetricsRegistry::new(),
            };
            let id = sim.add_actor(actor);
            transport.bind(h, id);
            host_actors.insert(h, id);
        }

        let transport = Rc::new(transport);
        for &aid in server_actors.values() {
            if let Some(a) = sim.actor_mut::<RoamServer>(aid) {
                a.transport = Rc::clone(&transport);
            }
        }
        for &aid in host_actors.values() {
            if let Some(a) = sim.actor_mut::<RoamHost>(aid) {
                a.transport = Rc::clone(&transport);
            }
        }

        RoamDeployment {
            sim,
            stats,
            transport,
            host_actors,
            server_actors,
            users,
        }
    }

    /// Injects a login of `user` at `host` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if the host is not part of the deployment.
    pub fn login_at(&mut self, at: SimTime, user: &MailName, host: NodeId) {
        let actor = self.host_actors[&host];
        let delay = at.duration_since(self.sim.now());
        self.sim
            .inject(actor, RoamMsg::DoLogin { user: user.clone() }, delay);
    }

    /// Injects a send at `at` from `from` (at their primary host) to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a user of the deployment: a typo in a
    /// driver script should fail loudly, not silently drop the send.
    pub fn send_at(&mut self, at: SimTime, from: &MailName, to: &MailName) {
        let host = *self.users.get(from).expect("unknown sender");
        let actor = self.host_actors[&host];
        let delay = at.duration_since(self.sim.now());
        self.sim.inject(
            actor,
            RoamMsg::DoSend {
                from: from.clone(),
                to: to.clone(),
            },
            delay,
        );
    }

    /// Alerts delivered to `user` at `host`.
    pub fn alerts_at(&self, host: NodeId, user: &MailName) -> u64 {
        self.host_actors
            .get(&host)
            .and_then(|&aid| self.sim.actor::<RoamHost>(aid))
            .and_then(|h| h.alerts.get(user).copied())
            .unwrap_or(0)
    }

    /// The server responsible for `user`'s sub-group.
    pub fn responsible_server(&self, user: &MailName, groups: usize) -> NodeId {
        let servers: Vec<NodeId> = self.server_actors.keys().copied().collect();
        SubgroupMap::new(groups, servers).server_of(user)
    }

    /// Per-actor metrics registries under stable scope names
    /// (`server:n<id>` then `host:n<id>`, in node order).
    pub fn metrics_snapshot(&self) -> Vec<(String, MetricsRegistry)> {
        let mut out = Vec::new();
        for (&node, &aid) in &self.server_actors {
            if let Some(a) = self.sim.actor::<RoamServer>(aid) {
                out.push((format!("server:n{}", node.0), a.metrics.clone()));
            }
        }
        for (&node, &aid) in &self.host_actors {
            if let Some(a) = self.sim.actor::<RoamHost>(aid) {
                out.push((format!("host:n{}", node.0), a.metrics.clone()));
            }
        }
        out
    }

    /// All per-actor registries folded into one region-wide aggregate.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for (_, m) in self.metrics_snapshot() {
            merged.merge(&m);
        }
        merged
    }

    /// Total mail currently stored across servers.
    pub fn mail_in_storage(&self) -> usize {
        self.server_actors
            .values()
            .filter_map(|&aid| self.sim.actor::<RoamServer>(aid))
            .map(|s| {
                s.store
                    .mailboxes()
                    .values()
                    .map(Mailbox::len)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_net::generators::multi_region;
    use lems_net::generators::MultiRegionConfig;
    use lems_sim::rng::SimRng;

    /// Every test scenario quiesces far below this; exhausting it means
    /// a stuck retry loop, which must fail the test rather than hang it.
    const EVENT_BUDGET: u64 = 2_000_000;

    fn world() -> Topology {
        let mut rng = SimRng::seed(8);
        multi_region(
            &mut rng,
            &MultiRegionConfig {
                regions: 1,
                hosts_per_region: 4,
                servers_per_region: 3,
                ..MultiRegionConfig::default()
            },
        )
    }

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn mail_to_stationary_user_notifies_primary_without_consults() {
        let topo = world();
        let mut d = RoamDeployment::build(&topo, &[1, 1, 1, 1], 16, 1);
        let users: Vec<MailName> = d.users.keys().cloned().collect();
        let (alice, bob) = (users[0].clone(), users[1].clone());
        let bob_home = d.users[&bob];

        // Both log in at their primary hosts.
        d.login_at(t(1.0), &alice, d.users[&alice]);
        d.login_at(t(1.0), &bob, bob_home);
        d.send_at(t(20.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let st = d.stats.borrow();
        assert_eq!(st.submitted, 1);
        assert_eq!(st.stored, 1);
        assert_eq!(st.notified, 1);
        assert_eq!(st.notified_at_primary, 1);
        assert_eq!(st.consults, 0, "no lookup overhead when nobody moves");
        drop(st);
        assert_eq!(d.alerts_at(bob_home, &bob), 1);
    }

    #[test]
    fn roaming_user_is_notified_at_current_host() {
        let topo = world();
        let mut d = RoamDeployment::build(&topo, &[1, 1, 1, 1], 16, 2);
        let users: Vec<MailName> = d.users.keys().cloned().collect();
        let (alice, bob) = (users[0].clone(), users[2].clone());
        let bob_home = d.users[&bob];
        let hosts = topo.hosts_in(lems_net::topology::RegionId(0));
        let away = *hosts.iter().find(|&&h| h != bob_home).unwrap();

        // Bob roams to a different host before the mail arrives.
        d.login_at(t(1.0), &bob, away);
        d.send_at(t(30.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        assert_eq!(d.alerts_at(away, &bob), 1, "alert must follow bob");
        assert_eq!(d.alerts_at(bob_home, &bob), 0);
        let st = d.stats.borrow();
        assert_eq!(st.notified, 1);
        assert_eq!(st.unknown_location, 0);
    }

    #[test]
    fn never_logged_in_user_defaults_to_primary() {
        let topo = world();
        let mut d = RoamDeployment::build(&topo, &[1, 1, 1, 1], 16, 3);
        let users: Vec<MailName> = d.users.keys().cloned().collect();
        let (alice, bob) = (users[0].clone(), users[3].clone());
        let bob_home = d.users[&bob];

        d.send_at(t(5.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        // Bob never logged in: after the peers come up empty, the alert
        // goes to the primary host derived from his name.
        assert_eq!(d.alerts_at(bob_home, &bob), 1);
        let st = d.stats.borrow();
        assert_eq!(st.notified_at_primary, 1);
        assert_eq!(st.unknown_location, 0);
        assert_eq!(
            d.mail_in_storage(),
            1,
            "mail is stored at the sub-group server"
        );
    }

    #[test]
    fn relogin_moves_the_alert_target() {
        let topo = world();
        let mut d = RoamDeployment::build(&topo, &[1, 1, 1, 1], 16, 4);
        let users: Vec<MailName> = d.users.keys().cloned().collect();
        let (alice, bob) = (users[0].clone(), users[1].clone());
        let bob_home = d.users[&bob];
        let hosts = topo.hosts_in(lems_net::topology::RegionId(0));
        let away = *hosts.iter().find(|&&h| h != bob_home).unwrap();

        d.login_at(t(1.0), &bob, away);
        d.send_at(t(30.0), &alice, &bob);
        // Bob goes home; a second message follows him there.
        d.login_at(t(60.0), &bob, bob_home);
        d.send_at(t(90.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        assert_eq!(d.alerts_at(away, &bob), 1);
        assert_eq!(d.alerts_at(bob_home, &bob), 1);
    }

    #[test]
    fn cooperative_tracking_broadcasts_locations() {
        let topo = world();
        let mut d = RoamDeployment::build(&topo, &[2, 2, 2, 2], 16, 5);
        let users: Vec<MailName> = d.users.keys().cloned().collect();
        // Everyone logs in somewhere; all servers must end up agreeing.
        for (i, u) in users.iter().enumerate() {
            let hosts = topo.hosts_in(lems_net::topology::RegionId(0));
            d.login_at(t(1.0 + i as f64), u, hosts[i % hosts.len()]);
        }
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        // Mail to every user notifies without any WhereIs consults,
        // because LocationUpdates already spread the knowledge.
        let sender = users[0].clone();
        for (i, u) in users.iter().enumerate().skip(1) {
            d.send_at(t(100.0 + i as f64), &sender, u);
        }
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let st = d.stats.borrow();
        assert_eq!(st.consults, 0, "cooperative updates make lookups free");
        assert_eq!(st.notified, users.len() as u64 - 1);
    }

    #[test]
    fn lossy_wire_mail_still_reaches_storage() {
        use lems_sim::linkfault::{LinkFaultPlan, LinkProfile};

        let topo = world();
        let mut d = RoamDeployment::build(&topo, &[1, 1, 1, 1], 16, 6);
        let plan = LinkFaultPlan::new()
            .with_default_profile(
                LinkProfile::new(0.25, 0.0, SimDuration::from_units(0.5)).unwrap(),
            )
            .with_stochastic_horizon(t(300.0));
        d.sim.set_link_faults(plan);

        let users: Vec<MailName> = d.users.keys().cloned().collect();
        for u in &users {
            d.login_at(t(1.0), u, d.users[u]);
        }
        let sender = users[0].clone();
        for (i, u) in users.iter().enumerate().skip(1) {
            d.send_at(t(20.0 + i as f64 * 5.0), &sender, u);
        }
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let st = d.stats.borrow();
        assert_eq!(st.submitted, 3);
        assert_eq!(st.stored, 3, "session layer must mask 25% loss");
        assert_eq!(st.delivery_failures, 0);
        assert!(
            st.retransmits > 0,
            "a 25% lossy wire must force at least one retransmission"
        );
        drop(st);
        assert_eq!(d.mail_in_storage(), 3);
    }

    #[test]
    fn wire_duplicates_store_once() {
        use lems_sim::linkfault::{LinkFaultPlan, LinkProfile};

        let topo = world();
        let mut d = RoamDeployment::build(&topo, &[1, 1, 1, 1], 16, 7);
        let plan = LinkFaultPlan::new()
            .with_default_profile(LinkProfile::new(0.0, 1.0, SimDuration::ZERO).unwrap())
            .with_stochastic_horizon(t(200.0));
        d.sim.set_link_faults(plan);

        let users: Vec<MailName> = d.users.keys().cloned().collect();
        let (alice, bob) = (users[0].clone(), users[1].clone());
        d.login_at(t(1.0), &bob, d.users[&bob]);
        d.send_at(t(10.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let st = d.stats.borrow();
        assert_eq!(st.submitted, 1);
        assert_eq!(st.stored, 1, "duplicated Deliver hops must dedup");
        drop(st);
        assert_eq!(d.mail_in_storage(), 1);
        assert!(d.sim.counters().duplicated.get() > 0);
    }

    /// Per-actor registries, merged region-wide, must agree with the
    /// shared stats ledger — even under a lossy wire that forces
    /// session-layer retransmissions.
    #[test]
    fn merged_metrics_agree_with_shared_stats() {
        use lems_sim::linkfault::{LinkFaultPlan, LinkProfile};

        let topo = world();
        let mut d = RoamDeployment::build(&topo, &[1, 1, 1, 1], 16, 9);
        let plan = LinkFaultPlan::new()
            .with_default_profile(LinkProfile::new(0.2, 0.0, SimDuration::from_units(0.5)).unwrap())
            .with_stochastic_horizon(t(300.0));
        d.sim.set_link_faults(plan);

        let users: Vec<MailName> = d.users.keys().cloned().collect();
        for u in &users {
            d.login_at(t(1.0), u, d.users[u]);
        }
        let sender = users[0].clone();
        for (i, u) in users.iter().enumerate().skip(1) {
            d.send_at(t(20.0 + i as f64 * 5.0), &sender, u);
        }
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let merged = d.merged_metrics();
        let st = d.stats.borrow();
        assert_eq!(merged.counter("submitted"), st.submitted);
        assert_eq!(merged.counter("stored"), st.stored);
        assert_eq!(merged.counter("notified"), st.notified);
        assert_eq!(
            merged.counter("notified_at_primary"),
            st.notified_at_primary
        );
        assert_eq!(merged.counter("consults"), st.consults);
        assert_eq!(merged.counter("retransmits"), st.retransmits);
        assert_eq!(merged.counter("delivery_failures"), st.delivery_failures);
        let lat = merged
            .histogram("notify_latency")
            .expect("latency recorded");
        assert_eq!(lat.count(), st.notify_latency.count());
        assert!((lat.mean() - st.notify_latency.mean()).abs() < 1e-9);
        // Storage gauges stay per-server: merging must not invent one.
        assert!(merged.gauge("storage").is_none());
        assert!(d
            .metrics_snapshot()
            .iter()
            .any(|(scope, m)| scope.starts_with("server:") && m.gauge("storage").is_some()));
    }
}
