//! Delivery-cost accounting for limited location-independent access
//! (§3.2.2c, §3.2.4).
//!
//! System 2's delivery pipeline is System 1's plus a location lookup: when
//! the recipient is not at their primary location, the delivering server
//! "has to consult with other local servers to find out the current
//! location of the user". The paper's claim is qualitative — "overhead is
//! only incurred if a user moves"; this module quantifies it for the C5
//! experiment, including the three ways to handle a *cross-region* move
//! (remote access, redirection, renaming) whose trade-off §3.2.4
//! discusses.

use lems_net::graph::NodeId;
use lems_net::shortest_path::DistanceTable;
use serde::{Deserialize, Serialize};

/// Where the recipient currently is, relative to their primary location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UserLocation {
    /// Logged on at the primary host (the System-1 case).
    Primary,
    /// Logged on at another host of the same region; found after
    /// `consults` server consultations.
    WithinRegion {
        /// The host the user currently sits at.
        current_host: NodeId,
        /// Cross-server consultations the lookup needed.
        consults: u32,
    },
    /// Moved to another region entirely (§3.2.4).
    CrossRegion {
        /// The host in the new region.
        current_host: NodeId,
        /// A server of the new region to relay through.
        new_region_server: NodeId,
    },
}

/// How a cross-region user receives mail sent to their old name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossRegionPolicy {
    /// The user remotely logs into the old region; interactive traffic
    /// ("very few characters are packed in every remote-access packet")
    /// crosses the inter-region links for every message read.
    RemoteAccess,
    /// The old region's servers forward each message to the new region.
    Redirect,
    /// The user takes a new name in the new region; delivery is local
    /// after a one-time migration cost.
    Rename,
}

/// Cost parameters for the accounting.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostParams {
    /// Communication cost of one server consultation, per unit of
    /// distance (a request/response round trip = 2).
    pub consult_round_trip_factor: f64,
    /// Packets exchanged per message under remote access (interactive
    /// echo traffic — tens of packets per message read).
    pub remote_access_packets: f64,
    /// One-time cost of a rename migration, in comm units: updating
    /// directories in both regions and notifying correspondents.
    pub rename_migration_cost: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            consult_round_trip_factor: 2.0,
            remote_access_packets: 40.0,
            rename_migration_cost: 50.0,
        }
    }
}

/// Cost of delivering one message, broken into the paper's components.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeliveryCost {
    /// Sender's server to recipient's (old-name) authority server.
    pub forward_units: f64,
    /// Location lookup among the region's servers.
    pub consult_units: f64,
    /// Authority server to the recipient's current host (notification +
    /// retrieval path), including any cross-region relay.
    pub last_mile_units: f64,
}

impl DeliveryCost {
    /// Total communication cost in time units.
    pub fn total(&self) -> f64 {
        self.forward_units + self.consult_units + self.last_mile_units
    }
}

/// Computes the delivery cost for one message.
///
/// * `sender_server` — the server that accepted the message;
/// * `authority_server` — the recipient's (primary-name) authority server;
/// * `primary_host` — the recipient's primary host;
/// * `region_servers` — the servers of the recipient's region (for consult
///   pricing);
/// * `location` — where the recipient actually is;
/// * `policy` — cross-region handling (ignored unless the location is
///   cross-region).
///
/// # Examples
///
/// ```
/// use lems_locindep::delivery::{delivery_cost, CostParams, CrossRegionPolicy, UserLocation};
/// use lems_net::graph::{Graph, NodeId, Weight};
/// use lems_net::shortest_path::DistanceTable;
///
/// // chain: sender-server(0) - authority(1) - primary host(2)
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
/// g.add_edge(NodeId(1), NodeId(2), Weight::UNIT);
/// let dist = DistanceTable::build(&g);
/// let cost = delivery_cost(
///     &dist, NodeId(0), NodeId(1), NodeId(2), &[NodeId(1)],
///     UserLocation::Primary, CrossRegionPolicy::Redirect, &CostParams::default(),
/// );
/// assert_eq!(cost.total(), 2.0); // 1 forward + 1 notify
/// ```
#[allow(clippy::too_many_arguments)]
pub fn delivery_cost(
    dist: &DistanceTable,
    sender_server: NodeId,
    authority_server: NodeId,
    primary_host: NodeId,
    region_servers: &[NodeId],
    location: UserLocation,
    policy: CrossRegionPolicy,
    params: &CostParams,
) -> DeliveryCost {
    let d = |a: NodeId, b: NodeId| dist.distance(a, b).as_units();
    let forward_units = d(sender_server, authority_server);

    match location {
        UserLocation::Primary => DeliveryCost {
            forward_units,
            consult_units: 0.0,
            last_mile_units: d(authority_server, primary_host),
        },
        UserLocation::WithinRegion {
            current_host,
            consults,
        } => {
            // Each consult is a round trip to another region server; price
            // it at the mean distance from the authority server.
            let mean_dist = if region_servers.len() > 1 {
                let sum: f64 = region_servers
                    .iter()
                    .filter(|&&s| s != authority_server)
                    .map(|&s| d(authority_server, s))
                    .sum();
                sum / (region_servers.len() - 1) as f64
            } else {
                0.0
            };
            DeliveryCost {
                forward_units,
                consult_units: f64::from(consults) * mean_dist * params.consult_round_trip_factor,
                last_mile_units: d(authority_server, current_host),
            }
        }
        UserLocation::CrossRegion {
            current_host,
            new_region_server,
        } => match policy {
            CrossRegionPolicy::RemoteAccess => DeliveryCost {
                forward_units,
                consult_units: 0.0,
                // The user's interactive session hauls every message over
                // the long-haul path, packet by packet.
                last_mile_units: params.remote_access_packets * d(current_host, authority_server),
            },
            CrossRegionPolicy::Redirect => DeliveryCost {
                forward_units,
                consult_units: 0.0,
                last_mile_units: d(authority_server, new_region_server)
                    + d(new_region_server, current_host),
            },
            CrossRegionPolicy::Rename => DeliveryCost {
                // After renaming, mail goes straight to the new region.
                forward_units: d(sender_server, new_region_server),
                consult_units: 0.0,
                last_mile_units: d(new_region_server, current_host),
            },
        },
    }
}

/// Messages after which renaming beats redirecting: the one-time migration
/// cost divided by the per-message saving. Returns `None` if redirecting
/// is never more expensive (no break-even).
pub fn rename_breakeven(
    per_message_redirect: f64,
    per_message_after_rename: f64,
    params: &CostParams,
) -> Option<u64> {
    let saving = per_message_redirect - per_message_after_rename;
    if saving <= 0.0 {
        return None;
    }
    Some((params.rename_migration_cost / saving).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_net::graph::{Graph, Weight};

    /// sender server(0) -- 1 -- authority(1) -- 1 -- primary host(2)
    ///                              |
    ///                              2 (to peer server 3)
    ///                              |-- 10 --> new region server(4) -- 1 -- new host(5)
    fn world() -> (DistanceTable, Vec<NodeId>) {
        let mut g = Graph::with_nodes(7);
        g.add_edge(NodeId(0), NodeId(1), Weight::from_units(1.0));
        g.add_edge(NodeId(1), NodeId(2), Weight::from_units(1.0));
        g.add_edge(NodeId(1), NodeId(3), Weight::from_units(2.0)); // peer server
        g.add_edge(NodeId(1), NodeId(4), Weight::from_units(10.0)); // long haul
                                                                    // Direct long-haul from the sender's server, slightly shorter than
                                                                    // relaying through the old authority — renaming can exploit it,
                                                                    // redirection cannot.
        g.add_edge(NodeId(0), NodeId(4), Weight::from_units(10.0));
        g.add_edge(NodeId(4), NodeId(5), Weight::from_units(1.0));
        g.add_edge(NodeId(3), NodeId(6), Weight::from_units(1.0)); // roamed-to host
        (DistanceTable::build(&g), vec![NodeId(1), NodeId(3)])
    }

    #[test]
    fn primary_location_matches_system_one() {
        let (dist, servers) = world();
        let c = delivery_cost(
            &dist,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            &servers,
            UserLocation::Primary,
            CrossRegionPolicy::Redirect,
            &CostParams::default(),
        );
        assert_eq!(c.total(), 2.0);
        assert_eq!(c.consult_units, 0.0);
    }

    #[test]
    fn within_region_movement_adds_consults_only() {
        let (dist, servers) = world();
        let c = delivery_cost(
            &dist,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            &servers,
            UserLocation::WithinRegion {
                current_host: NodeId(6),
                consults: 1,
            },
            CrossRegionPolicy::Redirect,
            &CostParams::default(),
        );
        // forward 1 + consult (1 × dist(1,3)=2 × 2) + last mile dist(1,6)=3
        assert_eq!(c.forward_units, 1.0);
        assert_eq!(c.consult_units, 4.0);
        assert_eq!(c.last_mile_units, 3.0);
    }

    #[test]
    fn cross_region_policies_rank_as_the_paper_argues() {
        let (dist, servers) = world();
        let loc = UserLocation::CrossRegion {
            current_host: NodeId(5),
            new_region_server: NodeId(4),
        };
        let params = CostParams::default();
        let remote = delivery_cost(
            &dist,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            &servers,
            loc,
            CrossRegionPolicy::RemoteAccess,
            &params,
        );
        let redirect = delivery_cost(
            &dist,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            &servers,
            loc,
            CrossRegionPolicy::Redirect,
            &params,
        );
        let rename = delivery_cost(
            &dist,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            &servers,
            loc,
            CrossRegionPolicy::Rename,
            &params,
        );
        // "remote access is usually slow and imposes large overhead".
        assert!(remote.total() > redirect.total());
        // Renaming is cheapest per message once migrated.
        assert!(rename.total() < redirect.total());
    }

    #[test]
    fn breakeven_reflects_migration_cost() {
        let params = CostParams::default();
        // Redirect costs 12/message, rename delivery costs 2/message:
        // break-even at ceil(50 / 10) = 5 messages.
        assert_eq!(rename_breakeven(12.0, 2.0, &params), Some(5));
        // No saving -> never worth renaming.
        assert_eq!(rename_breakeven(2.0, 2.0, &params), None);
        assert_eq!(rename_breakeven(1.0, 2.0, &params), None);
    }
}
