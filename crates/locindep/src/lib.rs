//! # lems-locindep — System 2: limited location-independent access
//!
//! The second design of *"Designing Large Electronic Mail Systems"*
//! (Bahaa-El-Din & Yuen, ICDCS 1988), §3.2: names keep the
//! `region.host.user` shape but `host` is only the user's *primary*
//! location — inside a region, users "can move freely and can send or
//! receive messages from any host … without having to change names".
//!
//! * [`subgroup`] — hash-based sub-group name resolution and the
//!   rehash-to-reconfigure mechanism (§3.2.2b, §3.2.3c);
//! * [`resolve`] — the per-server resolution procedure built on it;
//! * [`tracking`] — cooperative user-location tracking among the region's
//!   servers (§3.2.2c);
//! * [`actors`] — the running System-2 protocol: login reporting,
//!   cooperative location tracking, hash-routed delivery, and
//!   current-location notification over the simulation engine;
//! * [`delivery`] — delivery-cost accounting, including the
//!   remote-access / redirect / rename trade-off for cross-region moves
//!   (§3.2.4) measured by the C5 experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actors;
pub mod delivery;
pub mod resolve;
pub mod subgroup;
pub mod tracking;

pub use actors::{RoamDeployment, RoamHost, RoamMsg, RoamServer, RoamStats};
pub use delivery::{
    delivery_cost, rename_breakeven, CostParams, CrossRegionPolicy, DeliveryCost, UserLocation,
};
pub use resolve::{LocIndepResolver, Resolution};
pub use subgroup::{RehashReport, SubgroupMap};
pub use tracking::{LocateOutcome, RegionTracker};
