//! Name resolution under limited location-independent access (§3.2.2b).
//!
//! "Upon receiving a request from the user, the server will try to resolve
//! the name. All servers can resolve local names within the region. A hash
//! function is applied to the name to find out in which sub-group the name
//! belongs. … If the name is not a local name, the server has to contact
//! the corresponding server in the region where the name belongs."
//!
//! Contrast with System 1: *any* server of the region can compute the
//! responsible server from the hash alone — there is no per-user routing
//! table to replicate, which is why reconfiguration is cheap (§3.2.3).

use std::collections::{BTreeMap, HashMap};

use lems_core::name::MailName;
use lems_net::graph::NodeId;
use lems_net::topology::RegionId;

use crate::subgroup::SubgroupMap;

/// One resolution step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The name is regional; this server manages its sub-group.
    LocalSubgroup {
        /// The sub-group index.
        group: usize,
    },
    /// The name is regional; the given peer server manages its sub-group.
    PeerSubgroup {
        /// The responsible server.
        server: NodeId,
        /// The sub-group index.
        group: usize,
    },
    /// The name belongs to another region.
    ForwardToRegion {
        /// The recipient's region.
        region: RegionId,
        /// That region's servers.
        servers: Vec<NodeId>,
    },
    /// Unknown region token.
    UnknownRegion,
}

/// A System-2 server's resolver.
#[derive(Clone, Debug)]
pub struct LocIndepResolver {
    server: NodeId,
    region: RegionId,
    subgroups: SubgroupMap,
    region_names: HashMap<String, RegionId>,
    region_servers: BTreeMap<RegionId, Vec<NodeId>>,
}

impl LocIndepResolver {
    /// Creates a resolver for `server` in `region` with the region's
    /// sub-group layout.
    pub fn new(
        server: NodeId,
        region: RegionId,
        subgroups: SubgroupMap,
        region_names: HashMap<String, RegionId>,
        region_servers: BTreeMap<RegionId, Vec<NodeId>>,
    ) -> Self {
        LocIndepResolver {
            server,
            region,
            subgroups,
            region_names,
            region_servers,
        }
    }

    /// The server this resolver runs on.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// The current sub-group layout (mutable for rehash reconfiguration).
    pub fn subgroups_mut(&mut self) -> &mut SubgroupMap {
        &mut self.subgroups
    }

    /// Resolves `name` one step.
    pub fn resolve(&self, name: &MailName) -> Resolution {
        let Some(&target_region) = self.region_names.get(name.region()) else {
            return Resolution::UnknownRegion;
        };
        if target_region == self.region {
            let group = self.subgroups.group_of(name);
            let responsible = self.subgroups.server_of_group(group);
            if responsible == self.server {
                Resolution::LocalSubgroup { group }
            } else {
                Resolution::PeerSubgroup {
                    server: responsible,
                    group,
                }
            }
        } else {
            match self.region_servers.get(&target_region) {
                Some(servers) if !servers.is_empty() => Resolution::ForwardToRegion {
                    region: target_region,
                    servers: servers.clone(),
                },
                _ => Resolution::UnknownRegion,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver_for(server: NodeId) -> LocIndepResolver {
        let subgroups = SubgroupMap::new(8, vec![NodeId(0), NodeId(1)]);
        let mut region_names = HashMap::new();
        region_names.insert("east".to_owned(), RegionId(0));
        region_names.insert("west".to_owned(), RegionId(1));
        let mut region_servers = BTreeMap::new();
        region_servers.insert(RegionId(0), vec![NodeId(0), NodeId(1)]);
        region_servers.insert(RegionId(1), vec![NodeId(5)]);
        LocIndepResolver::new(server, RegionId(0), subgroups, region_names, region_servers)
    }

    fn name(s: &str) -> MailName {
        s.parse().unwrap()
    }

    #[test]
    fn regional_names_resolve_by_hash_from_any_server() {
        let r0 = resolver_for(NodeId(0));
        let r1 = resolver_for(NodeId(1));
        let n = name("east.h3.alice");
        // Both servers agree on the responsible server.
        let (who0, who1) = (r0.resolve(&n), r1.resolve(&n));
        let responsible = |r: &Resolution, me: NodeId| match r {
            Resolution::LocalSubgroup { .. } => me,
            Resolution::PeerSubgroup { server, .. } => *server,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(responsible(&who0, NodeId(0)), responsible(&who1, NodeId(1)));
    }

    #[test]
    fn host_component_is_irrelevant() {
        let r = resolver_for(NodeId(0));
        assert_eq!(
            r.resolve(&name("east.h1.bob")),
            r.resolve(&name("east.h99.bob"))
        );
    }

    #[test]
    fn foreign_names_forward() {
        let r = resolver_for(NodeId(0));
        match r.resolve(&name("west.h1.carol")) {
            Resolution::ForwardToRegion { region, servers } => {
                assert_eq!(region, RegionId(1));
                assert_eq!(servers, vec![NodeId(5)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.resolve(&name("mars.h1.zed")), Resolution::UnknownRegion);
    }

    #[test]
    fn rehash_changes_responsibility_without_name_changes() {
        let mut r = resolver_for(NodeId(0));
        let n = name("east.h1.dave");
        let before = r.resolve(&n);
        let report = r
            .subgroups_mut()
            .rehash(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let after = r.resolve(&n);
        // The name itself never changes; only the responsible server may.
        if report.moved_groups.contains(&match &before {
            Resolution::LocalSubgroup { group } | Resolution::PeerSubgroup { group, .. } => *group,
            _ => usize::MAX,
        }) {
            assert_ne!(before, after);
        } else {
            assert_eq!(before, after);
        }
    }
}
