//! Hash-based sub-group name resolution (§3.2.2b).
//!
//! Under limited location-independent access, "regions are divided into
//! small groups of manageable size using some mapping functions"; a server
//! resolving a name "applies a hash function to the name to find out in
//! which sub-group the name belongs", then resolves it "within the context
//! of that sub-group". Each sub-group is managed by one of the region's
//! servers, so resolution is a hash plus one table lookup — no dependence
//! on the host component of the name.
//!
//! Reconfiguration (§3.2.3c) works by *changing the hashing function*:
//! when servers are added or removed, the group-to-server map is rebuilt
//! and only the records of re-mapped groups move.

use lems_core::name::MailName;
use lems_net::graph::NodeId;

/// A stable hash of the name's identity within its region.
///
/// Only `region` and `user` participate: the `host` token is the user's
/// *primary access location*, not part of their identity, so a user who
/// changes primary host inside the region keeps their sub-group.
fn name_hash(name: &MailName) -> u64 {
    // FNV-1a, stable across platforms and runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name
        .region()
        .bytes()
        .chain([0x1f])
        .chain(name.user().bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Rendezvous (highest-random-weight) score of server `s` for group `g`:
/// each group independently ranks the servers, so adding or removing a
/// server remaps only the groups whose winner changed (≈ 1/(n+1) of the
/// name space on an addition) — the property that makes §3.2.3c's
/// "changing the hashing functions" cheap.
fn rendezvous_score(group: usize, server: NodeId) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for v in [group as u64, server.0 as u64 ^ 0xdead_beef] {
        h ^= v;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 31;
    }
    h
}

/// The region's sub-group layout: `groups` hash buckets distributed over
/// the region's servers by rendezvous hashing.
///
/// # Examples
///
/// ```
/// use lems_locindep::subgroup::SubgroupMap;
/// use lems_net::graph::NodeId;
///
/// let map = SubgroupMap::new(16, vec![NodeId(0), NodeId(1), NodeId(2)]);
/// let name = "east.h1.alice".parse()?;
/// let server = map.server_of(&name);
/// assert!(map.servers().contains(&server));
/// // Moving hosts does not change the resolving server:
/// let moved = "east.h7.alice".parse()?;
/// assert_eq!(map.server_of(&moved), server);
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubgroupMap {
    groups: usize,
    servers: Vec<NodeId>,
    group_server: Vec<NodeId>,
}

impl SubgroupMap {
    /// Creates a layout with `groups` buckets over `servers` (rendezvous
    /// hashing: each group picks the server with the highest hash score).
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `servers` is empty.
    pub fn new(groups: usize, servers: Vec<NodeId>) -> Self {
        assert!(groups > 0, "need at least one sub-group");
        assert!(!servers.is_empty(), "need at least one server");
        let group_server = (0..groups)
            .map(|g| {
                servers
                    .iter()
                    .copied()
                    .max_by_key(|&s| (rendezvous_score(g, s), s))
                    .unwrap_or_else(|| servers[0])
            })
            .collect();
        SubgroupMap {
            groups,
            servers,
            group_server,
        }
    }

    /// Number of sub-groups.
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// The region's servers.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The sub-group a name hashes into.
    pub fn group_of(&self, name: &MailName) -> usize {
        (name_hash(name) % self.groups as u64) as usize
    }

    /// The server managing a name's sub-group.
    pub fn server_of(&self, name: &MailName) -> NodeId {
        self.group_server[self.group_of(name)]
    }

    /// The server managing sub-group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn server_of_group(&self, group: usize) -> NodeId {
        self.group_server[group]
    }

    /// Rebuilds the layout for a new server roster ("changing the hashing
    /// functions"), returning which sub-groups moved to a different server
    /// — the records of exactly those groups must be transferred.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn rehash(&mut self, servers: Vec<NodeId>) -> RehashReport {
        assert!(!servers.is_empty(), "need at least one server");
        let new = SubgroupMap::new(self.groups, servers);
        let moved: Vec<usize> = (0..self.groups)
            .filter(|&g| self.group_server[g] != new.group_server[g])
            .collect();
        let report = RehashReport {
            moved_groups: moved,
            total_groups: self.groups,
        };
        *self = new;
        report
    }
}

/// What a rehash had to move.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RehashReport {
    /// Sub-groups whose managing server changed.
    pub moved_groups: Vec<usize>,
    /// Total sub-groups in the layout.
    pub total_groups: usize,
}

impl RehashReport {
    /// Fraction of the name space that had to move.
    pub fn moved_fraction(&self) -> f64 {
        self.moved_groups.len() as f64 / self.total_groups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn name(s: &str) -> MailName {
        s.parse().unwrap()
    }

    #[test]
    fn resolution_is_host_independent() {
        let map = SubgroupMap::new(64, vec![NodeId(0), NodeId(1), NodeId(2)]);
        for u in ["alice", "bob", "carol", "dave"] {
            let a = map.server_of(&name(&format!("east.h1.{u}")));
            let b = map.server_of(&name(&format!("east.h9.{u}")));
            assert_eq!(a, b, "user {u} must resolve identically from any host");
        }
    }

    #[test]
    fn different_regions_hash_independently() {
        let map = SubgroupMap::new(64, vec![NodeId(0), NodeId(1)]);
        let east = map.group_of(&name("east.h1.alice"));
        let west = map.group_of(&name("west.h1.alice"));
        // Not a strict requirement per-user, but across several users the
        // groups must differ at least once.
        let differs = ["alice", "bob", "carol", "dave", "erin"].iter().any(|u| {
            map.group_of(&name(&format!("east.h1.{u}")))
                != map.group_of(&name(&format!("west.h1.{u}")))
        });
        assert!(differs);
        let _ = (east, west);
    }

    #[test]
    fn groups_are_reasonably_balanced() {
        let servers = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let map = SubgroupMap::new(64, servers.clone());
        let mut counts = std::collections::HashMap::new();
        for i in 0..2000 {
            let n = name(&format!("east.h{}.user{i}", i % 7));
            *counts.entry(map.server_of(&n)).or_insert(0usize) += 1;
        }
        for &s in &servers {
            let c = counts.get(&s).copied().unwrap_or(0);
            assert!(
                c > 350 && c < 650,
                "server {s} got {c} of 2000 names — poor balance"
            );
        }
    }

    #[test]
    fn rehash_reports_moved_groups_only() {
        let mut map = SubgroupMap::new(12, vec![NodeId(0), NodeId(1)]);
        let before = map.clone();
        // Adding a third server remaps roughly the groups whose index mod
        // pattern changed.
        let report = map.rehash(vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(!report.moved_groups.is_empty());
        assert!(report.moved_fraction() < 1.0);
        for g in 0..12 {
            let moved = report.moved_groups.contains(&g);
            let changed = before.server_of_group(g) != map.server_of_group(g);
            assert_eq!(moved, changed, "group {g}");
        }
    }

    #[test]
    fn rehash_to_same_roster_moves_nothing() {
        let mut map = SubgroupMap::new(8, vec![NodeId(0), NodeId(1)]);
        let report = map.rehash(vec![NodeId(0), NodeId(1)]);
        assert!(report.moved_groups.is_empty());
        assert_eq!(report.moved_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sub-group")]
    fn zero_groups_panics() {
        let _ = SubgroupMap::new(0, vec![NodeId(0)]);
    }

    proptest! {
        /// Every name resolves to a server in the roster, deterministically.
        #[test]
        fn resolution_total_and_deterministic(
            user in "[a-z]{1,8}",
            host in "[a-z0-9]{1,4}",
        ) {
            let map = SubgroupMap::new(16, vec![NodeId(3), NodeId(7), NodeId(9)]);
            let n = MailName::new("east", &host, &user).unwrap();
            let s1 = map.server_of(&n);
            let s2 = map.server_of(&n);
            prop_assert_eq!(s1, s2);
            prop_assert!(map.servers().contains(&s1));
        }
    }
}
