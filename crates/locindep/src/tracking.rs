//! Cooperative user-location tracking within a region (§3.2.2c).
//!
//! "Whenever a user logs on to a host, the host will inform the nearest
//! active server to retrieve mail messages for this user. The connecting
//! server keeps the information about the current location of this user.
//! … If the user is not at his primary location, the server has to consult
//! with other local servers to find out the current location of the user."
//!
//! [`RegionTracker`] models the region's servers' collective knowledge:
//! each server holds the locations of users who last connected through it;
//! a lookup starting at any server walks the other servers until one
//! answers, counting the consultations — the overhead the paper says "is
//! only incurred if a user moves to other locations other than his primary
//! location".

use std::collections::{BTreeMap, HashMap};

use lems_core::name::MailName;
use lems_net::graph::NodeId;

/// Where a lookup found the user, and what it cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocateOutcome {
    /// The host the user was last seen at, if any server knows.
    pub host: Option<NodeId>,
    /// Servers consulted beyond the first (0 when the starting server knew
    /// or the user is at their primary location).
    pub consults: u32,
}

/// The region's location knowledge, distributed across its servers.
///
/// # Examples
///
/// ```
/// use lems_locindep::tracking::RegionTracker;
/// use lems_net::graph::NodeId;
///
/// let mut t = RegionTracker::new(vec![NodeId(0), NodeId(1)]);
/// let alice = "east.h1.alice".parse()?;
/// // Alice roams to host 7, connecting through server 1.
/// t.login(&alice, NodeId(7), NodeId(1));
/// // A lookup starting at server 0 must consult server 1.
/// let found = t.locate(&alice, NodeId(0));
/// assert_eq!(found.host, Some(NodeId(7)));
/// assert_eq!(found.consults, 1);
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RegionTracker {
    servers: Vec<NodeId>,
    /// server -> (user -> current host)
    known: BTreeMap<NodeId, HashMap<MailName, NodeId>>,
    logins: u64,
    total_consults: u64,
}

impl RegionTracker {
    /// Creates a tracker for a region's servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn new(servers: Vec<NodeId>) -> Self {
        assert!(!servers.is_empty(), "region needs at least one server");
        let known = servers.iter().map(|&s| (s, HashMap::new())).collect();
        RegionTracker {
            servers,
            known,
            logins: 0,
            total_consults: 0,
        }
    }

    /// The region's servers.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Records a login: `user` connected from `host` through
    /// `via_server` (their nearest active server). Any stale entry at
    /// other servers is superseded lazily — locate prefers the freshest
    /// record because logins overwrite in place and stale servers are
    /// corrected on lookup.
    ///
    /// # Panics
    ///
    /// Panics if `via_server` is not one of the region's servers.
    pub fn login(&mut self, user: &MailName, host: NodeId, via_server: NodeId) {
        assert!(
            self.known.contains_key(&via_server),
            "{via_server} is not a server of this region"
        );
        if let Some(entry) = self.known.get_mut(&via_server) {
            entry.insert(user.clone(), host);
        }
        self.logins += 1;
        // Remove stale knowledge elsewhere: the paper's servers "cooperate
        // to keep track of the movement of users".
        for (&s, map) in &mut self.known {
            if s != via_server {
                map.remove(user);
            }
        }
    }

    /// Records a logout/disconnect observed through `via_server`.
    pub fn logout(&mut self, user: &MailName, via_server: NodeId) {
        if let Some(map) = self.known.get_mut(&via_server) {
            map.remove(user);
        }
    }

    /// Looks up `user`'s current host starting from `from_server`,
    /// consulting the region's other servers in roster order until one
    /// knows. Counts consults (0 if `from_server` knew).
    pub fn locate(&mut self, user: &MailName, from_server: NodeId) -> LocateOutcome {
        if let Some(&host) = self.known.get(&from_server).and_then(|m| m.get(user)) {
            return LocateOutcome {
                host: Some(host),
                consults: 0,
            };
        }
        let mut consults = 0;
        for &s in &self.servers {
            if s == from_server {
                continue;
            }
            consults += 1;
            if let Some(&host) = self.known.get(&s).and_then(|m| m.get(user)) {
                self.total_consults += u64::from(consults);
                return LocateOutcome {
                    host: Some(host),
                    consults,
                };
            }
        }
        self.total_consults += u64::from(consults);
        LocateOutcome {
            host: None,
            consults,
        }
    }

    /// Total logins recorded.
    pub fn login_count(&self) -> u64 {
        self.logins
    }

    /// Total cross-server consultations performed by lookups.
    pub fn consult_count(&self) -> u64 {
        self.total_consults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> MailName {
        s.parse().unwrap()
    }

    #[test]
    fn login_then_locate_through_same_server_is_free() {
        let mut t = RegionTracker::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let u = name("east.h1.alice");
        t.login(&u, NodeId(5), NodeId(2));
        let out = t.locate(&u, NodeId(2));
        assert_eq!(
            out,
            LocateOutcome {
                host: Some(NodeId(5)),
                consults: 0
            }
        );
        assert_eq!(t.consult_count(), 0);
    }

    #[test]
    fn locate_from_other_server_consults() {
        let mut t = RegionTracker::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let u = name("east.h1.alice");
        t.login(&u, NodeId(5), NodeId(2));
        let out = t.locate(&u, NodeId(0));
        assert_eq!(out.host, Some(NodeId(5)));
        assert_eq!(out.consults, 2); // asked 1 then 2
    }

    #[test]
    fn relogin_supersedes_old_location() {
        let mut t = RegionTracker::new(vec![NodeId(0), NodeId(1)]);
        let u = name("east.h1.alice");
        t.login(&u, NodeId(5), NodeId(0));
        t.login(&u, NodeId(9), NodeId(1));
        // Server 0 no longer claims to know alice.
        let out = t.locate(&u, NodeId(0));
        assert_eq!(out.host, Some(NodeId(9)));
        assert_eq!(out.consults, 1);
    }

    #[test]
    fn unknown_user_consults_everyone() {
        let mut t = RegionTracker::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let out = t.locate(&name("east.h1.ghost"), NodeId(1));
        assert_eq!(out.host, None);
        assert_eq!(out.consults, 2);
    }

    #[test]
    fn logout_forgets() {
        let mut t = RegionTracker::new(vec![NodeId(0), NodeId(1)]);
        let u = name("east.h1.alice");
        t.login(&u, NodeId(5), NodeId(0));
        t.logout(&u, NodeId(0));
        assert_eq!(t.locate(&u, NodeId(0)).host, None);
    }

    #[test]
    #[should_panic(expected = "not a server of this region")]
    fn login_via_foreign_server_panics() {
        let mut t = RegionTracker::new(vec![NodeId(0)]);
        t.login(&name("east.h1.alice"), NodeId(5), NodeId(99));
    }
}
