//! The paper's modification of GHS (§3.3.1A(ii), Fig. 2): a two-level
//! spanning structure.
//!
//! "Since our mail system is partitioned into regions, we modify the
//! algorithm to find a back-bone MST to connect all regions. Then the MST
//! algorithm can be performed in each region to span all local nodes. The
//! back-bone MST is formed by nodes which are directly connected to nodes
//! in other regions."
//!
//! Construction: contract each region to a super-node whose mutual edge
//! weight is the lightest physical inter-region link; the MST of that
//! contracted graph is the backbone, realised by those physical links
//! (whose endpoints are gateways). Each region independently builds a
//! local MST over its intra-region edges. Local trees plus backbone form
//! a spanning tree of the whole network:
//! `Σ_r (n_r − 1) + (R − 1) = N − 1` edges.
//!
//! Both a centralized planner ([`build_two_level`], Kruskal-based) and the
//! distributed construction ([`build_two_level_distributed`], running the
//! actual GHS protocol per region and on the contracted graph) are
//! provided; they agree on distinct-weight inputs.

use std::collections::BTreeMap;

use lems_net::graph::{EdgeId, Graph, NodeId, Weight};
use lems_net::mst::kruskal;
use lems_net::topology::{RegionId, Topology};

use crate::ghs::{run_ghs, GhsStats};

/// A two-level spanning structure over a multi-region topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoLevelMst {
    /// Per-region local MST edges (physical edge ids).
    pub local_edges: BTreeMap<RegionId, Vec<EdgeId>>,
    /// Backbone edges (physical inter-region edge ids).
    pub backbone_edges: Vec<EdgeId>,
}

impl TwoLevelMst {
    /// All edges, local then backbone.
    pub fn all_edges(&self) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = self.local_edges.values().flatten().copied().collect();
        v.extend(&self.backbone_edges);
        v.sort_unstable();
        v
    }

    /// Total weight of the structure.
    pub fn total_weight(&self, g: &Graph) -> Weight {
        self.all_edges().iter().map(|&e| g.edge(e).weight).sum()
    }

    /// True if the structure is a spanning tree of the whole topology.
    pub fn spans(&self, t: &Topology) -> bool {
        let edges = self.all_edges();
        if edges.len() + 1 != t.node_count() {
            return false;
        }
        let mut uf = lems_net::mst::UnionFind::new(t.node_count());
        for &eid in &edges {
            let e = t.graph().edge(eid);
            if !uf.union(e.a.0, e.b.0) {
                return false; // cycle
            }
        }
        uf.component_count() == 1
    }

    /// Tree adjacency over the whole topology.
    pub fn adjacency(&self, t: &Topology) -> Vec<Vec<NodeId>> {
        let mut adj = vec![Vec::new(); t.node_count()];
        for &eid in &self.all_edges() {
            let e = t.graph().edge(eid);
            adj[e.a.0].push(e.b);
            adj[e.b.0].push(e.a);
        }
        adj
    }
}

/// The contracted "region graph": one node per region, one edge per region
/// pair with an inter-region link, weighted by the lightest such link.
/// Returns the graph, the region order (graph node `i` = `regions[i]`),
/// and for each contracted edge the physical edge realising it.
fn contract(t: &Topology) -> (Graph, Vec<RegionId>, Vec<EdgeId>) {
    let regions = t.region_ids();
    let index: BTreeMap<RegionId, usize> =
        regions.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut best: BTreeMap<(usize, usize), EdgeId> = BTreeMap::new();
    for eid in t.inter_region_edges() {
        let e = t.graph().edge(eid);
        let (ra, rb) = (index[&t.region(e.a)], index[&t.region(e.b)]);
        let key = if ra < rb { (ra, rb) } else { (rb, ra) };
        match best.get(&key) {
            Some(&cur) if t.graph().edge(cur).weight <= e.weight => {}
            _ => {
                best.insert(key, eid);
            }
        }
    }
    let mut g = Graph::with_nodes(regions.len());
    let mut realisation = Vec::new();
    for (&(a, b), &eid) in &best {
        g.add_edge(NodeId(a), NodeId(b), t.graph().edge(eid).weight);
        realisation.push(eid);
    }
    (g, regions, realisation)
}

/// Extracts a region's intra-region subgraph. Returns the subgraph and the
/// mapping from subgraph node index to topology node.
fn region_subgraph(t: &Topology, region: RegionId) -> (Graph, Vec<NodeId>) {
    let nodes: Vec<NodeId> = t.nodes().filter(|&n| t.region(n) == region).collect();
    let index: BTreeMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut g = Graph::with_nodes(nodes.len());
    for eid in 0..t.graph().edge_count() {
        let e = t.graph().edge(EdgeId(eid));
        if let (Some(&a), Some(&b)) = (index.get(&e.a), index.get(&e.b)) {
            g.add_edge(NodeId(a), NodeId(b), e.weight);
        }
    }
    (g, nodes)
}

/// Centralized two-level construction (Kruskal per region + Kruskal on the
/// contracted graph). The planning-time counterpart of the distributed
/// build; used for cost tables and as a verification oracle.
///
/// # Panics
///
/// Panics if the topology is disconnected or some region's intra-region
/// subgraph is disconnected (the paper's model assumes both).
pub fn build_two_level(t: &Topology) -> TwoLevelMst {
    assert!(t.is_connected(), "topology must be connected");
    let mut local_edges = BTreeMap::new();
    for region in t.region_ids() {
        let (sub, nodes) = region_subgraph(t, region);
        assert!(
            sub.is_connected(),
            "region {region} must be internally connected"
        );
        let tree = kruskal(&sub);
        let mut phys = Vec::new();
        for &sub_eid in tree.edges() {
            let e = sub.edge(sub_eid);
            let (a, b) = (nodes[e.a.0], nodes[e.b.0]);
            // Subgraph edges mirror physical edges by construction.
            phys.extend(t.graph().edge_between(a, b));
        }
        phys.sort_unstable();
        local_edges.insert(region, phys);
    }

    let (contracted, _regions, realisation) = contract(t);
    let backbone_tree = kruskal(&contracted);
    let mut backbone_edges: Vec<EdgeId> = backbone_tree
        .edges()
        .iter()
        .map(|&ce| realisation[ce.0])
        .collect();
    backbone_edges.sort_unstable();

    TwoLevelMst {
        local_edges,
        backbone_edges,
    }
}

/// Distributed two-level construction: runs the real GHS protocol inside
/// each region (gateway nodes and all) and once more among the regions'
/// representatives over the contracted graph, as §3.3.1A(ii) describes.
/// Returns the structure plus the aggregate protocol statistics.
///
/// # Panics
///
/// As [`build_two_level`], plus GHS's distinct-weight requirement on each
/// region subgraph and the contracted graph.
pub fn build_two_level_distributed(t: &Topology, seed: u64) -> (TwoLevelMst, GhsStats) {
    assert!(t.is_connected(), "topology must be connected");
    let mut agg = GhsStats::default();
    let mut merge = |s: &GhsStats| {
        for (&k, &v) in &s.sent {
            *agg.sent.entry(k).or_insert(0) += v;
        }
        agg.requeues += s.requeues;
        agg.halted_nodes += s.halted_nodes;
    };

    let mut local_edges = BTreeMap::new();
    for region in t.region_ids() {
        let (sub, nodes) = region_subgraph(t, region);
        assert!(
            sub.is_connected(),
            "region {region} must be internally connected"
        );
        let mut phys = Vec::new();
        if sub.node_count() >= 2 {
            let run = run_ghs(&sub, seed ^ region.0 as u64);
            merge(&run.stats);
            for &(a, b) in &run.edges {
                let (pa, pb) = (nodes[a.0], nodes[b.0]);
                phys.extend(t.graph().edge_between(pa, pb));
            }
        }
        phys.sort_unstable();
        local_edges.insert(region, phys);
    }

    let (contracted, _regions, realisation) = contract(t);
    let mut backbone_edges = Vec::new();
    if contracted.node_count() >= 2 {
        let run = run_ghs(&contracted, seed ^ 0xbacc_b04e);
        merge(&run.stats);
        for &(a, b) in &run.edges {
            backbone_edges.extend(contracted.edge_between(a, b).map(|ce| realisation[ce.0]));
        }
    }
    backbone_edges.sort_unstable();

    (
        TwoLevelMst {
            local_edges,
            backbone_edges,
        },
        agg,
    )
}

/// The flat (single-level) MST of the whole topology, for comparing the
/// cost of regional autonomy: the two-level structure's weight is ≥ the
/// flat MST's, because the backbone is constrained to one link per region
/// pair.
pub fn flat_mst_weight(t: &Topology) -> Weight {
    kruskal(t.graph()).total_weight()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_net::generators::{multi_region, MultiRegionConfig};
    use lems_sim::rng::SimRng;

    fn world(seed: u64, regions: usize) -> Topology {
        let mut rng = SimRng::seed(seed);
        let cfg = MultiRegionConfig {
            regions,
            hosts_per_region: 3,
            servers_per_region: 3,
            ..MultiRegionConfig::default()
        };
        multi_region(&mut rng, &cfg)
    }

    /// Rebuilds the topology with globally distinct weights (required by
    /// GHS); regenerates from the graph.
    fn distinct(t: &Topology) -> Topology {
        // Weights in `multi_region` are quantized and can collide; nudge
        // them by edge index like Graph::with_distinct_weights but through
        // a fresh Topology.
        let g = t.graph().with_distinct_weights();
        let mut t2 = Topology::new();
        for n in t.nodes() {
            match t.kind(n) {
                lems_net::topology::NodeKind::Host => t2.add_host(t.region(n), t.name(n)),
                lems_net::topology::NodeKind::Server => t2.add_server(t.region(n), t.name(n)),
            };
        }
        for e in g.edges() {
            t2.link(e.a, e.b, e.weight);
        }
        t2
    }

    #[test]
    fn two_level_spans_the_network() {
        for seed in 0..5 {
            let t = distinct(&world(seed, 4));
            let two = build_two_level(&t);
            assert!(two.spans(&t), "seed {seed}");
            assert_eq!(two.backbone_edges.len(), 3);
        }
    }

    #[test]
    fn backbone_edges_connect_gateways() {
        let t = distinct(&world(7, 4));
        let two = build_two_level(&t);
        let gateways = t.gateways();
        for &eid in &two.backbone_edges {
            let e = t.graph().edge(eid);
            assert!(gateways.contains(&e.a) && gateways.contains(&e.b));
            assert_ne!(t.region(e.a), t.region(e.b));
        }
    }

    #[test]
    fn distributed_matches_centralized() {
        for seed in 0..4 {
            let t = distinct(&world(seed + 10, 3));
            let central = build_two_level(&t);
            let (dist, stats) = build_two_level_distributed(&t, seed);
            assert_eq!(central, dist, "seed {seed}");
            assert!(stats.total_sent() > 0);
        }
    }

    #[test]
    fn two_level_weight_at_least_flat() {
        for seed in 0..5 {
            let t = distinct(&world(seed + 20, 5));
            let two = build_two_level(&t);
            let flat = flat_mst_weight(&t);
            assert!(
                two.total_weight(t.graph()) >= flat,
                "two-level cannot beat the unconstrained MST"
            );
        }
    }

    #[test]
    fn single_region_degenerates_to_local_mst() {
        let t = distinct(&world(30, 1));
        let two = build_two_level(&t);
        assert!(two.backbone_edges.is_empty());
        assert!(two.spans(&t));
        assert_eq!(two.total_weight(t.graph()), flat_mst_weight(&t));
    }

    #[test]
    fn adjacency_has_tree_degree_sum() {
        let t = distinct(&world(31, 4));
        let two = build_two_level(&t);
        let adj = two.adjacency(&t);
        let degree_sum: usize = adj.iter().map(Vec::len).sum();
        assert_eq!(degree_sum, 2 * (t.node_count() - 1));
    }
}
