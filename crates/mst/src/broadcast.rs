//! Broadcasting and response collection over a spanning tree (§3.3.1A/B).
//!
//! "Upon receiving a request from the parent node in the MST, each node
//! sends the message to its children nodes, and waits for the messages to
//! come back from all the children nodes. It then combines them into a
//! single summary message and returns it to its parent node. … a parent
//! node should time out if it waits for a certain period of time and the
//! unavailable estimates can be marked so."
//!
//! The actor-based simulation exercises exactly that protocol, including
//! node failures masked by parent timeouts; pure cost functions compare
//! MST broadcast against flooding and per-recipient unicast (the paper's
//! efficiency argument for using the MST).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

#[cfg(test)]
use lems_net::graph::Weight;
use lems_net::graph::{Graph, NodeId};
use lems_net::shortest_path::DistanceTable;
use lems_net::transport::Transport;
use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx, TimerId};
use lems_sim::failure::FailurePlan;
use lems_sim::time::{SimDuration, SimTime};

/// Aggregated result flowing up the tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Nodes that answered (including the subtree root).
    pub responded: u64,
    /// Matches found (e.g. users whose attributes satisfy the query).
    pub matches: u64,
    /// Subtrees marked unavailable by a parent timeout.
    pub unavailable: u64,
}

impl Aggregate {
    fn merge(&mut self, other: Aggregate) {
        self.responded += other.responded;
        self.matches += other.matches;
        self.unavailable += other.unavailable;
    }
}

/// Tree protocol messages.
#[derive(Clone, Copy, Debug)]
pub enum BcastMsg {
    /// Query flowing down from the parent.
    Query,
    /// Aggregated response flowing up to the parent.
    Response(Aggregate),
}

/// One tree node in the broadcast/convergecast protocol.
struct BcastNode {
    node: NodeId,
    transport: Rc<Transport>,
    neighbors: Vec<NodeId>,
    /// Matches this node contributes (its local search result).
    local_matches: u64,
    /// Per-child aggregation state for the in-flight query.
    parent: Option<NodeId>,
    waiting_children: Vec<NodeId>,
    acc: Aggregate,
    timer: Option<TimerId>,
    /// How long to wait for children before marking them unavailable
    /// (precomputed per node from its subtree depth).
    timeout: SimDuration,
    /// Filled in at the root when the convergecast completes.
    result: Rc<RefCell<Option<(Aggregate, SimTime)>>>,
    is_root: bool,
}

impl BcastNode {
    fn finish(&mut self, ctx: &mut Ctx<'_, BcastMsg>) {
        if let Some(t) = self.timer.take() {
            ctx.cancel_timer(t);
        }
        let mut out = self.acc;
        out.responded += 1;
        out.matches += self.local_matches;
        if self.is_root {
            *self.result.borrow_mut() = Some((out, ctx.now()));
        } else if let Some(p) = self.parent {
            self.transport
                .send_edge(ctx, self.node, p, BcastMsg::Response(out));
        }
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_, BcastMsg>) {
        if self.waiting_children.is_empty() {
            self.finish(ctx);
        }
    }
}

impl Actor for BcastNode {
    type Msg = BcastMsg;

    fn on_message(&mut self, from: ActorId, msg: BcastMsg, ctx: &mut Ctx<'_, BcastMsg>) {
        match msg {
            BcastMsg::Query => {
                let parent = self.transport.node_of(from);
                self.parent = parent;
                self.acc = Aggregate::default();
                self.waiting_children = self
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|&n| Some(n) != parent)
                    .collect();
                for &c in &self.waiting_children.clone() {
                    self.transport.send_edge(ctx, self.node, c, BcastMsg::Query);
                }
                if !self.waiting_children.is_empty() {
                    self.timer = Some(ctx.set_timer(self.timeout, 0));
                }
                self.maybe_finish(ctx);
            }
            BcastMsg::Response(agg) => {
                let Some(child) = self.transport.node_of(from) else {
                    return;
                };
                if let Some(pos) = self.waiting_children.iter().position(|&c| c == child) {
                    self.waiting_children.remove(pos);
                    self.acc.merge(agg);
                    self.maybe_finish(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, _id: TimerId, _tag: u64, ctx: &mut Ctx<'_, BcastMsg>) {
        // Children that have not answered are marked unavailable, as the
        // paper prescribes.
        self.timer = None;
        self.acc.unavailable += self.waiting_children.len() as u64;
        self.waiting_children.clear();
        self.finish(ctx);
    }
}

/// Outcome of one simulated broadcast/convergecast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// The root's final aggregate.
    pub aggregate: Aggregate,
    /// Virtual time from query injection to root completion.
    pub completed_at: SimTime,
}

/// Configuration for [`simulate_broadcast`].
#[derive(Clone, Debug)]
pub struct BroadcastConfig {
    /// The node initiating the query.
    pub root: NodeId,
    /// Matches contributed by each node (aligned with graph nodes;
    /// missing entries count 0).
    pub local_matches: Vec<u64>,
    /// Extra waiting slack granted per tree level. Each node's timeout is
    /// `2 × (its subtree's longest path delay) + grace × (levels below + 1)`,
    /// so a parent always outlasts its children's own timeouts.
    pub grace: SimDuration,
    /// Engine seed.
    pub seed: u64,
}

/// Computes each node's timeout from the tree oriented at `root`.
fn subtree_timeouts(
    g: &Graph,
    adj: &[Vec<NodeId>],
    root: NodeId,
    grace: SimDuration,
) -> Vec<SimDuration> {
    let n = adj.len();
    // Orient the tree: compute order by DFS from root.
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![root];
    let mut seen = vec![false; n];
    seen[root.0] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &v in &adj[u.0] {
            if !seen[v.0] {
                seen[v.0] = true;
                parent[v.0] = Some(u);
                stack.push(v);
            }
        }
    }
    // Bottom-up: longest path delay and height below each node.
    let mut path_delay = vec![SimDuration::ZERO; n];
    let mut height = vec![0u32; n];
    for &u in order.iter().rev() {
        for &v in &adj[u.0] {
            if parent[v.0] == Some(u) {
                // Adjacency was built from this graph, so the edge exists.
                let Some(eid) = g.edge_between(u, v) else {
                    continue;
                };
                let d = g.edge(eid).weight.as_duration() + path_delay[v.0];
                if d > path_delay[u.0] {
                    path_delay[u.0] = d;
                }
                height[u.0] = height[u.0].max(height[v.0] + 1);
            }
        }
    }
    (0..n)
        .map(|i| path_delay[i] * 2 + grace * u64::from(height[i] + 1))
        .collect()
}

/// Event budget for one broadcast/convergecast run. The protocol
/// processes O(nodes) messages plus bounded retry timers, so any
/// legitimate run sits orders of magnitude below this; exhausting it
/// means a non-converging retry loop, reported as a failed broadcast.
pub const BROADCAST_EVENT_BUDGET: u64 = 1_000_000;

/// Runs the broadcast/convergecast protocol over `tree_adjacency` (a
/// spanning tree of `g`), with failures from `plan` (indexed by node id).
///
/// Returns `None` if the root itself is down for the whole run, or if the
/// run exceeds [`BROADCAST_EVENT_BUDGET`] events without quiescing (a
/// livelocked retry loop rather than a finishing protocol).
///
/// # Panics
///
/// Panics if the adjacency is not shaped for `g`.
pub fn simulate_broadcast(
    g: &Graph,
    tree_adjacency: &[Vec<NodeId>],
    cfg: &BroadcastConfig,
    plan: &FailurePlan,
) -> Option<BroadcastOutcome> {
    assert_eq!(
        tree_adjacency.len(),
        g.node_count(),
        "adjacency must cover every node"
    );
    let mut sim: ActorSim<BcastMsg> = ActorSim::new(cfg.seed);
    let mut transport = Transport::new(g);
    let result: Rc<RefCell<Option<(Aggregate, SimTime)>>> = Rc::new(RefCell::new(None));

    let timeouts = subtree_timeouts(g, tree_adjacency, cfg.root, cfg.grace);
    // One shared placeholder until the bound transport is installed.
    let placeholder = Rc::new(Transport::new(g));
    let mut actor_ids = Vec::with_capacity(g.node_count());
    for n in g.nodes() {
        let node = BcastNode {
            node: n,
            transport: Rc::clone(&placeholder),
            neighbors: tree_adjacency[n.0].clone(),
            local_matches: cfg.local_matches.get(n.0).copied().unwrap_or(0),
            parent: None,
            waiting_children: Vec::new(),
            acc: Aggregate::default(),
            timer: None,
            timeout: timeouts[n.0],
            result: Rc::clone(&result),
            is_root: n == cfg.root,
        };
        let aid = sim.add_actor(node);
        transport.bind(n, aid);
        actor_ids.push(aid);
    }
    let transport = Rc::new(transport);
    for &aid in &actor_ids {
        if let Some(node) = sim.actor_mut::<BcastNode>(aid) {
            node.transport = Rc::clone(&transport);
        }
    }

    // Apply failures: node i <-> actor_ids[i].
    for actor in plan.affected_actors() {
        for o in plan.outages(actor) {
            if actor.0 < actor_ids.len() {
                sim.schedule_crash(actor_ids[actor.0], o.down_at);
                sim.schedule_recover(actor_ids[actor.0], o.up_at);
            }
        }
    }

    sim.inject(
        actor_ids[cfg.root.0],
        BcastMsg::Query,
        SimDuration::from_units(0.001),
    );
    if !sim.run_to_quiescence_bounded(BROADCAST_EVENT_BUDGET) {
        return None;
    }

    let out = result.borrow();
    out.map(|(aggregate, completed_at)| BroadcastOutcome {
        aggregate,
        completed_at,
    })
}

/// Pure cost comparison (§3.3.1B): "the total cost of traversing the MST
/// is the sum of the weights of the MST".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostComparison {
    /// Broadcast once over the tree edges.
    pub mst_units: f64,
    /// Naive flooding: one transmission on every edge of the graph.
    pub flooding_units: f64,
    /// Separate unicast from the root to every other node along shortest
    /// paths.
    pub unicast_units: f64,
}

/// Computes all three costs for broadcasting from `root` over the tree
/// whose edge ids are `tree_edges`.
pub fn cost_comparison(
    g: &Graph,
    dist: &DistanceTable,
    root: NodeId,
    tree_edges: &[lems_net::graph::EdgeId],
) -> CostComparison {
    let mst_units: f64 = tree_edges
        .iter()
        .map(|&e| g.edge(e).weight.as_units())
        .sum();
    let flooding_units: f64 = g.edges().iter().map(|e| e.weight.as_units()).sum();
    let unicast_units: f64 = g
        .nodes()
        .filter(|&n| n != root)
        .map(|n| dist.distance(root, n).as_units())
        .sum();
    CostComparison {
        mst_units,
        flooding_units,
        unicast_units,
    }
}

/// Per-region cost table of §3.3.1B: "a table listing the costs for
/// delivery to the targeted recipients in each region can be generated.
/// The user who is interested in broadcasting mail then can choose the
/// regions he wants to send his mail to."
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionCostTable {
    /// `(region, delivery cost in units)`, ascending by region id.
    pub rows: Vec<(lems_net::topology::RegionId, f64)>,
}

impl RegionCostTable {
    /// Total cost of broadcasting to every region.
    pub fn total(&self) -> f64 {
        self.rows.iter().map(|&(_, c)| c).sum()
    }

    /// Cheapest subset of regions whose combined cost fits `budget`
    /// (greedy, cheapest-first — the flow-control use of the table).
    pub fn regions_within_budget(&self, budget: f64) -> Vec<lems_net::topology::RegionId> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut chosen = Vec::new();
        let mut spent = 0.0;
        for (r, c) in rows {
            if spent + c <= budget {
                spent += c;
                chosen.push(r);
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

/// Builds the per-region cost table for a two-level structure: a region's
/// cost is its local MST weight plus the backbone edges on the (backbone)
/// path from the root's region.
pub fn region_cost_table(
    t: &lems_net::topology::Topology,
    two_level: &crate::backbone::TwoLevelMst,
    root_region: lems_net::topology::RegionId,
) -> RegionCostTable {
    use lems_net::topology::RegionId;
    let regions = t.region_ids();
    // Build the backbone graph over regions to compute path costs.
    let index: BTreeMap<RegionId, usize> =
        regions.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut bg = Graph::with_nodes(regions.len());
    for &eid in &two_level.backbone_edges {
        let e = t.graph().edge(eid);
        bg.add_edge(
            NodeId(index[&t.region(e.a)]),
            NodeId(index[&t.region(e.b)]),
            e.weight,
        );
    }
    let dist = DistanceTable::build(&bg);
    let root_idx = NodeId(index[&root_region]);

    let rows = regions
        .iter()
        .map(|&r| {
            let local: f64 = two_level.local_edges[&r]
                .iter()
                .map(|&e| t.graph().edge(e).weight.as_units())
                .sum();
            let backbone = if r == root_region {
                0.0
            } else {
                let w = dist.distance(root_idx, NodeId(index[&r]));
                if w.is_infinite() {
                    f64::INFINITY
                } else {
                    w.as_units()
                }
            };
            (r, local + backbone)
        })
        .collect();
    RegionCostTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_net::mst::kruskal;
    use lems_sim::actor::ActorId;

    fn chain(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(
                NodeId(i - 1),
                NodeId(i),
                Weight::from_units(1.0 + i as f64 * 0.125),
            );
        }
        g
    }

    fn tree_adj(g: &Graph) -> Vec<Vec<NodeId>> {
        kruskal(g).adjacency(g)
    }

    #[test]
    fn full_tree_aggregation() {
        let g = chain(6);
        let adj = tree_adj(&g);
        let cfg = BroadcastConfig {
            root: NodeId(0),
            local_matches: vec![1, 0, 2, 0, 3, 1],
            grace: SimDuration::from_units(2.0),
            seed: 1,
        };
        let out = simulate_broadcast(&g, &adj, &cfg, &FailurePlan::new()).unwrap();
        assert_eq!(out.aggregate.responded, 6);
        assert_eq!(out.aggregate.matches, 7);
        assert_eq!(out.aggregate.unavailable, 0);
    }

    #[test]
    fn dead_subtree_is_marked_unavailable() {
        let g = chain(6);
        let adj = tree_adj(&g);
        let mut plan = FailurePlan::new();
        // Node 3 dead for the whole run: nodes 3,4,5 unreachable.
        plan.add_outage(ActorId(3), SimTime::ZERO, SimTime::from_units(1e9))
            .unwrap();
        let cfg = BroadcastConfig {
            root: NodeId(0),
            local_matches: vec![1; 6],
            grace: SimDuration::from_units(2.0),
            seed: 2,
        };
        let out = simulate_broadcast(&g, &adj, &cfg, &plan).unwrap();
        assert_eq!(out.aggregate.responded, 3); // 0,1,2
        assert_eq!(out.aggregate.matches, 3);
        assert_eq!(out.aggregate.unavailable, 1); // node 2 marked its child
    }

    #[test]
    fn root_down_returns_none() {
        let g = chain(3);
        let adj = tree_adj(&g);
        let mut plan = FailurePlan::new();
        plan.add_outage(ActorId(0), SimTime::ZERO, SimTime::from_units(1e9))
            .unwrap();
        let cfg = BroadcastConfig {
            root: NodeId(0),
            local_matches: vec![1; 3],
            grace: SimDuration::from_units(2.0),
            seed: 3,
        };
        assert_eq!(simulate_broadcast(&g, &adj, &cfg, &plan), None);
    }

    #[test]
    fn star_aggregates_in_one_round() {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), Weight::from_units(i as f64));
        }
        let adj = tree_adj(&g);
        let cfg = BroadcastConfig {
            root: NodeId(0),
            local_matches: vec![0, 1, 1, 1, 1],
            grace: SimDuration::from_units(2.0),
            seed: 4,
        };
        let out = simulate_broadcast(&g, &adj, &cfg, &FailurePlan::new()).unwrap();
        assert_eq!(out.aggregate.matches, 4);
        // Completion = 2 × the slowest spoke (4 units), plus injection;
        // well inside the root's timeout of 8 + grace.
        assert!(out.completed_at <= SimTime::from_units(8.01));
    }

    #[test]
    fn mst_broadcast_is_cheapest() {
        // A graph with redundancy: flooding must cost more than the tree.
        let mut g = Graph::with_nodes(6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                g.add_edge(
                    NodeId(i),
                    NodeId(j),
                    Weight::from_units(1.0 + (i * 7 + j) as f64 * 0.25),
                );
            }
        }
        let tree = kruskal(&g);
        let dist = DistanceTable::build(&g);
        let c = cost_comparison(&g, &dist, NodeId(0), tree.edges());
        assert!(c.mst_units < c.flooding_units);
        assert!(c.mst_units <= c.unicast_units);
    }

    #[test]
    fn region_cost_table_budget_selection() {
        let table = RegionCostTable {
            rows: vec![
                (lems_net::topology::RegionId(0), 5.0),
                (lems_net::topology::RegionId(1), 20.0),
                (lems_net::topology::RegionId(2), 10.0),
            ],
        };
        assert_eq!(table.total(), 35.0);
        let chosen = table.regions_within_budget(16.0);
        assert_eq!(
            chosen,
            vec![
                lems_net::topology::RegionId(0),
                lems_net::topology::RegionId(2)
            ]
        );
        assert!(table.regions_within_budget(1.0).is_empty());
    }
}
