//! The distributed minimum-spanning-tree algorithm of Gallager, Humblet,
//! and Spira \[GAL83\], §3.3.1A(i) of the paper.
//!
//! "Each node performs the same local algorithm, which consists of sending
//! messages over attached links and waiting for incoming messages and
//! processing these messages. Messages can be transmitted independently in
//! both directions on an edge and arrive after an unpredictable but finite
//! delay, without error and in sequence." — exactly the semantics of
//! `lems-sim`'s actor engine with FIFO links.
//!
//! This is a faithful transcription of the GHS automaton: node states
//! *Sleeping / Find / Found*, edge states *Basic / Branch / Rejected*, the
//! seven message types, level-based merging and absorbing, and deferred
//! processing ("place received message on end of queue") implemented with a
//! per-node pending queue retried after every handled message.
//!
//! Edge weights must be pairwise distinct (use
//! [`Graph::with_distinct_weights`] for graphs that are not).
//!
//! [`Graph::with_distinct_weights`]: lems_net::graph::Graph::with_distinct_weights

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use lems_net::graph::{Graph, NodeId, Weight};
use lems_net::transport::Transport;
use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx};
use lems_sim::metrics::MetricsRegistry;

use crate::messages::{FragmentId, GhsMsg, NodePhase};

/// The state of an incident edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeState {
    /// Not yet decided.
    Basic,
    /// Part of the fragment's spanning tree.
    Branch,
    /// Proven to lead inside the same fragment.
    Rejected,
}

/// Counters for the protocol's message complexity (the paper's efficiency
/// argument: GHS uses `O(N log N + E)` messages).
#[derive(Clone, Debug, Default)]
pub struct GhsStats {
    /// Messages sent, by type tag.
    pub sent: BTreeMap<&'static str, u64>,
    /// Deferred deliveries (messages that had to wait for a local state
    /// change before they could be processed).
    pub requeues: u64,
    /// Nodes that have locally detected termination.
    pub halted_nodes: usize,
}

impl GhsStats {
    /// Total protocol messages (excluding requeues).
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }
}

/// The message envelope carried by the simulation: GHS messages are
/// edge-local, so the sending node rides along.
#[derive(Clone, Copy, Debug)]
pub struct Env {
    /// The neighbor that sent this message.
    pub from: NodeId,
    /// The protocol message.
    pub msg: GhsMsg,
}

/// One GHS node.
pub struct GhsNode {
    node: NodeId,
    transport: Rc<Transport>,
    /// Neighbor -> edge weight.
    weights: BTreeMap<NodeId, Weight>,
    edge_state: BTreeMap<NodeId, EdgeState>,
    sleeping: bool,
    level: u32,
    fragment: FragmentId,
    phase: NodePhase,
    find_count: u32,
    best_edge: Option<NodeId>,
    best_wt: Option<Weight>,
    test_edge: Option<NodeId>,
    in_branch: Option<NodeId>,
    halted: bool,
    stats: Rc<RefCell<GhsStats>>,
    /// Per-node telemetry: one counter per protocol message kind, plus
    /// `requeues` and `halted` — the per-actor view of [`GhsStats`].
    metrics: MetricsRegistry,
    /// Messages waiting for a local state change ("place received message
    /// on end of queue" in \[GAL83\]); retried after every handled message.
    pending: Vec<Env>,
    /// Whether this node awakens spontaneously at start. GHS only needs
    /// *some* non-empty subset to do so; the rest wake on their first
    /// incoming message.
    spontaneous: bool,
}

impl GhsNode {
    fn new(
        node: NodeId,
        neighbors: &[(NodeId, Weight)],
        transport: Rc<Transport>,
        stats: Rc<RefCell<GhsStats>>,
    ) -> Self {
        GhsNode {
            node,
            transport,
            weights: neighbors.iter().copied().collect(),
            edge_state: neighbors
                .iter()
                .map(|&(n, _)| (n, EdgeState::Basic))
                .collect(),
            sleeping: true,
            level: 0,
            fragment: 0,
            phase: NodePhase::Found,
            find_count: 0,
            best_edge: None,
            best_wt: None,
            test_edge: None,
            in_branch: None,
            halted: false,
            stats,
            metrics: MetricsRegistry::new(),
            pending: Vec::new(),
            spontaneous: true,
        }
    }

    /// Edges currently marked Branch (the node's view of the MST).
    pub fn branches(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .edge_state
            .iter()
            .filter(|&(_, &s)| s == EdgeState::Branch)
            .map(|(&n, _)| n)
            .collect();
        v.sort_unstable();
        v
    }

    /// True once this node has detected global termination (core nodes
    /// only; other nodes simply quiesce).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// One-line state summary for debugging stuck runs.
    pub fn debug_state(&self) -> String {
        format!(
            "n{} lvl={} frag={} phase={:?} fc={} test={:?} inb={:?} best={:?} edges={:?}",
            self.node.0,
            self.level,
            self.fragment,
            self.phase,
            self.find_count,
            self.test_edge.map(|n| n.0),
            self.in_branch.map(|n| n.0),
            self.best_edge.map(|n| n.0),
            {
                let mut v: Vec<(usize, char)> = self
                    .edge_state
                    .iter()
                    .map(|(&n, &s)| {
                        (
                            n.0,
                            match s {
                                EdgeState::Basic => 'b',
                                EdgeState::Branch => 'B',
                                EdgeState::Rejected => 'r',
                            },
                        )
                    })
                    .collect();
                v.sort_unstable();
                v
            }
        )
    }

    /// This node's telemetry registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn send(&mut self, ctx: &mut Ctx<'_, Env>, to: NodeId, msg: GhsMsg) {
        *self.stats.borrow_mut().sent.entry(msg.kind()).or_insert(0) += 1;
        self.metrics.inc(msg.kind());
        self.transport.send_edge(
            ctx,
            self.node,
            to,
            Env {
                from: self.node,
                msg,
            },
        );
    }

    fn defer(&mut self, from: NodeId, msg: GhsMsg) {
        self.stats.borrow_mut().requeues += 1;
        self.metrics.inc("requeues");
        self.pending.push(Env { from, msg });
    }

    fn min_basic_edge(&self) -> Option<NodeId> {
        self.edge_state
            .iter()
            .filter(|&(_, &s)| s == EdgeState::Basic)
            .map(|(&n, _)| n)
            .min_by_key(|&n| (self.weights[&n], n))
    }

    /// Procedure *wakeup*.
    fn wakeup(&mut self, ctx: &mut Ctx<'_, Env>) {
        if !self.sleeping {
            return;
        }
        self.sleeping = false;
        // GHS requires every node to have at least one edge; an isolated
        // node (a broken input) simply never joins a fragment.
        let Some(m) = self.min_basic_edge() else {
            return;
        };
        self.edge_state.insert(m, EdgeState::Branch);
        self.level = 0;
        self.phase = NodePhase::Found;
        self.find_count = 0;
        self.send(ctx, m, GhsMsg::Connect { level: 0 });
    }

    /// Procedure *test*.
    fn test(&mut self, ctx: &mut Ctx<'_, Env>) {
        match self.min_basic_edge() {
            Some(e) => {
                self.test_edge = Some(e);
                self.send(
                    ctx,
                    e,
                    GhsMsg::Test {
                        level: self.level,
                        fragment: self.fragment,
                    },
                );
            }
            None => {
                self.test_edge = None;
                self.report(ctx);
            }
        }
    }

    /// Procedure *report*.
    fn report(&mut self, ctx: &mut Ctx<'_, Env>) {
        if self.find_count == 0 && self.test_edge.is_none() {
            self.phase = NodePhase::Found;
            // Reporting requires an in_branch (an Initiate was received).
            let Some(in_branch) = self.in_branch else {
                return;
            };
            self.send(ctx, in_branch, GhsMsg::Report { best: self.best_wt });
        }
    }

    /// Procedure *change-root*.
    fn change_root(&mut self, ctx: &mut Ctx<'_, Env>) {
        // change_root is only reached after a best edge was elected.
        let Some(best) = self.best_edge else { return };
        if self.edge_state[&best] == EdgeState::Branch {
            self.send(ctx, best, GhsMsg::ChangeRoot);
        } else {
            self.edge_state.insert(best, EdgeState::Branch);
            self.send(ctx, best, GhsMsg::Connect { level: self.level });
        }
    }

    fn on_connect(&mut self, from: NodeId, level: u32, ctx: &mut Ctx<'_, Env>) -> bool {
        if self.sleeping {
            self.wakeup(ctx);
        }
        if level < self.level {
            // Absorb the lower-level fragment.
            self.edge_state.insert(from, EdgeState::Branch);
            self.send(
                ctx,
                from,
                GhsMsg::Initiate {
                    level: self.level,
                    fragment: self.fragment,
                    phase: self.phase,
                },
            );
            if self.phase == NodePhase::Find {
                self.find_count += 1;
            }
        } else if self.edge_state[&from] == EdgeState::Basic {
            // Same/higher level over a basic edge: wait.
            self.defer(from, GhsMsg::Connect { level });
            return false;
        } else {
            // Merge: the edge becomes the new core at level+1.
            self.send(
                ctx,
                from,
                GhsMsg::Initiate {
                    level: self.level + 1,
                    fragment: self.weights[&from].0,
                    phase: NodePhase::Find,
                },
            );
        }
        true
    }

    fn on_initiate(
        &mut self,
        from: NodeId,
        level: u32,
        fragment: FragmentId,
        phase: NodePhase,
        ctx: &mut Ctx<'_, Env>,
    ) {
        self.level = level;
        self.fragment = fragment;
        self.phase = phase;
        self.in_branch = Some(from);
        self.best_edge = None;
        self.best_wt = None;
        let branch_neighbors: Vec<NodeId> = self
            .edge_state
            .iter()
            .filter(|&(&n, &s)| n != from && s == EdgeState::Branch)
            .map(|(&n, _)| n)
            .collect();
        for n in branch_neighbors {
            self.send(
                ctx,
                n,
                GhsMsg::Initiate {
                    level,
                    fragment,
                    phase,
                },
            );
            if phase == NodePhase::Find {
                self.find_count += 1;
            }
        }
        if phase == NodePhase::Find {
            self.test(ctx);
        }
    }

    fn on_test(
        &mut self,
        from: NodeId,
        level: u32,
        fragment: FragmentId,
        ctx: &mut Ctx<'_, Env>,
    ) -> bool {
        if self.sleeping {
            self.wakeup(ctx);
        }
        if level > self.level {
            self.defer(from, GhsMsg::Test { level, fragment });
            return false;
        } else if fragment != self.fragment {
            self.send(ctx, from, GhsMsg::Accept);
        } else {
            if self.edge_state[&from] == EdgeState::Basic {
                self.edge_state.insert(from, EdgeState::Rejected);
            }
            if self.test_edge == Some(from) {
                self.test(ctx);
            } else {
                self.send(ctx, from, GhsMsg::Reject);
            }
        }
        true
    }

    fn on_accept(&mut self, from: NodeId, ctx: &mut Ctx<'_, Env>) {
        self.test_edge = None;
        let w = self.weights[&from];
        if self.best_wt.is_none_or(|b| w < b) {
            self.best_edge = Some(from);
            self.best_wt = Some(w);
        }
        self.report(ctx);
    }

    fn on_reject(&mut self, from: NodeId, ctx: &mut Ctx<'_, Env>) {
        if self.edge_state[&from] == EdgeState::Basic {
            self.edge_state.insert(from, EdgeState::Rejected);
        }
        self.test(ctx);
    }

    fn on_report(&mut self, from: NodeId, best: Option<Weight>, ctx: &mut Ctx<'_, Env>) -> bool {
        if Some(from) != self.in_branch {
            self.find_count -= 1;
            if let Some(w) = best {
                if self.best_wt.is_none_or(|b| w < b) {
                    self.best_wt = Some(w);
                    self.best_edge = Some(from);
                }
            }
            self.report(ctx);
        } else if self.phase == NodePhase::Find {
            self.defer(from, GhsMsg::Report { best });
            return false;
        } else {
            // This node and `from` are the two core nodes comparing
            // subtree results.
            match (best, self.best_wt) {
                (None, None) => {
                    // Minimum outgoing edge does not exist: the fragment
                    // spans the whole graph. Halt.
                    self.halted = true;
                    self.stats.borrow_mut().halted_nodes += 1;
                    self.metrics.inc("halted");
                }
                (Some(their), Some(ours)) if their > ours => self.change_root(ctx),
                (None, Some(_)) => self.change_root(ctx),
                _ => {
                    // Their side holds the minimum outgoing edge; they will
                    // change root.
                }
            }
        }
        true
    }

    /// Dispatches one message; returns false if it was deferred.
    fn dispatch(&mut self, env: Env, ctx: &mut Ctx<'_, Env>) -> bool {
        let Env { from, msg } = env;
        match msg {
            GhsMsg::Connect { level } => self.on_connect(from, level, ctx),
            GhsMsg::Initiate {
                level,
                fragment,
                phase,
            } => {
                self.on_initiate(from, level, fragment, phase, ctx);
                true
            }
            GhsMsg::Test { level, fragment } => self.on_test(from, level, fragment, ctx),
            GhsMsg::Accept => {
                self.on_accept(from, ctx);
                true
            }
            GhsMsg::Reject => {
                self.on_reject(from, ctx);
                true
            }
            GhsMsg::Report { best } => self.on_report(from, best, ctx),
            GhsMsg::ChangeRoot => {
                self.change_root(ctx);
                true
            }
        }
    }

    /// Retries deferred messages until a full pass makes no progress.
    fn drain_pending(&mut self, ctx: &mut Ctx<'_, Env>) {
        loop {
            if self.pending.is_empty() {
                return;
            }
            let batch = std::mem::take(&mut self.pending);
            let mut progressed = false;
            for env in batch {
                if self.dispatch(env, ctx) {
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }
}

impl Actor for GhsNode {
    type Msg = Env;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Env>) {
        // GHS allows any non-empty subset of nodes to awaken
        // spontaneously; the others wake on their first message.
        if self.spontaneous {
            self.wakeup(ctx);
        }
    }

    fn on_message(&mut self, _from: ActorId, env: Env, ctx: &mut Ctx<'_, Env>) {
        self.dispatch(env, ctx);
        self.drain_pending(ctx);
    }
}

/// The result of a distributed MST run.
#[derive(Clone, Debug)]
pub struct GhsRun {
    /// The tree edges, as sorted `(a, b)` node pairs with `a < b`.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Total tree weight.
    pub total_weight: Weight,
    /// Protocol statistics.
    pub stats: GhsStats,
    /// Per-node telemetry folded into one registry (per-kind message
    /// counters agree with [`GhsStats::sent`]).
    pub metrics: MetricsRegistry,
    /// Virtual time at quiescence.
    pub finished_at: lems_sim::time::SimTime,
}

/// Runs GHS on `g` inside a fresh simulation and returns the tree.
///
/// # Examples
///
/// ```
/// use lems_net::graph::{Graph, NodeId, Weight};
/// use lems_mst::ghs::run_ghs;
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), Weight::from_units(1.0));
/// g.add_edge(NodeId(1), NodeId(2), Weight::from_units(2.0));
/// g.add_edge(NodeId(0), NodeId(2), Weight::from_units(3.0));
/// let run = run_ghs(&g, 7);
/// assert_eq!(run.edges.len(), 2);
/// assert_eq!(run.total_weight, Weight::from_units(3.0));
/// ```
///
/// # Panics
///
/// Panics if `g` is not connected, has fewer than 2 nodes, or has
/// duplicate edge weights.
pub fn run_ghs(g: &Graph, seed: u64) -> GhsRun {
    let mut sim = GhsSim::start(g, seed);
    let quiesced = sim.run_bounded(50_000_000);
    assert!(quiesced, "GHS did not quiesce within the event bound");
    sim.into_run()
}

/// A started GHS simulation, steppable for debugging and experiments.
pub struct GhsSim {
    sim: ActorSim<Env>,
    actor_ids: Vec<ActorId>,
    stats: Rc<RefCell<GhsStats>>,
    weights: BTreeMap<(NodeId, NodeId), Weight>,
}

impl GhsSim {
    /// Spawns one [`GhsNode`] per graph node and wires the transport;
    /// every node awakens spontaneously.
    ///
    /// # Panics
    ///
    /// Panics if `g` has fewer than 2 nodes, is disconnected, or has
    /// duplicate edge weights.
    pub fn start(g: &Graph, seed: u64) -> Self {
        Self::start_with_initiators(g, seed, None)
    }

    /// As [`GhsSim::start`], but only `initiators` awaken spontaneously
    /// (`None` = all). The paper's model requires at least one initiator.
    ///
    /// # Panics
    ///
    /// As [`GhsSim::start`], plus an empty initiator set.
    pub fn start_with_initiators(g: &Graph, seed: u64, initiators: Option<&[NodeId]>) -> Self {
        assert!(g.node_count() >= 2, "GHS needs at least two nodes");
        assert!(g.is_connected(), "GHS requires a connected graph");
        assert!(
            g.has_distinct_weights(),
            "GHS requires distinct edge weights; use Graph::with_distinct_weights"
        );

        let mut sim: ActorSim<Env> = ActorSim::new(seed);
        let mut transport = Transport::new(g);
        let stats = Rc::new(RefCell::new(GhsStats::default()));

        // Create actors in node order so NodeId(i) <-> ActorId(i). One
        // shared placeholder transport stands in until the fully-bound
        // transport replaces it below (building a Transport computes
        // all-pairs shortest paths; doing that once, not per actor,
        // matters on large worlds).
        let placeholder = Rc::new(Transport::new(g));
        let mut actor_ids = Vec::with_capacity(g.node_count());
        for n in g.nodes() {
            let neighbors: Vec<(NodeId, Weight)> = g
                .neighbors(n)
                .map(|(m, eid)| (m, g.edge(eid).weight))
                .collect();
            let node = GhsNode::new(n, &neighbors, Rc::clone(&placeholder), Rc::clone(&stats));
            let aid = sim.add_actor(node);
            transport.bind(n, aid);
            actor_ids.push(aid);
        }
        let transport = Rc::new(transport);
        if let Some(init) = initiators {
            assert!(!init.is_empty(), "GHS needs at least one initiator");
        }
        for (i, &aid) in actor_ids.iter().enumerate() {
            if let Some(node) = sim.actor_mut::<GhsNode>(aid) {
                node.transport = Rc::clone(&transport);
                if let Some(init) = initiators {
                    node.spontaneous = init.contains(&NodeId(i));
                }
            }
        }

        let mut weights = BTreeMap::new();
        for e in g.edges() {
            weights.insert((e.a, e.b), e.weight);
            weights.insert((e.b, e.a), e.weight);
        }

        GhsSim {
            sim,
            actor_ids,
            stats,
            weights,
        }
    }

    /// Runs up to `max_events`; returns true on quiescence.
    pub fn run_bounded(&mut self, max_events: u64) -> bool {
        self.sim.run_to_quiescence_bounded(max_events)
    }

    /// Per-node metrics registries under stable `node:n<id>` scope names.
    pub fn metrics_snapshot(&self) -> Vec<(String, MetricsRegistry)> {
        self.actor_ids
            .iter()
            .enumerate()
            .filter_map(|(i, &aid)| {
                self.sim
                    .actor::<GhsNode>(aid)
                    .map(|n| (format!("node:n{i}"), n.metrics().clone()))
            })
            .collect()
    }

    /// All per-node registries folded into one run-wide aggregate.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for (_, m) in self.metrics_snapshot() {
            merged.merge(&m);
        }
        merged
    }

    /// One-line state summaries for every node (debugging).
    pub fn node_states(&self) -> Vec<String> {
        self.actor_ids
            .iter()
            .map(|&aid| {
                self.sim
                    .actor::<GhsNode>(aid)
                    .map(GhsNode::debug_state)
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Collects the result (callable once quiesced).
    pub fn into_run(self) -> GhsRun {
        let mut edge_set = std::collections::BTreeSet::<(NodeId, NodeId)>::new();
        for (i, &aid) in self.actor_ids.iter().enumerate() {
            let Some(node) = self.sim.actor::<GhsNode>(aid) else {
                continue;
            };
            for m in node.branches() {
                let pair = if NodeId(i) < m {
                    (NodeId(i), m)
                } else {
                    (m, NodeId(i))
                };
                edge_set.insert(pair);
            }
        }
        let edges: Vec<(NodeId, NodeId)> = edge_set.into_iter().collect();
        let total_weight = edges.iter().map(|&(a, b)| self.weights[&(a, b)]).sum();

        let metrics = self.merged_metrics();
        let stats = self.stats.borrow().clone();
        GhsRun {
            edges,
            total_weight,
            stats,
            metrics,
            finished_at: self.sim.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_net::mst::kruskal;
    use lems_sim::rng::SimRng;

    fn assert_matches_kruskal(g: &Graph, seed: u64) {
        let run = run_ghs(g, seed);
        let k = kruskal(g);
        assert_eq!(run.edges.len(), g.node_count() - 1, "edge count");
        assert_eq!(run.total_weight, k.total_weight(), "total weight");
        // Edge sets must be identical (distinct weights -> unique MST).
        let kruskal_set: std::collections::BTreeSet<(NodeId, NodeId)> = k
            .edges()
            .iter()
            .map(|&eid| {
                let e = g.edge(eid);
                (e.a, e.b)
            })
            .collect();
        let ghs_set: std::collections::BTreeSet<(NodeId, NodeId)> =
            run.edges.iter().copied().collect();
        assert_eq!(ghs_set, kruskal_set);
        // Exactly one core pair halts.
        assert!(run.stats.halted_nodes >= 1, "no node detected termination");
        // The per-node registries, merged, must agree with the shared
        // stats ledger kind-for-kind.
        for (&kind, &n) in &run.stats.sent {
            assert_eq!(run.metrics.counter(kind), n, "kind {kind}");
        }
        assert_eq!(run.metrics.counter("requeues"), run.stats.requeues);
        assert_eq!(run.metrics.counter("halted"), run.stats.halted_nodes as u64);
    }

    #[test]
    fn two_nodes() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), Weight::from_units(5.0));
        assert_matches_kruskal(&g, 1);
    }

    #[test]
    fn triangle() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Weight::from_units(1.0));
        g.add_edge(NodeId(1), NodeId(2), Weight::from_units(2.0));
        g.add_edge(NodeId(0), NodeId(2), Weight::from_units(3.0));
        assert_matches_kruskal(&g, 2);
    }

    #[test]
    fn line_and_ring() {
        let mut line = Graph::with_nodes(8);
        for i in 1..8 {
            line.add_edge(NodeId(i - 1), NodeId(i), Weight::from_units(1.0 + i as f64));
        }
        assert_matches_kruskal(&line, 3);

        let mut ring = Graph::with_nodes(8);
        for i in 0..8 {
            ring.add_edge(
                NodeId(i),
                NodeId((i + 1) % 8),
                Weight::from_units(1.0 + i as f64),
            );
        }
        assert_matches_kruskal(&ring, 4);
    }

    #[test]
    fn the_ghs_paper_example_shape() {
        // A complete graph on 5 nodes with distinct weights.
        let mut g = Graph::with_nodes(5);
        let mut w = 1.0;
        for a in 0..5 {
            for b in (a + 1)..5 {
                g.add_edge(NodeId(a), NodeId(b), Weight::from_units(w));
                w += 1.0;
            }
        }
        assert_matches_kruskal(&g, 5);
    }

    fn random_connected(rng: &mut SimRng, n: usize, extra: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            let j = rng.index(i);
            g.add_edge(
                NodeId(i),
                NodeId(j),
                Weight::from_units(rng.range(1..=1000) as f64),
            );
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra && attempts < extra * 20 {
            attempts += 1;
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b && g.edge_between(NodeId(a), NodeId(b)).is_none() {
                g.add_edge(
                    NodeId(a),
                    NodeId(b),
                    Weight::from_units(rng.range(1..=1000) as f64),
                );
                added += 1;
            }
        }
        g.with_distinct_weights()
    }

    #[test]
    fn random_graphs_match_kruskal() {
        for seed in 0..15 {
            let mut rng = SimRng::seed(seed);
            let n = 5 + rng.index(20);
            let g = random_connected(&mut rng, n, n);
            assert_matches_kruskal(&g, seed);
        }
    }

    #[test]
    fn message_complexity_is_reasonable() {
        // GHS bound: 5·N·log2(N) + 2·E messages.
        let mut rng = SimRng::seed(99);
        let n = 32;
        let g = random_connected(&mut rng, n, 2 * n);
        let run = run_ghs(&g, 99);
        let e = g.edge_count() as f64;
        let bound = 5.0 * (n as f64) * (n as f64).log2() + 2.0 * e;
        assert!(
            (run.stats.total_sent() as f64) < bound,
            "sent {} messages, bound {bound}",
            run.stats.total_sent()
        );
    }

    #[test]
    #[should_panic(expected = "distinct edge weights")]
    fn duplicate_weights_rejected() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
        g.add_edge(NodeId(1), NodeId(2), Weight::UNIT);
        let _ = run_ghs(&g, 1);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
        g.add_edge(NodeId(2), NodeId(3), Weight::from_units(2.0));
        let _ = run_ghs(&g, 1);
    }
}

#[cfg(test)]
mod initiator_tests {
    use super::*;
    use lems_net::mst::kruskal;
    use lems_sim::rng::SimRng;

    fn random_connected(rng: &mut SimRng, n: usize, extra: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            let j = rng.index(i);
            g.add_edge(
                NodeId(i),
                NodeId(j),
                Weight::from_units(rng.range(1..=500) as f64),
            );
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra && attempts < extra * 20 {
            attempts += 1;
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b && g.edge_between(NodeId(a), NodeId(b)).is_none() {
                g.add_edge(
                    NodeId(a),
                    NodeId(b),
                    Weight::from_units(rng.range(1..=500) as f64),
                );
                added += 1;
            }
        }
        g.with_distinct_weights()
    }

    /// GHS must produce the unique MST regardless of which (non-empty)
    /// subset of nodes awakens spontaneously — the others wake on their
    /// first Connect/Test message.
    #[test]
    fn any_initiator_subset_yields_the_mst() {
        for seed in 0..8u64 {
            let mut rng = SimRng::seed(seed ^ 0x51ee9);
            let n = 6 + rng.index(10);
            let g = random_connected(&mut rng, n, n / 2);
            let k = kruskal(&g);

            // Single initiator, two initiators, and a random half.
            let subsets: Vec<Vec<NodeId>> = vec![
                vec![NodeId(0)],
                vec![NodeId(0), NodeId(n - 1)],
                (0..n).filter(|i| i % 2 == 0).map(NodeId).collect(),
            ];
            for subset in subsets {
                let mut sim = GhsSim::start_with_initiators(&g, seed, Some(&subset));
                assert!(sim.run_bounded(10_000_000), "quiesce (seed {seed})");
                let run = sim.into_run();
                assert_eq!(
                    run.total_weight,
                    k.total_weight(),
                    "seed {seed}, initiators {subset:?}"
                );
                assert_eq!(run.edges.len(), n - 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one initiator")]
    fn empty_initiator_set_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
        let _ = GhsSim::start_with_initiators(&g, 1, Some(&[]));
    }
}
