//! # lems-mst — distributed minimum-weight spanning trees
//!
//! The machinery behind attribute-based mail distribution (§3.3.1A of
//! *"Designing Large Electronic Mail Systems"*, Bahaa-El-Din & Yuen,
//! ICDCS 1988):
//!
//! * [`messages`] — the Gallager–Humblet–Spira message alphabet;
//! * [`ghs`] — a faithful implementation of the distributed GHS MST
//!   algorithm \[GAL83\] over the `lems-sim` actor engine, verified
//!   edge-for-edge against centralized Kruskal;
//! * [`backbone`] — the paper's modification: a backbone MST connecting
//!   the regions through gateway nodes plus a local MST per region
//!   (Fig. 2), built both centrally and with the real distributed
//!   protocol;
//! * [`broadcast`] — broadcast and convergecast over the tree with parent
//!   timeouts masking dead subtrees, and the §3.3.1B cost analysis
//!   (MST vs flooding vs unicast, per-region cost tables for flow
//!   control).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backbone;
pub mod broadcast;
pub mod ghs;
pub mod messages;

pub use backbone::{build_two_level, build_two_level_distributed, flat_mst_weight, TwoLevelMst};
pub use broadcast::{
    cost_comparison, region_cost_table, simulate_broadcast, Aggregate, BroadcastConfig,
    BroadcastOutcome, CostComparison, RegionCostTable,
};
pub use ghs::{run_ghs, GhsNode, GhsRun, GhsSim, GhsStats};
pub use messages::{FragmentId, GhsMsg, NodePhase};
