//! The message alphabet of the Gallager–Humblet–Spira algorithm \[GAL83\].

use lems_net::graph::Weight;

/// A fragment is identified by the weight of its core edge (weights are
/// distinct, so this is unambiguous).
pub type FragmentId = u64;

/// The `S` parameter of `Initiate`: whether the receiving subtree should
/// search for the minimum outgoing edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodePhase {
    /// Searching for the minimum outgoing edge.
    Find,
    /// Search finished (or not started).
    Found,
}

/// The seven GHS message types, exchanged only between direct neighbors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GhsMsg {
    /// Merge/absorb request sent over the sender's minimum-weight basic
    /// edge.
    Connect {
        /// The sender's fragment level.
        level: u32,
    },
    /// New fragment identity flooding down branch edges.
    Initiate {
        /// Fragment level.
        level: u32,
        /// Fragment id (core-edge weight).
        fragment: FragmentId,
        /// Whether the subtree should search.
        phase: NodePhase,
    },
    /// "Is this edge outgoing?" probe.
    Test {
        /// The prober's level.
        level: u32,
        /// The prober's fragment id.
        fragment: FragmentId,
    },
    /// Positive answer to `Test`: the edge leaves the fragment.
    Accept,
    /// Negative answer to `Test`: both ends are in the same fragment.
    Reject,
    /// Convergecast of the minimum outgoing edge weight found in a
    /// subtree (`None` = no outgoing edge).
    Report {
        /// Best weight found, `None` for infinity.
        best: Option<Weight>,
    },
    /// Re-root the fragment toward its minimum outgoing edge.
    ChangeRoot,
}

impl GhsMsg {
    /// Short tag for per-type statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            GhsMsg::Connect { .. } => "connect",
            GhsMsg::Initiate { .. } => "initiate",
            GhsMsg::Test { .. } => "test",
            GhsMsg::Accept => "accept",
            GhsMsg::Reject => "reject",
            GhsMsg::Report { .. } => "report",
            GhsMsg::ChangeRoot => "changeroot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let msgs = [
            GhsMsg::Connect { level: 0 },
            GhsMsg::Initiate {
                level: 1,
                fragment: 2,
                phase: NodePhase::Find,
            },
            GhsMsg::Test {
                level: 1,
                fragment: 2,
            },
            GhsMsg::Accept,
            GhsMsg::Reject,
            GhsMsg::Report { best: None },
            GhsMsg::ChangeRoot,
        ];
        let kinds: std::collections::HashSet<&str> = msgs.iter().map(super::GhsMsg::kind).collect();
        assert_eq!(kinds.len(), msgs.len());
    }
}
