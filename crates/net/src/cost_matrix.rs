//! The host→server zero-load cost matrix behind the §3.1.1 pipeline.
//!
//! The assignment solver, the §3.1.3 reconfigurator, and GetMail
//! authority-list construction all consume the same quantity: `C_ij`, the
//! zero-load shortest-path communication time between host `i` and server
//! `j`. Building it through [`DistanceTable`] computes (and stores) the
//! full `n × n` all-pairs table — at the million-user scale tier (10k
//! hosts, 500 servers, ~10.5k nodes) that is ~110M entries and 10.5k
//! Dijkstra runs for a matrix that only needs `10k × 500` of them.
//!
//! [`CostMatrix`] computes exactly the host→server block: one Dijkstra per
//! *server* (servers are the smaller side by an order of magnitude),
//! fanned out across threads, stored as a single flat `Vec<f64>` in
//! host-major order. Build once, share everywhere.
//!
//! [`DistanceTable`]: crate::shortest_path::DistanceTable

use rayon::prelude::*;

use crate::shortest_path::dijkstra;
use crate::topology::Topology;

/// Flat host-major matrix of zero-load host→server shortest-path costs,
/// in time units.
///
/// # Examples
///
/// ```
/// use lems_net::cost_matrix::CostMatrix;
/// use lems_net::generators::fig1;
///
/// let f = fig1();
/// let m = CostMatrix::build(&f.topology);
/// assert_eq!(m.host_count(), 6);
/// assert_eq!(m.server_count(), 3);
/// // The §3.1.1 example: C(H2, S1) is two time units.
/// assert_eq!(m[1][0], 2.0);
/// ```
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostMatrix {
    hosts: usize,
    servers: usize,
    /// `costs[i * servers + j]` = C_ij in units.
    costs: Vec<f64>,
}

impl CostMatrix {
    /// Builds the matrix for `topology`'s hosts × servers (both in node
    /// order, matching [`Topology::hosts`] / [`Topology::servers`]). Runs
    /// one Dijkstra per server, fanned out across available threads; the
    /// result is independent of the thread count.
    ///
    /// # Panics
    ///
    /// Panics if some host cannot reach some server — a disconnected mail
    /// network has no meaningful assignment.
    pub fn build(topology: &Topology) -> Self {
        let host_nodes = topology.hosts();
        let server_nodes = topology.servers();
        let columns: Vec<Vec<f64>> = server_nodes
            .par_iter()
            .map(|&s| {
                let sp = dijkstra(topology.graph(), s);
                host_nodes
                    .iter()
                    .map(|&h| {
                        let w = sp.distance(h);
                        assert!(!w.is_infinite(), "host {h} cannot reach server {s}");
                        w.as_units()
                    })
                    .collect()
            })
            .collect();

        let servers = server_nodes.len();
        let hosts = host_nodes.len();
        let mut costs = vec![0.0; hosts * servers];
        for (j, col) in columns.iter().enumerate() {
            for (i, &c) in col.iter().enumerate() {
                costs[i * servers + j] = c;
            }
        }
        CostMatrix {
            hosts,
            servers,
            costs,
        }
    }

    /// Builds a matrix from explicit host-major rows (used by tests and by
    /// callers that already have `C_ij` from another source).
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let servers = rows.first().map_or(0, Vec::len);
        let hosts = rows.len();
        let mut costs = Vec::with_capacity(hosts * servers);
        for row in rows {
            assert_eq!(row.len(), servers, "ragged cost matrix rows");
            costs.extend_from_slice(row);
        }
        CostMatrix {
            hosts,
            servers,
            costs,
        }
    }

    /// Number of hosts (rows).
    pub fn host_count(&self) -> usize {
        self.hosts
    }

    /// Number of servers (columns).
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// `C_ij` for host `i`, server `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cost(&self, host: usize, server: usize) -> f64 {
        assert!(
            host < self.hosts && server < self.servers,
            "cost matrix index out of range"
        );
        self.costs[host * self.servers + server]
    }

    /// Host `i`'s full row of server costs.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn row(&self, host: usize) -> &[f64] {
        &self.costs[host * self.servers..(host + 1) * self.servers]
    }

    /// The raw flat storage, host-major.
    pub fn as_flat(&self) -> &[f64] {
        &self.costs
    }

    /// Appends a host row (§3.1.3b add-host reconfiguration).
    ///
    /// # Panics
    ///
    /// Panics if the row is misaligned with the servers.
    pub fn push_host_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.servers, "host row must cover every server");
        self.costs.extend_from_slice(row);
        self.hosts += 1;
    }

    /// Removes host `i`'s row (§3.1.3b delete-host reconfiguration).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn remove_host_row(&mut self, host: usize) {
        assert!(host < self.hosts, "unknown host row {host}");
        let start = host * self.servers;
        self.costs.drain(start..start + self.servers);
        self.hosts -= 1;
    }

    /// Appends a server column (§3.1.3c add-server reconfiguration);
    /// `col[i]` is host `i`'s cost to the new server.
    ///
    /// # Panics
    ///
    /// Panics if the column is misaligned with the hosts.
    pub fn push_server_col(&mut self, col: &[f64]) {
        assert_eq!(col.len(), self.hosts, "server column must cover every host");
        let old = self.servers;
        let mut costs = Vec::with_capacity(self.hosts * (old + 1));
        for (i, &c) in col.iter().enumerate() {
            costs.extend_from_slice(&self.costs[i * old..(i + 1) * old]);
            costs.push(c);
        }
        self.costs = costs;
        self.servers = old + 1;
    }

    /// Removes server `j`'s column (§3.1.3c delete-server
    /// reconfiguration).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn remove_server_col(&mut self, server: usize) {
        assert!(server < self.servers, "unknown server column {server}");
        let old = self.servers;
        let mut costs = Vec::with_capacity(self.hosts * (old - 1));
        for i in 0..self.hosts {
            for j in 0..old {
                if j != server {
                    costs.push(self.costs[i * old + j]);
                }
            }
        }
        self.costs = costs;
        self.servers = old - 1;
    }
}

impl std::ops::Index<usize> for CostMatrix {
    type Output = [f64];

    /// Indexes by host, yielding the row slice — so `m[i][j]` reads
    /// exactly like the nested-`Vec` layout it replaced.
    fn index(&self, host: usize) -> &[f64] {
        self.row(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{fig1, multi_region, MultiRegionConfig};
    use lems_sim::rng::SimRng;

    #[test]
    fn matches_distance_table_on_fig1() {
        let f = fig1();
        let m = CostMatrix::build(&f.topology);
        let d = f.topology.distances();
        for (i, &h) in f.hosts.iter().enumerate() {
            for (j, &s) in f.servers.iter().enumerate() {
                assert_eq!(m.cost(i, j), d.distance(h, s).as_units(), "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn matches_distance_table_on_random_topology() {
        let mut rng = SimRng::seed(11);
        let t = multi_region(&mut rng, &MultiRegionConfig::default());
        let m = CostMatrix::build(&t);
        let d = t.distances();
        let hosts = t.hosts();
        let servers = t.servers();
        assert_eq!(m.host_count(), hosts.len());
        assert_eq!(m.server_count(), servers.len());
        for (i, &h) in hosts.iter().enumerate() {
            for (j, &s) in servers.iter().enumerate() {
                assert_eq!(m.cost(i, j), d.distance(h, s).as_units());
            }
        }
    }

    #[test]
    fn build_is_thread_count_independent() {
        // The shimmed rayon honours RAYON_NUM_THREADS, but the contract
        // here is stronger: the matrix must be a pure function of the
        // topology. Two consecutive builds must agree exactly.
        let mut rng = SimRng::seed(4);
        let t = multi_region(&mut rng, &MultiRegionConfig::default());
        let a = CostMatrix::build(&t);
        let b = CostMatrix::build(&t);
        assert_eq!(a, b);
    }

    #[test]
    fn index_sugar_reads_rows() {
        let m = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[0][1], 2.0);
        assert_eq!(m[1], [3.0, 4.0]);
        assert_eq!(m.as_flat(), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn push_and_remove_rows_and_cols() {
        let mut m = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.push_host_row(&[5.0, 6.0]);
        assert_eq!(m.host_count(), 3);
        assert_eq!(m[2], [5.0, 6.0]);
        m.push_server_col(&[7.0, 8.0, 9.0]);
        assert_eq!(m.server_count(), 3);
        assert_eq!(m[0], [1.0, 2.0, 7.0]);
        assert_eq!(m[2], [5.0, 6.0, 9.0]);
        m.remove_host_row(1);
        assert_eq!(m.host_count(), 2);
        assert_eq!(m[1], [5.0, 6.0, 9.0]);
        m.remove_server_col(0);
        assert_eq!(m.server_count(), 2);
        assert_eq!(m[0], [2.0, 7.0]);
        assert_eq!(m[1], [6.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = CostMatrix::from_rows(&[vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    #[should_panic(expected = "cannot reach")]
    fn disconnected_host_panics() {
        use crate::topology::RegionId;
        let mut t = crate::topology::Topology::new();
        let _s = t.add_server(RegionId(0), "S0");
        let _h = t.add_host(RegionId(0), "H0"); // never linked
        let _ = CostMatrix::build(&t);
    }
}
