//! Error type for fallible topology/transport lookups.
//!
//! Historically these lookups panicked on bad input ("unknown node",
//! "nodes not adjacent", …). Panicking on data that arrives from
//! configuration or from other layers makes the simulator fragile and is
//! banned by the workspace lint (`lems-check -- lint`), so the lookups now
//! return `Result<_, NetError>` and let the caller decide: deployment
//! builders treat an error as a wiring bug, while the transport send path
//! converts it into a counted drop.

use std::fmt;

use crate::graph::NodeId;

/// Why a topology or transport lookup failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetError {
    /// The node id is outside the graph.
    UnknownNode(NodeId),
    /// The node exists but no actor has been bound to it.
    UnboundNode(NodeId),
    /// The node (or actor) already has a binding.
    AlreadyBound(NodeId),
    /// The two nodes are not joined by a direct edge.
    NotAdjacent(NodeId, NodeId),
    /// The node is not an endpoint of the edge in question.
    NotAnEndpoint {
        /// The node that was asked about.
        node: NodeId,
        /// One endpoint of the edge.
        a: NodeId,
        /// The other endpoint of the edge.
        b: NodeId,
    },
    /// No path exists between the two nodes.
    Disconnected(NodeId, NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::UnboundNode(n) => write!(f, "node {n} has no bound actor"),
            NetError::AlreadyBound(n) => write!(f, "node {n} is already bound"),
            NetError::NotAdjacent(a, b) => write!(f, "{a} and {b} are not adjacent"),
            NetError::NotAnEndpoint { node, a, b } => {
                write!(f, "{node} is not an endpoint of edge {a}-{b}")
            }
            NetError::Disconnected(a, b) => write!(f, "no path between {a} and {b}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_nodes() {
        assert_eq!(
            NetError::NotAdjacent(NodeId(1), NodeId(2)).to_string(),
            "n1 and n2 are not adjacent"
        );
        assert_eq!(
            NetError::NotAnEndpoint {
                node: NodeId(3),
                a: NodeId(0),
                b: NodeId(1)
            }
            .to_string(),
            "n3 is not an endpoint of edge n0-n1"
        );
    }
}
