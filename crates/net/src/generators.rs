//! Topology generators: the paper's worked examples plus synthetic
//! multi-region networks for scaling experiments.

use lems_sim::rng::SimRng;

use crate::graph::{NodeId, Weight};
use crate::topology::{RegionId, Topology};

/// The worked example of Fig. 1 / Tables 1–2: six hosts, three servers in
/// one region, every link costing one time unit.
///
/// The figure itself is not legible in surviving copies of the paper; this
/// reconstruction is the minimal topology consistent with the text:
/// all links cost one unit, `H2`'s shortest path to `S1` is two units
/// (§3.1.1's example), the nearest-server initialisation reproduces
/// Table 1's loads (S1=100, S2=150, S3=20), and the user population is
/// 50/60/50/50/40/20 across `H1..H6`.
#[derive(Clone, Debug)]
pub struct Fig1Scenario {
    /// The network.
    pub topology: Topology,
    /// Hosts `H1..H6` in order.
    pub hosts: Vec<NodeId>,
    /// Servers `S1..S3` in order.
    pub servers: Vec<NodeId>,
    /// Users per host, aligned with `hosts`.
    pub users_per_host: Vec<u32>,
}

/// Builds the Fig. 1 scenario.
///
/// # Examples
///
/// ```
/// let fig1 = lems_net::generators::fig1();
/// assert_eq!(fig1.hosts.len(), 6);
/// assert_eq!(fig1.users_per_host.iter().sum::<u32>(), 270);
/// ```
pub fn fig1() -> Fig1Scenario {
    let mut t = Topology::new();
    let r = RegionId(0);
    let s1 = t.add_server(r, "S1");
    let s2 = t.add_server(r, "S2");
    let s3 = t.add_server(r, "S3");
    let h1 = t.add_host(r, "H1");
    let h2 = t.add_host(r, "H2");
    let h3 = t.add_host(r, "H3");
    let h4 = t.add_host(r, "H4");
    let h5 = t.add_host(r, "H5");
    let h6 = t.add_host(r, "H6");
    let w = Weight::UNIT;
    // Hosts hang off their nearest server; servers form a chain S1-S2-S3.
    t.link(h1, s1, w);
    t.link(h3, s1, w);
    t.link(h2, s2, w);
    t.link(h4, s2, w);
    t.link(h5, s2, w);
    t.link(h6, s3, w);
    t.link(s1, s2, w);
    t.link(s2, s3, w);
    Fig1Scenario {
        topology: t,
        hosts: vec![h1, h2, h3, h4, h5, h6],
        servers: vec![s1, s2, s3],
        users_per_host: vec![50, 60, 50, 50, 40, 20],
    }
}

/// The second worked example (Table 3): three hosts with 100/100/20 users,
/// one server adjacent to each, servers chained `S1-S2-S3`, unit links.
pub fn table3() -> Fig1Scenario {
    let mut t = Topology::new();
    let r = RegionId(0);
    let s1 = t.add_server(r, "S1");
    let s2 = t.add_server(r, "S2");
    let s3 = t.add_server(r, "S3");
    let h1 = t.add_host(r, "H1");
    let h2 = t.add_host(r, "H2");
    let h3 = t.add_host(r, "H3");
    let w = Weight::UNIT;
    t.link(h1, s1, w);
    t.link(h2, s2, w);
    t.link(h3, s3, w);
    t.link(s1, s2, w);
    t.link(s2, s3, w);
    Fig1Scenario {
        topology: t,
        hosts: vec![h1, h2, h3],
        servers: vec![s1, s2, s3],
        users_per_host: vec![100, 100, 20],
    }
}

/// Parameters for [`multi_region`].
#[derive(Clone, Copy, Debug)]
pub struct MultiRegionConfig {
    /// Number of regions (>= 1).
    pub regions: usize,
    /// Hosts per region (>= 1).
    pub hosts_per_region: usize,
    /// Servers per region (>= 1).
    pub servers_per_region: usize,
    /// Inclusive range of intra-region link weights, in time units.
    pub intra_weight: (f64, f64),
    /// Inclusive range of inter-region link weights, in time units
    /// (typically much larger — long-haul links).
    pub inter_weight: (f64, f64),
    /// Number of extra random intra-region links per region beyond the
    /// spanning structure (adds path diversity).
    pub extra_links_per_region: usize,
    /// Number of extra inter-region links beyond the region ring.
    pub extra_inter_links: usize,
}

impl Default for MultiRegionConfig {
    fn default() -> Self {
        MultiRegionConfig {
            regions: 4,
            hosts_per_region: 6,
            servers_per_region: 3,
            intra_weight: (1.0, 3.0),
            inter_weight: (5.0, 15.0),
            extra_links_per_region: 2,
            extra_inter_links: 1,
        }
    }
}

/// Generates a connected multi-region topology:
///
/// * each region's servers form a ring (or a single node / an edge for
///   tiny regions) with random intra-region weights;
/// * each host links to a uniformly chosen server of its region;
/// * regions are joined in a ring through randomly chosen gateway servers
///   with (heavier) inter-region weights, plus optional chord links.
///
/// The result is always connected; weights are drawn uniformly from the
/// configured ranges (0.25-unit granularity so MST tie-breaking stays
/// interesting).
///
/// # Examples
///
/// ```
/// use lems_net::generators::{multi_region, MultiRegionConfig};
/// use lems_sim::rng::SimRng;
///
/// let mut rng = SimRng::seed(1);
/// let t = multi_region(&mut rng, &MultiRegionConfig::default());
/// assert!(t.is_connected());
/// assert_eq!(t.region_ids().len(), 4);
/// ```
///
/// # Panics
///
/// Panics if any count is zero or a weight range is inverted/negative.
pub fn multi_region(rng: &mut SimRng, cfg: &MultiRegionConfig) -> Topology {
    assert!(cfg.regions >= 1, "need at least one region");
    assert!(
        cfg.hosts_per_region >= 1,
        "need at least one host per region"
    );
    assert!(
        cfg.servers_per_region >= 1,
        "need at least one server per region"
    );
    for (lo, hi) in [cfg.intra_weight, cfg.inter_weight] {
        assert!(lo > 0.0 && hi >= lo, "invalid weight range ({lo}, {hi})");
    }

    let draw = |rng: &mut SimRng, (lo, hi): (f64, f64)| {
        // Quantize to quarter units: realistic-looking, still collision-prone
        // enough to exercise deterministic tie-breaking.
        let steps = ((hi - lo) / 0.25).round() as u64;
        let k = if steps == 0 { 0 } else { rng.range(0..=steps) };
        Weight::from_units(lo + k as f64 * 0.25)
    };

    let mut t = Topology::new();
    let mut servers_by_region: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.regions);

    for r in 0..cfg.regions {
        let region = RegionId(r);
        let servers: Vec<NodeId> = (0..cfg.servers_per_region)
            .map(|i| t.add_server(region, &format!("r{r}-S{i}")))
            .collect();
        // Ring of servers (or single edge / nothing for small regions).
        match servers.len() {
            1 => {}
            2 => {
                let w = draw(rng, cfg.intra_weight);
                t.link(servers[0], servers[1], w);
            }
            n => {
                for i in 0..n {
                    let w = draw(rng, cfg.intra_weight);
                    t.link(servers[i], servers[(i + 1) % n], w);
                }
            }
        }
        for i in 0..cfg.hosts_per_region {
            let h = t.add_host(region, &format!("r{r}-H{i}"));
            let s = *rng.pick(&servers);
            let w = draw(rng, cfg.intra_weight);
            t.link(h, s, w);
        }
        // Extra intra-region server-server chords.
        let mut attempts = 0;
        let mut added = 0;
        while added < cfg.extra_links_per_region && attempts < 50 {
            attempts += 1;
            if servers.len() < 2 {
                break;
            }
            let a = *rng.pick(&servers);
            let b = *rng.pick(&servers);
            if a != b && t.graph().edge_between(a, b).is_none() {
                let w = draw(rng, cfg.intra_weight);
                t.link(a, b, w);
                added += 1;
            }
        }
        servers_by_region.push(servers);
    }

    // Ring of regions through random gateway servers.
    if cfg.regions > 1 {
        for r in 0..cfg.regions {
            let next = (r + 1) % cfg.regions;
            if cfg.regions == 2 && r == 1 {
                break; // avoid a duplicate edge on two regions
            }
            let a = *rng.pick(&servers_by_region[r]);
            let b = *rng.pick(&servers_by_region[next]);
            let w = draw(rng, cfg.inter_weight);
            if t.graph().edge_between(a, b).is_none() {
                t.link(a, b, w);
            }
        }
        // Chords across non-adjacent regions.
        let mut attempts = 0;
        let mut added = 0;
        while added < cfg.extra_inter_links && attempts < 50 {
            attempts += 1;
            let r1 = rng.index(cfg.regions);
            let r2 = rng.index(cfg.regions);
            if r1 == r2 {
                continue;
            }
            let a = *rng.pick(&servers_by_region[r1]);
            let b = *rng.pick(&servers_by_region[r2]);
            if t.graph().edge_between(a, b).is_none() {
                let w = draw(rng, cfg.inter_weight);
                t.link(a, b, w);
                added += 1;
            }
        }
    }

    debug_assert!(t.is_connected());
    t
}

/// A single-region star: `n` hosts around one server. The degenerate
/// baseline topology (centralized name service, as in CSNET's single name
/// server, §2).
pub fn star(n_hosts: usize) -> Topology {
    let mut t = Topology::new();
    let r = RegionId(0);
    let s = t.add_server(r, "S0");
    for i in 0..n_hosts {
        let h = t.add_host(r, &format!("H{i}"));
        t.link(h, s, Weight::UNIT);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_path::dijkstra;

    #[test]
    fn fig1_matches_paper_constraints() {
        let f = fig1();
        assert!(f.topology.is_connected());
        assert_eq!(f.users_per_host.iter().sum::<u32>(), 270);
        // H2 -> S1 shortest path is two units (the paper's example).
        let sp = dijkstra(f.topology.graph(), f.hosts[1]);
        assert_eq!(sp.distance(f.servers[0]), Weight::from_units(2.0));
        // Every link is one unit.
        assert!(f
            .topology
            .graph()
            .edges()
            .iter()
            .all(|e| e.weight == Weight::UNIT));
        // All in one region.
        assert_eq!(f.topology.region_ids().len(), 1);
    }

    #[test]
    fn table3_loads() {
        let f = table3();
        assert_eq!(f.users_per_host, vec![100, 100, 20]);
        assert_eq!(f.hosts.len(), 3);
        assert!(f.topology.is_connected());
    }

    #[test]
    fn multi_region_is_connected_and_partitioned() {
        let mut rng = SimRng::seed(3);
        let cfg = MultiRegionConfig {
            regions: 6,
            hosts_per_region: 4,
            servers_per_region: 2,
            ..MultiRegionConfig::default()
        };
        let t = multi_region(&mut rng, &cfg);
        assert!(t.is_connected());
        assert_eq!(t.region_ids().len(), 6);
        assert_eq!(t.hosts().len(), 24);
        assert_eq!(t.servers().len(), 12);
        assert!(!t.gateways().is_empty());
        assert!(!t.inter_region_edges().is_empty());
    }

    #[test]
    fn multi_region_deterministic_per_seed() {
        let cfg = MultiRegionConfig::default();
        let t1 = multi_region(&mut SimRng::seed(9), &cfg);
        let t2 = multi_region(&mut SimRng::seed(9), &cfg);
        assert_eq!(t1.graph().edge_count(), t2.graph().edge_count());
        for (a, b) in t1.graph().edges().iter().zip(t2.graph().edges()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn two_region_config_has_no_duplicate_ring_edge() {
        let mut rng = SimRng::seed(5);
        let cfg = MultiRegionConfig {
            regions: 2,
            servers_per_region: 1,
            hosts_per_region: 1,
            extra_inter_links: 0,
            extra_links_per_region: 0,
            ..MultiRegionConfig::default()
        };
        let t = multi_region(&mut rng, &cfg);
        assert!(t.is_connected());
    }

    #[test]
    fn star_shape() {
        let t = star(5);
        assert_eq!(t.hosts().len(), 5);
        assert_eq!(t.servers().len(), 1);
        assert_eq!(t.graph().edge_count(), 5);
        assert!(t.is_connected());
    }
}
