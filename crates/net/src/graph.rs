//! Undirected weighted graphs.
//!
//! The paper models the mail network as "a connected undirected graph with
//! computers (hosts, servers, mail-forwarders, …) as nodes and the
//! communication links as the edges. Each edge is assigned a finite weight
//! cost" (§3.3.1A). This module is that graph.
//!
//! Edge weights are integer [`Weight`]s on the same tick scale as simulated
//! time, so path costs convert exactly to message delays and minimum
//! spanning trees are free of floating-point tie ambiguity.

use std::collections::HashMap;
use std::fmt;

use lems_sim::time::{SimDuration, TICKS_PER_UNIT};

/// Identifies a node within one [`Graph`].
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies an edge within one [`Graph`] (index into edge list).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct EdgeId(pub usize);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An edge cost: communication time across a link, in ticks.
///
/// # Examples
///
/// ```
/// use lems_net::graph::Weight;
///
/// let w = Weight::from_units(1.5);
/// assert_eq!(w.as_units(), 1.5);
/// assert_eq!((w + w).as_units(), 3.0);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Weight(pub u64);

impl Weight {
    /// Zero cost.
    pub const ZERO: Weight = Weight(0);
    /// Effectively infinite cost (used as "unreachable" sentinel).
    pub const INFINITY: Weight = Weight(u64::MAX);

    /// A weight of exactly one paper time unit.
    pub const UNIT: Weight = Weight(TICKS_PER_UNIT);

    /// Creates a weight from (possibly fractional) paper time units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative or not finite.
    pub fn from_units(units: f64) -> Self {
        assert!(
            units.is_finite() && units >= 0.0,
            "weight must be finite and non-negative, got {units}"
        );
        Weight((units * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// This weight in paper time units.
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Converts a (finite) weight into a message delay.
    ///
    /// # Panics
    ///
    /// Panics on [`Weight::INFINITY`]: an unreachable destination has no
    /// delay.
    pub fn as_duration(self) -> SimDuration {
        assert!(self != Weight::INFINITY, "infinite weight has no duration");
        SimDuration::from_ticks(self.0)
    }

    /// Saturating addition, treating [`Weight::INFINITY`] as absorbing.
    pub fn saturating_add(self, rhs: Weight) -> Weight {
        Weight(self.0.saturating_add(rhs.0))
    }

    /// True for the unreachable sentinel.
    pub fn is_infinite(self) -> bool {
        self == Weight::INFINITY
    }
}

impl std::ops::Add for Weight {
    type Output = Weight;
    fn add(self, rhs: Weight) -> Weight {
        self.saturating_add(rhs)
    }
}

impl std::iter::Sum for Weight {
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        iter.fold(Weight::ZERO, Weight::saturating_add)
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "w=inf")
        } else {
            write!(f, "w={:.3}", self.as_units())
        }
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{:.3}", self.as_units())
        }
    }
}

/// One undirected edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// One endpoint (the smaller `NodeId` by construction).
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// The communication cost of the link.
    pub weight: Weight,
}

impl Edge {
    /// The endpoint opposite to `n`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotAnEndpoint`] if `n` is not an endpoint of
    /// this edge.
    pub fn other(&self, n: NodeId) -> Result<NodeId, crate::error::NetError> {
        if n == self.a {
            Ok(self.b)
        } else if n == self.b {
            Ok(self.a)
        } else {
            Err(crate::error::NetError::NotAnEndpoint {
                node: n,
                a: self.a,
                b: self.b,
            })
        }
    }
}

/// An undirected weighted graph with stable node and edge ids.
///
/// Nodes are dense indices `0..node_count()`. Removal is not supported at
/// the graph layer (the mail systems model server removal by marking nodes
/// out of service at a higher layer), which keeps ids stable across an
/// experiment.
///
/// # Examples
///
/// ```
/// use lems_net::graph::{Graph, Weight};
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b, Weight::UNIT);
/// g.add_edge(b, c, Weight::from_units(2.0));
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.is_connected());
/// assert_eq!(g.neighbors(b).count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    edges: Vec<Edge>,
    /// adjacency: node -> Vec<(neighbor, edge id)>
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    edge_index: HashMap<(NodeId, NodeId), EdgeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Adds a node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adj.len());
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected edge between distinct existing nodes.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, unknown endpoints, duplicate edges, or an
    /// infinite weight.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: Weight) -> EdgeId {
        assert!(a != b, "self-loops are not allowed ({a})");
        assert!(a.0 < self.adj.len(), "unknown node {a}");
        assert!(b.0 < self.adj.len(), "unknown node {b}");
        assert!(!weight.is_infinite(), "edge weight must be finite");
        let key = if a.0 < b.0 { (a, b) } else { (b, a) };
        assert!(
            !self.edge_index.contains_key(&key),
            "duplicate edge {a}-{b}"
        );
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            a: key.0,
            b: key.1,
            weight,
        });
        self.adj[a.0].push((b, id));
        self.adj[b.0].push((a, id));
        self.edge_index.insert(key, id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.adj.len()).map(NodeId)
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.0]
    }

    /// Looks up the edge between `a` and `b`, if present.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        let key = if a.0 < b.0 { (a, b) } else { (b, a) };
        self.edge_index.get(&key).copied()
    }

    /// Neighbors of `n` with the connecting edge id, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is unknown.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[n.0].iter().copied()
    }

    /// Degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.0].len()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// True if every node can reach every other (an empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v.0] {
                    seen[v.0] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == n
    }

    /// Returns a copy whose edge weights have been perturbed by their edge
    /// id so all weights are pairwise distinct (weights gain at most
    /// `edge_count` ticks).
    ///
    /// Gallager's MST algorithm requires distinct weights; the paper adopts
    /// the standard remedy of breaking ties deterministically.
    pub fn with_distinct_weights(&self) -> Graph {
        let mut g = self.clone();
        for (i, e) in g.edges.iter_mut().enumerate() {
            e.weight = Weight(e.weight.0 * (self.edges.len() as u64 + 1) + i as u64);
        }
        g
    }

    /// True if all edge weights are pairwise distinct.
    pub fn has_distinct_weights(&self) -> bool {
        let mut ws: Vec<u64> = self.edges.iter().map(|e| e.weight.0).collect();
        ws.sort_unstable();
        ws.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_conversions() {
        assert_eq!(Weight::UNIT.as_units(), 1.0);
        assert_eq!(
            Weight::from_units(0.5).as_duration(),
            SimDuration::from_units(0.5)
        );
        assert!(Weight::INFINITY.is_infinite());
        assert_eq!(
            Weight::INFINITY.saturating_add(Weight::UNIT),
            Weight::INFINITY
        );
    }

    #[test]
    #[should_panic(expected = "no duration")]
    fn infinite_weight_duration_panics() {
        let _ = Weight::INFINITY.as_duration();
    }

    #[test]
    fn build_and_query() {
        let mut g = Graph::with_nodes(4);
        let e0 = g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
        g.add_edge(NodeId(1), NodeId(2), Weight::from_units(2.0));
        assert_eq!(g.edge_between(NodeId(1), NodeId(0)), Some(e0));
        assert_eq!(g.edge_between(NodeId(0), NodeId(3)), None);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.edge(e0).other(NodeId(0)), Ok(NodeId(1)));
        assert!(g.edge(e0).other(NodeId(3)).is_err());
        assert_eq!(g.total_weight(), Weight::from_units(3.0));
        assert!(!g.is_connected()); // node 3 isolated
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), Weight::UNIT);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
        g.add_edge(NodeId(1), NodeId(0), Weight::UNIT);
    }

    #[test]
    fn distinct_weights_preserve_order() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
        g.add_edge(NodeId(1), NodeId(2), Weight::UNIT);
        g.add_edge(NodeId(0), NodeId(2), Weight::from_units(5.0));
        assert!(!g.has_distinct_weights());
        let d = g.with_distinct_weights();
        assert!(d.has_distinct_weights());
        // Strictly lighter edges stay strictly lighter.
        assert!(d.edges()[0].weight < d.edges()[2].weight);
        assert!(d.edges()[1].weight < d.edges()[2].weight);
    }

    #[test]
    fn connectivity() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
        assert!(!g.is_connected());
        g.add_edge(NodeId(1), NodeId(2), Weight::UNIT);
        assert!(g.is_connected());
        assert!(Graph::new().is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }
}
