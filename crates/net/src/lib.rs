//! # lems-net — network substrate for large electronic mail systems
//!
//! The paper models the mail network as "a connected undirected graph with
//! computers as nodes and the communication links as the edges; each edge
//! is assigned a finite weight cost" (§3.3.1A). This crate provides that
//! model and the classic algorithms the mail systems rely on:
//!
//! * [`graph`] — undirected weighted graphs with exact integer weights;
//! * [`shortest_path`] — Dijkstra and all-pairs distance tables (the
//!   "shortest-path zero-load algorithm" used to initialise the §3.1.1
//!   server-assignment costs);
//! * [`cost_matrix`] — the flat host→server block of that table, built
//!   once (one parallel Dijkstra per server) and shared by assignment,
//!   reconfiguration, and GetMail authority-list construction;
//! * [`mst`] — centralized Kruskal/Prim spanning trees, the verification
//!   oracle for the distributed GHS algorithm in `lems-mst`;
//! * [`routing`] — next-hop tables for store-and-forward relaying;
//! * [`topology`] — hosts, servers, and regions on top of the graph;
//! * [`generators`] — the paper's Fig. 1 / Table 3 worked examples and
//!   synthetic multi-region networks;
//! * [`transport`] — node-to-actor binding and topology-derived delays for
//!   the `lems-sim` engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost_matrix;
pub mod error;
pub mod generators;
pub mod graph;
pub mod mst;
pub mod routing;
pub mod shortest_path;
pub mod topology;
pub mod transport;

pub use error::NetError;
pub use graph::{Edge, EdgeId, Graph, NodeId, Weight};
pub use topology::{NodeKind, RegionId, Topology};
