//! Centralized minimum-spanning-tree algorithms (Kruskal and Prim).
//!
//! These serve two roles: a verification oracle for the *distributed* GHS
//! implementation in `lems-mst` (both must produce the identical edge set on
//! distinct-weight graphs), and a fast planning tool for the attribute-mail
//! cost tables of §3.3.1B.

use crate::graph::{EdgeId, Graph, NodeId, Weight};

/// Disjoint-set union with path compression and union by rank.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merges the sets containing `a` and `b`; returns `false` if already
    /// joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// A spanning tree (or forest, for disconnected inputs) of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningTree {
    edges: Vec<EdgeId>,
    weight: Weight,
}

impl SpanningTree {
    /// The tree's edges (sorted by id for canonical comparison).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Sum of the tree's edge weights — the total broadcast cost of
    /// §3.3.1B.
    pub fn total_weight(&self) -> Weight {
        self.weight
    }

    /// Number of edges (== nodes − components).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for an empty tree.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// True if this tree spans all of `g` (i.e. `g` is connected and the
    /// tree has `n-1` edges).
    pub fn spans(&self, g: &Graph) -> bool {
        g.node_count() != 0 && self.edges.len() + 1 == g.node_count()
    }

    /// Adjacency restricted to tree edges: node -> tree neighbors.
    pub fn adjacency(&self, g: &Graph) -> Vec<Vec<NodeId>> {
        let mut adj = vec![Vec::new(); g.node_count()];
        for &eid in &self.edges {
            let e = g.edge(eid);
            adj[e.a.0].push(e.b);
            adj[e.b.0].push(e.a);
        }
        adj
    }
}

/// Kruskal's algorithm. Works on forests; ties break by edge id, so the
/// result is deterministic even with duplicate weights.
///
/// # Examples
///
/// ```
/// use lems_net::graph::{Graph, NodeId, Weight};
/// use lems_net::mst::kruskal;
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), Weight::from_units(1.0));
/// g.add_edge(NodeId(1), NodeId(2), Weight::from_units(2.0));
/// g.add_edge(NodeId(0), NodeId(2), Weight::from_units(9.0));
/// let t = kruskal(&g);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.total_weight(), Weight::from_units(3.0));
/// ```
pub fn kruskal(g: &Graph) -> SpanningTree {
    let mut order: Vec<EdgeId> = (0..g.edge_count()).map(EdgeId).collect();
    order.sort_by_key(|&e| (g.edge(e).weight, e));
    let mut uf = UnionFind::new(g.node_count());
    let mut edges = Vec::new();
    let mut weight = Weight::ZERO;
    for eid in order {
        let e = g.edge(eid);
        if uf.union(e.a.0, e.b.0) {
            edges.push(eid);
            weight = weight.saturating_add(e.weight);
        }
    }
    edges.sort_unstable();
    SpanningTree { edges, weight }
}

/// Prim's algorithm from an arbitrary root (node 0). Only defined on
/// connected graphs.
///
/// # Panics
///
/// Panics if `g` is empty or not connected.
pub fn prim(g: &Graph) -> SpanningTree {
    assert!(g.node_count() > 0, "prim requires a non-empty graph");
    let mut in_tree = vec![false; g.node_count()];
    in_tree[0] = true;
    let mut edges = Vec::new();
    let mut weight = Weight::ZERO;
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(Weight, EdgeId)>> =
        std::collections::BinaryHeap::new();
    for (_, eid) in g.neighbors(NodeId(0)) {
        heap.push(std::cmp::Reverse((g.edge(eid).weight, eid)));
    }
    while let Some(std::cmp::Reverse((w, eid))) = heap.pop() {
        let e = g.edge(eid);
        let fresh = match (in_tree[e.a.0], in_tree[e.b.0]) {
            (true, false) => Some(e.b),
            (false, true) => Some(e.a),
            _ => None,
        };
        let Some(v) = fresh else { continue };
        in_tree[v.0] = true;
        edges.push(eid);
        weight = weight.saturating_add(w);
        for (_, ne) in g.neighbors(v) {
            heap.push(std::cmp::Reverse((g.edge(ne).weight, ne)));
        }
    }
    assert!(
        edges.len() + 1 == g.node_count(),
        "prim requires a connected graph"
    );
    edges.sort_unstable();
    SpanningTree { edges, weight }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_sim::rng::SimRng;
    use proptest::prelude::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.component_count(), 3);
    }

    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), Weight::from_units(1.0));
        g.add_edge(NodeId(1), NodeId(3), Weight::from_units(4.0));
        g.add_edge(NodeId(0), NodeId(2), Weight::from_units(3.0));
        g.add_edge(NodeId(2), NodeId(3), Weight::from_units(2.0));
        g.add_edge(NodeId(0), NodeId(3), Weight::from_units(10.0));
        g
    }

    #[test]
    fn kruskal_picks_light_edges() {
        let t = kruskal(&diamond());
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_weight(), Weight::from_units(6.0));
    }

    #[test]
    fn kruskal_and_prim_agree_on_distinct_weights() {
        let g = diamond();
        assert_eq!(kruskal(&g), prim(&g));
    }

    #[test]
    fn kruskal_on_forest() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
        g.add_edge(NodeId(2), NodeId(3), Weight::UNIT);
        let t = kruskal(&g);
        assert_eq!(t.len(), 2);
        assert!(!t.spans(&g));
    }

    #[test]
    fn adjacency_matches_edges() {
        let g = diamond();
        let t = kruskal(&g);
        let adj = t.adjacency(&g);
        let degree_sum: usize = adj.iter().map(Vec::len).sum();
        assert_eq!(degree_sum, 2 * t.len());
    }

    fn random_connected(rng: &mut SimRng, n: usize, extra: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            let j = rng.index(i);
            g.add_edge(
                NodeId(i),
                NodeId(j),
                Weight::from_units(rng.range(1..=100) as f64),
            );
        }
        let mut added = 0;
        while added < extra {
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b && g.edge_between(NodeId(a), NodeId(b)).is_none() {
                g.add_edge(
                    NodeId(a),
                    NodeId(b),
                    Weight::from_units(rng.range(1..=100) as f64),
                );
                added += 1;
            }
        }
        g
    }

    proptest! {
        /// Kruskal == Prim on connected graphs with distinct weights, and
        /// the tree weight is minimal among a sample of random spanning
        /// trees.
        #[test]
        fn mst_invariants(seed in 0u64..60) {
            let mut rng = SimRng::seed(seed);
            let g = random_connected(&mut rng, 12, 10).with_distinct_weights();
            let k = kruskal(&g);
            let p = prim(&g);
            prop_assert_eq!(&k, &p);
            prop_assert!(k.spans(&g));

            // Exchange check: every non-tree edge closes a cycle whose tree
            // edges are all at most as heavy (cut property corollary).
            let tree_set: std::collections::HashSet<EdgeId> =
                k.edges().iter().copied().collect();
            let adj = k.adjacency(&g);
            for eid in (0..g.edge_count()).map(EdgeId) {
                if tree_set.contains(&eid) {
                    continue;
                }
                let e = g.edge(eid);
                // Find the tree path a..b by DFS.
                let mut stack = vec![(e.a, e.a)];
                let mut parent = vec![None; g.node_count()];
                while let Some((u, from)) = stack.pop() {
                    for &v in &adj[u.0] {
                        if v != from && parent[v.0].is_none() && v != e.a {
                            parent[v.0] = Some(u);
                            stack.push((v, u));
                        }
                    }
                }
                let mut cur = e.b;
                while let Some(p) = parent[cur.0] {
                    let pe = g.edge_between(cur, p).unwrap();
                    prop_assert!(g.edge(pe).weight < e.weight,
                        "non-tree edge lighter than a cycle tree edge");
                    cur = p;
                }
            }
        }
    }
}
