//! Hop-by-hop routing tables derived from shortest paths.
//!
//! Messages between mail servers are relayed "through other hosts and
//! servers using the communication service" (§2); the transport layer uses
//! these next-hop tables when an experiment models store-and-forward
//! relaying rather than end-to-end delays.

use crate::graph::{Graph, NodeId, Weight};
use crate::shortest_path::dijkstra;

/// Precomputed next-hop table for every (source, destination) pair.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    n: usize,
    /// next_hop[src * n + dst] — `None` when src == dst or unreachable.
    next_hop: Vec<Option<NodeId>>,
    dist: Vec<Weight>,
}

impl RoutingTable {
    /// Builds the table from shortest paths on `g`.
    pub fn build(g: &Graph) -> Self {
        let n = g.node_count();
        let mut next_hop = vec![None; n * n];
        let mut dist = vec![Weight::INFINITY; n * n];
        for s in g.nodes() {
            let sp = dijkstra(g, s);
            for t in g.nodes() {
                next_hop[s.0 * n + t.0] = sp.next_hop(t);
                dist[s.0 * n + t.0] = sp.distance(t);
            }
        }
        RoutingTable { n, next_hop, dist }
    }

    /// The neighbor `src` should forward through to reach `dst`; `None`
    /// when `src == dst` or `dst` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        assert!(src.0 < self.n && dst.0 < self.n, "node out of range");
        self.next_hop[src.0 * self.n + dst.0]
    }

    /// End-to-end cost from `src` to `dst`.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Weight {
        assert!(src.0 < self.n && dst.0 < self.n, "node out of range");
        self.dist[src.0 * self.n + dst.0]
    }

    /// The full route `src..=dst` by following next hops, or `None` if
    /// unreachable.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        if self.dist[src.0 * self.n + dst.0].is_infinite() {
            return None;
        }
        let mut route = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            route.push(cur);
            debug_assert!(route.len() <= self.n, "routing loop");
        }
        Some(route)
    }

    /// Number of hops (edges) on the route, or `None` if unreachable.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.route(src, dst).map(|r| r.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i), Weight::UNIT);
        }
        g
    }

    #[test]
    fn routes_follow_the_chain() {
        let g = chain(4);
        let rt = RoutingTable::build(&g);
        assert_eq!(
            rt.route(NodeId(0), NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(rt.hop_count(NodeId(0), NodeId(3)), Some(3));
        assert_eq!(rt.next_hop(NodeId(0), NodeId(0)), None);
        assert_eq!(rt.route(NodeId(2), NodeId(2)).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn unreachable_routes_are_none() {
        let mut g = chain(2);
        let lonely = g.add_node();
        let rt = RoutingTable::build(&g);
        assert_eq!(rt.route(NodeId(0), lonely), None);
        assert_eq!(rt.hop_count(NodeId(0), lonely), None);
        assert!(rt.distance(NodeId(0), lonely).is_infinite());
    }

    #[test]
    fn route_cost_matches_distance() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), Weight::from_units(1.0));
        g.add_edge(NodeId(1), NodeId(3), Weight::from_units(1.0));
        g.add_edge(NodeId(0), NodeId(2), Weight::from_units(1.0));
        g.add_edge(NodeId(2), NodeId(3), Weight::from_units(5.0));
        let rt = RoutingTable::build(&g);
        let route = rt.route(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(route, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(rt.distance(NodeId(0), NodeId(3)), Weight::from_units(2.0));
    }
}
