//! Shortest paths: Dijkstra single-source and all-pairs tables.
//!
//! The server-assignment algorithm of §3.1.1 initialises connection costs
//! "using the shortest-path zero-load (i.e., no traffic) algorithm between
//! hosts and servers"; message forwarding and the transport layer reuse the
//! same tables.

use std::collections::BinaryHeap;

use crate::graph::{Graph, NodeId, Weight};

/// The result of a single-source shortest-path run.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Weight>,
    prev: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The source node of this run.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `n` ([`Weight::INFINITY`] when
    /// unreachable).
    pub fn distance(&self, n: NodeId) -> Weight {
        self.dist[n.0]
    }

    /// True if `n` is reachable from the source.
    pub fn is_reachable(&self, n: NodeId) -> bool {
        !self.dist[n.0].is_infinite()
    }

    /// The shortest path from the source to `dest`, inclusive of both
    /// endpoints, or `None` if unreachable.
    pub fn path_to(&self, dest: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[dest.0].is_infinite() {
            return None;
        }
        let mut path = vec![dest];
        let mut cur = dest;
        while let Some(p) = self.prev[cur.0] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&self.source));
        Some(path)
    }

    /// The first hop on the shortest path toward `dest` (i.e. the neighbor
    /// of the source to forward through), or `None` if `dest` is the source
    /// or unreachable.
    pub fn next_hop(&self, dest: NodeId) -> Option<NodeId> {
        let path = self.path_to(dest)?;
        path.get(1).copied()
    }
}

/// Dijkstra's algorithm from `source`.
///
/// Deterministic: ties between equal-distance frontier nodes break toward
/// the lower node id.
///
/// # Examples
///
/// ```
/// use lems_net::graph::{Graph, NodeId, Weight};
/// use lems_net::shortest_path::dijkstra;
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), Weight::UNIT);
/// g.add_edge(NodeId(1), NodeId(2), Weight::UNIT);
/// let sp = dijkstra(&g, NodeId(0));
/// assert_eq!(sp.distance(NodeId(2)), Weight::from_units(2.0));
/// assert_eq!(sp.path_to(NodeId(2)).unwrap(), vec![NodeId(0), NodeId(1), NodeId(2)]);
/// ```
///
/// # Panics
///
/// Panics if `source` is not a node of `g`.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    assert!(source.0 < g.node_count(), "unknown source {source}");
    let n = g.node_count();
    let mut dist = vec![Weight::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[source.0] = Weight::ZERO;

    // Max-heap over Reverse ordering: (distance, node id).
    let mut heap: BinaryHeap<std::cmp::Reverse<(Weight, usize)>> = BinaryHeap::new();
    heap.push(std::cmp::Reverse((Weight::ZERO, source.0)));

    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for (v, eid) in g.neighbors(NodeId(u)) {
            let nd = d.saturating_add(g.edge(eid).weight);
            if nd < dist[v.0] {
                dist[v.0] = nd;
                prev[v.0] = Some(NodeId(u));
                heap.push(std::cmp::Reverse((nd, v.0)));
            }
        }
    }

    ShortestPaths { source, dist, prev }
}

/// All-pairs shortest-path distances (repeated Dijkstra; suitable for the
/// sparse topologies mail networks have).
#[derive(Clone, Debug)]
pub struct DistanceTable {
    n: usize,
    dist: Vec<Weight>,
}

impl DistanceTable {
    /// Builds the table for `g`.
    pub fn build(g: &Graph) -> Self {
        let n = g.node_count();
        let mut dist = vec![Weight::INFINITY; n * n];
        for s in g.nodes() {
            let sp = dijkstra(g, s);
            for t in g.nodes() {
                dist[s.0 * n + t.0] = sp.distance(t);
            }
        }
        DistanceTable { n, dist }
    }

    /// Distance between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Weight {
        assert!(a.0 < self.n && b.0 < self.n, "node out of range");
        self.dist[a.0 * self.n + b.0]
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The largest finite distance in the table (the graph's weighted
    /// diameter), or `None` for an empty/disconnected table.
    pub fn diameter(&self) -> Option<Weight> {
        self.dist.iter().copied().filter(|w| !w.is_infinite()).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_sim::rng::SimRng;
    use proptest::prelude::*;

    fn line_graph(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i), Weight::UNIT);
        }
        g
    }

    #[test]
    fn line_distances() {
        let g = line_graph(5);
        let sp = dijkstra(&g, NodeId(0));
        for i in 0..5 {
            assert_eq!(sp.distance(NodeId(i)), Weight::from_units(i as f64));
        }
        assert_eq!(sp.next_hop(NodeId(4)), Some(NodeId(1)));
        assert_eq!(sp.next_hop(NodeId(0)), None);
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = line_graph(3);
        let lonely = g.add_node();
        let sp = dijkstra(&g, NodeId(0));
        assert!(!sp.is_reachable(lonely));
        assert_eq!(sp.path_to(lonely), None);
        assert!(sp.distance(lonely).is_infinite());
    }

    #[test]
    fn prefers_lighter_detour() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(2), Weight::from_units(10.0));
        g.add_edge(NodeId(0), NodeId(1), Weight::from_units(1.0));
        g.add_edge(NodeId(1), NodeId(2), Weight::from_units(2.0));
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.distance(NodeId(2)), Weight::from_units(3.0));
        assert_eq!(
            sp.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn distance_table_symmetry_and_diameter() {
        let g = line_graph(4);
        let t = DistanceTable::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
        assert_eq!(t.diameter(), Some(Weight::from_units(3.0)));
    }

    fn random_connected(rng: &mut SimRng, n: usize, extra: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        // Random spanning tree first, then extra edges.
        for i in 1..n {
            let j = rng.index(i);
            g.add_edge(
                NodeId(i),
                NodeId(j),
                Weight::from_units(rng.range(1..=10) as f64),
            );
        }
        let mut added = 0;
        while added < extra {
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b && g.edge_between(NodeId(a), NodeId(b)).is_none() {
                g.add_edge(
                    NodeId(a),
                    NodeId(b),
                    Weight::from_units(rng.range(1..=10) as f64),
                );
                added += 1;
            }
        }
        g
    }

    proptest! {
        /// Triangle inequality holds for every pair via every intermediate.
        #[test]
        fn triangle_inequality(seed in 0u64..50) {
            let mut rng = SimRng::seed(seed);
            let g = random_connected(&mut rng, 12, 8);
            let t = DistanceTable::build(&g);
            for a in g.nodes() {
                for b in g.nodes() {
                    for c in g.nodes() {
                        let ab = t.distance(a, b);
                        let ac = t.distance(a, c);
                        let cb = t.distance(c, b);
                        prop_assert!(ab <= ac.saturating_add(cb));
                    }
                }
            }
        }

        /// Path endpoints and cost agree with reported distances.
        #[test]
        fn paths_are_consistent(seed in 0u64..50) {
            let mut rng = SimRng::seed(seed);
            let g = random_connected(&mut rng, 10, 5);
            let sp = dijkstra(&g, NodeId(0));
            for dest in g.nodes() {
                let path = sp.path_to(dest).unwrap();
                prop_assert_eq!(path[0], NodeId(0));
                prop_assert_eq!(*path.last().unwrap(), dest);
                let mut cost = Weight::ZERO;
                for w in path.windows(2) {
                    let eid = g.edge_between(w[0], w[1]).unwrap();
                    cost = cost.saturating_add(g.edge(eid).weight);
                }
                prop_assert_eq!(cost, sp.distance(dest));
            }
        }
    }
}
