//! Mail-network topologies: the graph plus node roles and regions.
//!
//! The paper's world (§2) consists of *hosts* (computers users sit at),
//! *mail servers* (processes that store, resolve, forward, and deliver
//! mail), and the links between them, partitioned into *regions* — the top
//! level of the `region.host.user` hierarchy. A [`Topology`] carries that
//! structure on top of [`Graph`].

use std::collections::HashMap;
use std::fmt;

use crate::graph::{EdgeId, Graph, NodeId, Weight};
use crate::shortest_path::DistanceTable;

/// Identifies a region (globally unique per §3.1.1).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct RegionId(pub usize);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The role a node plays in the mail system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// A computer users access the system from — possibly a personal
    /// computer or workstation that "may not be turned on all the time"
    /// (§3.1.2c).
    Host,
    /// A mail server: stores mailboxes, resolves names, forwards and
    /// delivers messages.
    Server,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Host => f.write_str("host"),
            NodeKind::Server => f.write_str("server"),
        }
    }
}

/// A network of hosts and servers partitioned into regions.
///
/// # Examples
///
/// ```
/// use lems_net::topology::{NodeKind, RegionId, Topology};
/// use lems_net::graph::Weight;
///
/// let mut t = Topology::new();
/// let r = RegionId(0);
/// let s = t.add_server(r, "S1");
/// let h = t.add_host(r, "H1");
/// t.link(h, s, Weight::UNIT);
/// assert_eq!(t.kind(s), NodeKind::Server);
/// assert_eq!(t.servers_in(r), vec![s]);
/// assert_eq!(t.name(h), "H1");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Topology {
    graph: Graph,
    kinds: Vec<NodeKind>,
    regions: Vec<RegionId>,
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    fn add_node(&mut self, kind: NodeKind, region: RegionId, name: &str) -> NodeId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate node name {name:?}"
        );
        let id = self.graph.add_node();
        self.kinds.push(kind);
        self.regions.push(region);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Adds a host named `name` in `region`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_host(&mut self, region: RegionId, name: &str) -> NodeId {
        self.add_node(NodeKind::Host, region, name)
    }

    /// Adds a server named `name` in `region`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_server(&mut self, region: RegionId, name: &str) -> NodeId {
        self.add_node(NodeKind::Server, region, name)
    }

    /// Connects two nodes with a link of the given communication cost.
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`Graph::add_edge`] (self-loop, duplicate,
    /// unknown node).
    pub fn link(&mut self, a: NodeId, b: NodeId, weight: Weight) -> EdgeId {
        self.graph.add_edge(a, b, weight)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The role of `n`.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.0]
    }

    /// The region of `n`.
    pub fn region(&self, n: NodeId) -> RegionId {
        self.regions[n.0]
    }

    /// The display name of `n`.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.0]
    }

    /// Looks a node up by display name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        self.graph.nodes()
    }

    /// All hosts.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.kind(n) == NodeKind::Host)
            .collect()
    }

    /// All servers.
    pub fn servers(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.kind(n) == NodeKind::Server)
            .collect()
    }

    /// Servers located in `region`.
    pub fn servers_in(&self, region: RegionId) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.kind(n) == NodeKind::Server && self.region(n) == region)
            .collect()
    }

    /// Hosts located in `region`.
    pub fn hosts_in(&self, region: RegionId) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.kind(n) == NodeKind::Host && self.region(n) == region)
            .collect()
    }

    /// The distinct regions present, ascending.
    pub fn region_ids(&self) -> Vec<RegionId> {
        let mut rs: Vec<RegionId> = self.regions.clone();
        rs.sort_unstable();
        rs.dedup();
        rs
    }

    /// Nodes with at least one link into another region — the candidates
    /// for the backbone MST of §3.3.1A(ii) ("nodes which are directly
    /// connected to nodes in other regions").
    pub fn gateways(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| {
                self.graph
                    .neighbors(n)
                    .any(|(m, _)| self.region(m) != self.region(n))
            })
            .collect()
    }

    /// Edges whose endpoints lie in different regions.
    pub fn inter_region_edges(&self) -> Vec<EdgeId> {
        (0..self.graph.edge_count())
            .map(EdgeId)
            .filter(|&eid| {
                let e = self.graph.edge(eid);
                self.region(e.a) != self.region(e.b)
            })
            .collect()
    }

    /// Builds the all-pairs distance table for this topology.
    pub fn distances(&self) -> DistanceTable {
        DistanceTable::build(&self.graph)
    }

    /// True if the network is connected.
    pub fn is_connected(&self) -> bool {
        self.graph.is_connected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_topology() -> Topology {
        let mut t = Topology::new();
        let (r0, r1) = (RegionId(0), RegionId(1));
        let s0 = t.add_server(r0, "S0");
        let h0 = t.add_host(r0, "H0");
        let s1 = t.add_server(r1, "S1");
        let h1 = t.add_host(r1, "H1");
        t.link(h0, s0, Weight::UNIT);
        t.link(h1, s1, Weight::UNIT);
        t.link(s0, s1, Weight::from_units(5.0));
        t
    }

    #[test]
    fn roles_and_regions() {
        let t = two_region_topology();
        assert_eq!(t.hosts().len(), 2);
        assert_eq!(t.servers().len(), 2);
        assert_eq!(t.servers_in(RegionId(0)), vec![NodeId(0)]);
        assert_eq!(t.hosts_in(RegionId(1)), vec![NodeId(3)]);
        assert_eq!(t.region_ids(), vec![RegionId(0), RegionId(1)]);
        assert!(t.is_connected());
    }

    #[test]
    fn gateways_cross_regions() {
        let t = two_region_topology();
        let gw = t.gateways();
        assert_eq!(gw, vec![NodeId(0), NodeId(2)]); // S0 and S1
        assert_eq!(t.inter_region_edges().len(), 1);
    }

    #[test]
    fn name_lookup() {
        let t = two_region_topology();
        assert_eq!(t.node_by_name("H1"), Some(NodeId(3)));
        assert_eq!(t.node_by_name("nope"), None);
        assert_eq!(t.name(NodeId(0)), "S0");
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        let mut t = Topology::new();
        t.add_host(RegionId(0), "X");
        t.add_server(RegionId(0), "X");
    }

    #[test]
    fn distances_use_links() {
        let t = two_region_topology();
        let d = t.distances();
        let h0 = t.node_by_name("H0").unwrap();
        let h1 = t.node_by_name("H1").unwrap();
        assert_eq!(d.distance(h0, h1), Weight::from_units(7.0));
    }
}
